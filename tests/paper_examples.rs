//! Workspace-level tests that replay the worked examples and constructions of
//! the paper through the public facade, as an executable record of the model
//! semantics the reproduction commits to.

use revmax::core::effective_probabilities;
use revmax::core::reductions::{Assignment, TimetableInstance};
use revmax::core::ExactPoissonBinomial;
use revmax::prelude::*;

/// Example 1: S = {(u,i,1), (u,j,2), (u,i,3)} with C(i) = C(j) and primitive
/// probability `a` everywhere.
#[test]
fn example_1_dynamic_adoption_probabilities() {
    let a = 0.25;
    let beta = 0.6;
    let mut b = InstanceBuilder::new(1, 2, 3);
    b.display_limit(1)
        .item_class(0, 0)
        .item_class(1, 0)
        .beta(0, beta)
        .beta(1, beta)
        .constant_price(0, 1.0)
        .constant_price(1, 1.0)
        .candidate(0, 0, &[a, a, a], 0.0)
        .candidate(0, 1, &[a, a, a], 0.0);
    let inst = b.build().unwrap();
    let s: Strategy = vec![
        Triple::new(0, 0, 1),
        Triple::new(0, 1, 2),
        Triple::new(0, 0, 3),
    ]
    .into_iter()
    .collect();
    let rev = revenue(&inst, &s);
    // q_S(u,i,1) = a; q_S(u,j,2) = (1-a)·a·β; q_S(u,i,3) = (1-a)²·a·β^{3/2}; prices are 1.
    let expected = a + (1.0 - a) * a * beta + (1.0 - a_sq(a)) * a * beta.powf(1.5);
    fn a_sq(a: f64) -> f64 {
        1.0 - (1.0 - a) * (1.0 - a)
    }
    assert!((rev - expected).abs() < 1e-12);
}

/// Example 4 / Theorem 2: the revenue function is non-monotone, and G-Greedy
/// does not fall into the trap while SL-Greedy does.
#[test]
fn example_4_non_monotonicity_and_algorithm_behaviour() {
    let mut b = InstanceBuilder::new(1, 1, 2);
    b.display_limit(1)
        .capacity(0, 2)
        .beta(0, 0.1)
        .prices(0, &[1.0, 0.95])
        .candidate(0, 0, &[0.5, 0.6], 0.0);
    let inst = b.build().unwrap();

    let small: Strategy = vec![Triple::new(0, 0, 2)].into_iter().collect();
    let large: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)]
        .into_iter()
        .collect();
    assert!(revenue(&inst, &large) < revenue(&inst, &small));

    assert!((global_greedy(&inst).revenue - 0.57).abs() < 1e-9);
    assert!((sequential_local_greedy(&inst).revenue - 0.5285).abs() < 1e-9);
    assert!((randomized_local_greedy(&inst, 2, 0).revenue - 0.57).abs() < 1e-9);
}

/// Example 3: the effective dynamic adoption probability of R-REVMAX with a
/// capacity-1 item recommended beyond its capacity.
#[test]
fn example_3_effective_probability_with_exceeded_capacity() {
    let mut b = InstanceBuilder::new(3, 1, 2);
    b.display_limit(1)
        .capacity(0, 1)
        .beta(0, 0.5)
        .constant_price(0, 1.0)
        .candidate(0, 0, &[0.2, 0.2], 0.0)
        .candidate(1, 0, &[0.3, 0.3], 0.0)
        .candidate(2, 0, &[0.4, 0.45], 0.0);
    let inst = b.build().unwrap();
    let s: Strategy = vec![
        Triple::new(0, 0, 1),
        Triple::new(1, 0, 2),
        Triple::new(2, 0, 1),
        Triple::new(2, 0, 2),
    ]
    .into_iter()
    .collect();
    let eff: std::collections::HashMap<Triple, f64> =
        effective_probabilities(&inst, &s, &ExactPoissonBinomial)
            .into_iter()
            .collect();
    let expected = 0.45 * (1.0 - 0.4) * 0.5 * (1.0 - 0.2) * (1.0 - 0.3);
    assert!((eff[&Triple::new(2, 0, 2)] - expected).abs() < 1e-12);
}

/// Theorem 1: the Restricted-Timetable-Design reduction — a feasible timetable
/// reaches the revenue threshold N + Υ·E, and G-Greedy finds a valid strategy
/// on the reduced instance without exceeding it.
#[test]
fn theorem_1_reduction_round_trip() {
    let rtd = TimetableInstance {
        available: vec![[true, true, false], [false, true, true]],
        requires: vec![vec![true, true], vec![true, true]],
    };
    assert!(rtd.is_restricted());
    let expensive = 1_000.0;
    let inst = rtd.to_revmax(expensive);
    let assignments: Vec<Assignment> = vec![(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 2)];
    assert!(rtd.is_feasible_timetable(&assignments));
    let strategy = rtd.timetable_to_strategy(&assignments);
    assert!(strategy.validate(&inst).is_ok());
    let threshold = rtd.threshold(expensive);
    assert!((revenue(&inst, &strategy) - threshold).abs() < 1e-9);

    // The greedy heuristic stays valid and can never exceed the threshold
    // (which is the optimum of this construction).
    let gg = global_greedy(&inst);
    assert!(gg.strategy.validate(&inst).is_ok());
    assert!(gg.revenue <= threshold + 1e-9);
}

/// §3.2: with T = 1 the problem is PTIME — the exact Max-DCS solution upper
/// bounds every heuristic and respects both constraints.
#[test]
fn t1_special_case_is_solved_exactly() {
    let mut b = InstanceBuilder::new(4, 3, 1);
    b.display_limit(1)
        .capacity(0, 1)
        .capacity(1, 2)
        .capacity(2, 1)
        .constant_price(0, 30.0)
        .constant_price(1, 20.0)
        .constant_price(2, 10.0);
    for u in 0..4u32 {
        b.candidate(u, 0, &[0.2 + 0.1 * u as f64], 0.0);
        b.candidate(u, 1, &[0.5], 0.0);
        b.candidate(u, 2, &[0.9], 0.0);
    }
    let inst = b.build().unwrap();
    let exact = solve_t1_exact(&inst);
    assert!(exact.strategy.validate(&inst).is_ok());
    // Constraint-respecting algorithms can never beat the exact optimum.
    for out in [global_greedy(&inst), sequential_local_greedy(&inst)] {
        assert!(out.strategy.validate(&inst).is_ok());
        assert!(out.revenue <= exact.weight + 1e-6);
    }
    // TopRE ignores the capacity constraint when choosing items, so it may
    // nominally exceed the *constrained* optimum — but its plan is invalid.
    let top_re = top_revenue(&inst);
    assert!(top_re.strategy.validate(&inst).is_err());
}
