//! Workspace-level integration tests: the full pipeline from dataset
//! generation through optimization, exercised via the `revmax` facade exactly
//! the way a downstream user would.

use revmax::prelude::*;

fn small_marketplace() -> GeneratedDataset {
    let mut config = DatasetConfig::tiny();
    config.num_users = 50;
    config.num_items = 30;
    config.candidates_per_user = 10;
    config.horizon = 5;
    config.capacity = CapacityDistribution::Gaussian {
        mean: 40.0,
        std: 4.0,
    };
    generate(&config)
}

#[test]
fn full_pipeline_produces_profitable_valid_plans() {
    let ds = small_marketplace();
    let inst = &ds.instance;
    assert!(ds.positive_triples() > 500);
    assert!(ds.mf_rmse.is_finite() && ds.mf_rmse < 2.0);

    let gg = global_greedy(inst);
    assert!(gg.strategy.validate(inst).is_ok());
    assert!(gg.revenue > 0.0);
    // The reported revenue is reproducible from the strategy alone.
    assert!((gg.revenue - revenue(inst, &gg.strategy)).abs() < 1e-9);
}

#[test]
fn paper_ranking_holds_end_to_end() {
    let ds = small_marketplace();
    let inst = &ds.instance;
    let gg = global_greedy(inst);
    let slg = sequential_local_greedy(inst);
    let rlg = randomized_local_greedy(inst, 6, 9);
    let top_re = top_revenue(inst);
    let top_ra = top_rating(inst);

    // The qualitative ordering the paper reports in Figures 1–3:
    // GG ≥ RLG ≥ (roughly) SLG, and all greedy variants beat the baselines.
    assert!(gg.revenue + 1e-9 >= rlg.revenue);
    assert!(rlg.revenue + 1e-9 >= slg.revenue);
    assert!(gg.revenue > top_re.revenue);
    assert!(gg.revenue > top_ra.revenue);
    assert!(top_re.revenue > top_ra.revenue);
}

#[test]
fn runner_covers_staged_price_information() {
    let ds = small_marketplace();
    let inst = &ds.instance;
    let holistic = run(inst, &Algorithm::GlobalGreedy, 1);
    let staged = run(
        inst,
        &Algorithm::StagedGlobalGreedy {
            stage_ends: vec![2],
        },
        1,
    );
    assert!(staged.outcome.strategy.validate(inst).is_ok());
    // Losing foresight can only cost revenue on the greedy path used here.
    assert!(staged.revenue <= holistic.revenue + 1e-9);
    // It still vastly outperforms the static rating baseline.
    let top_ra = run(inst, &Algorithm::TopRating, 1);
    assert!(staged.revenue > top_ra.revenue);
}

#[test]
fn t1_special_case_agrees_with_exact_solver() {
    // Build a single-day instance through the generator and check the greedy
    // against the exact Max-DCS optimum.
    let mut config = DatasetConfig::tiny();
    config.horizon = 1;
    config.num_users = 25;
    config.num_items = 15;
    config.candidates_per_user = 8;
    let ds = generate(&config);
    let exact = solve_t1_exact(&ds.instance);
    let greedy = global_greedy(&ds.instance);
    assert!(greedy.revenue <= exact.weight + 1e-6);
    assert!(greedy.revenue >= 0.85 * exact.weight);
}

#[test]
fn saturation_strength_shifts_repeat_behaviour() {
    // Figure 5's qualitative claim: with weak saturation (β = 0.9) G-Greedy
    // repeats recommendations more than with strong saturation (β = 0.1).
    // Give every user clearly more candidate items than recommendation slots,
    // so the greedy is never *forced* to repeat and the effect of β is visible.
    let repeats_for = |beta: f64| {
        let mut config = DatasetConfig::tiny();
        config.num_users = 60;
        config.num_items = 40;
        config.candidates_per_user = 15;
        config.horizon = 5;
        config.display_limit = 2;
        config.beta = BetaSetting::Fixed(beta);
        let ds = generate(&config);
        let gg = global_greedy(&ds.instance);
        let hist = gg.strategy.repeat_histogram();
        let total: u32 = hist.values().sum();
        total as f64 / hist.len().max(1) as f64 // mean repeats per (user, item) pair
    };
    let strong = repeats_for(0.1);
    let weak = repeats_for(0.9);
    assert!(
        weak + 1e-9 >= strong,
        "weak saturation should allow at least as many repeats on average ({weak} vs {strong})"
    );
}
