//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small subset of the `rand` 0.8 API the REVMAX code actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator behind
//! `StdRng` is xoshiro256** seeded through SplitMix64 — not the ChaCha12 of
//! the real crate, so seeded streams differ from upstream `rand`, but they are
//! deterministic, high-quality, and stable within this repository.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of uniform values and ranges, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from a half-open or inclusive range.
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`; panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        uniform_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn uniform_f64(bits: u64) -> f64 {
    // 53 high bits → uniform on the dyadic grid of [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Lemire-style unbiased bounded sampling on `[0, bound)` for `bound ≥ 1`.
#[inline]
fn bounded_u64<G: RngCore + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound >= 1);
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(bounded_u64(rng, span) as $ty)
            }
            #[inline]
            fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/u128-like domain.
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(bounded_u64(rng, span as u64) as $ty)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        let u = uniform_f64(rng.next_u64());
        let v = low + (high - low) * u;
        // Floating rounding can land exactly on `high`; clamp to the previous
        // representable value so the bound stays exclusive for any magnitude.
        if v >= high {
            high.next_down().max(low)
        } else {
            v
        }
    }
    #[inline]
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        low + (high - low) * uniform_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    #[inline]
    fn sample_inclusive<G: RngCore + ?Sized>(rng: &mut G, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`), mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing a Fisher–Yates shuffle on slices.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore + ?Sized>(&mut self, rng: &mut G) {
            for idx in (1..self.len()).rev() {
                let j = rng.gen_range(0..=idx);
                self.swap(idx, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 40)).collect();
        let mut a = StdRng::seed_from_u64(42);
        let differs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 40)).collect();
        assert_ne!(same, differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn integer_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
