//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the criterion 0.5 API the REVMAX benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: every benchmark runs a short calibration pass, then
//! `sample_size` timed samples; the mean, median, and min per-iteration time
//! are printed and appended to a JSON report. Set `REVMAX_BENCH_JSON=<path>`
//! to choose the report file (default `target/revmax-bench.json`); set
//! `REVMAX_BENCH_FAST=1` to clamp sample counts for smoke runs.

use std::fmt;
use std::fs;
use std::hint;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque identity function that prevents the optimizer from deleting a value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for a parameterised benchmark, e.g. `exact_dp/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// One timing measurement, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/benchmark` path.
    pub id: String,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
    }

    fn record(&mut self, m: Measurement) {
        println!(
            "{:<48} median {:>12.1} ns  mean {:>12.1} ns  min {:>12.1} ns  ({} samples)",
            m.id, m.median_ns, m.mean_ns, m.min_ns, m.samples
        );
        self.results.push(m);
    }

    /// Writes all recorded measurements as a JSON array.
    pub fn write_report(&self) {
        let path = report_path();
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let mut out = String::from("[\n");
        for (idx, m) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
                m.id.replace('"', "\\\""),
                m.median_ns,
                m.mean_ns,
                m.min_ns,
                m.samples,
                if idx + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        match fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => println!("bench report written to {}", path.display()),
            Err(e) => eprintln!("could not write bench report {}: {e}", path.display()),
        }
    }
}

fn report_path() -> PathBuf {
    std::env::var_os("REVMAX_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/revmax-bench.json"))
}

fn fast_mode() -> bool {
    std::env::var_os("REVMAX_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty())
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100; the
    /// shim defaults to 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Soft cap on the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times a closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let samples = if fast_mode() { 2 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            budget: self.measurement_time,
            times: Vec::new(),
        };
        f(&mut bencher);
        self.parent.record(bencher.measurement(full));
    }

    /// Times a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; drop would do).
    pub fn finish(self) {}
}

/// Collects per-sample timings for one benchmark.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    times: Vec<f64>,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed call to warm caches and page in code.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed().as_nanos() as f64);
            if started.elapsed() > self.budget * 4 && self.times.len() >= 2 {
                break;
            }
        }
    }

    fn measurement(mut self, id: String) -> Measurement {
        if self.times.is_empty() {
            self.times.push(0.0);
        }
        self.times
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = self.times.len();
        let median = if n % 2 == 1 {
            self.times[n / 2]
        } else {
            0.5 * (self.times[n / 2 - 1] + self.times[n / 2])
        };
        Measurement {
            id,
            mean_ns: self.times.iter().sum::<f64>() / n as f64,
            median_ns: median,
            min_ns: self.times[0],
            samples: n,
        }
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics_are_sane() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/noop");
        assert_eq!(c.results[1].id, "g/param/3");
        for m in &c.results {
            assert!(m.min_ns <= m.median_ns + 1e-9);
            assert!(m.samples >= 2);
        }
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
