//! # revmax
//!
//! Facade crate for the REVMAX workspace — a from-scratch Rust reproduction of
//! *"Show Me the Money: Dynamic Recommendations for Revenue Maximization"*
//! (Lu, Chen, Li, Lakshmanan; PVLDB 7(14), 2014).
//!
//! The individual crates can be used directly; this facade re-exports them
//! under stable module names and provides a small [`prelude`] so examples and
//! downstream users can get going with a single `use revmax::prelude::*`.
//!
//! * [`core`] — the revenue model: instances, strategies, dynamic adoption
//!   probabilities, marginal revenue, constraints, R-REVMAX.
//! * [`algorithms`] — G-Greedy, SL/RL-Greedy, baselines, local search,
//!   Max-DCS, and the timed runner.
//! * [`recsys`] — the matrix-factorization substrate.
//! * [`pricing`] — KDE, valuations, and the random-price Taylor extension.
//! * [`data`] — synthetic dataset generators shaped like the paper's crawls.
//!
//! ## Quickstart
//!
//! ```
//! use revmax::prelude::*;
//!
//! // A seller with two users, two competing items, and a two-day horizon.
//! let mut b = InstanceBuilder::new(2, 2, 2);
//! b.display_limit(1)
//!     .item_class(0, 0)
//!     .item_class(1, 0)
//!     .beta(0, 0.5)
//!     .beta(1, 0.5)
//!     .prices(0, &[99.0, 79.0]) // item 0 goes on sale on day 2
//!     .prices(1, &[49.0, 49.0])
//!     .candidate(0, 0, &[0.3, 0.6], 4.5)
//!     .candidate(0, 1, &[0.7, 0.7], 3.9)
//!     .candidate(1, 0, &[0.5, 0.8], 4.8)
//!     .candidate(1, 1, &[0.4, 0.4], 3.2);
//! let instance = b.build().unwrap();
//!
//! let outcome = global_greedy(&instance);
//! assert!(outcome.revenue > 0.0);
//! assert!(outcome.strategy.validate(&instance).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use revmax_algorithms as algorithms;
pub use revmax_core as core;
pub use revmax_data as data;
pub use revmax_pricing as pricing;
pub use revmax_recsys as recsys;
pub use revmax_serve as serve;

/// The most commonly used items across the workspace, re-exported flat.
pub mod prelude {
    pub use revmax_algorithms::{
        global_greedy, global_greedy_with, global_no_saturation, randomized_local_greedy, run,
        sequential_local_greedy, solve_t1_exact, top_rating, top_revenue, Algorithm, EngineKind,
        GreedyOptions, GreedyOutcome, HeapKind, RunReport,
    };
    pub use revmax_core::{
        revenue, IncrementalRevenue, Instance, InstanceBuilder, ItemId, Strategy, TimeStep, Triple,
        UserId,
    };
    pub use revmax_data::{
        generate, generate_scalability, BetaSetting, CapacityDistribution, DatasetConfig,
        GeneratedDataset, Table1Stats,
    };
    pub use revmax_pricing::{adoption_probability, GaussianKde, GaussianValuation, Valuation};
    pub use revmax_recsys::{MatrixFactorization, MfConfig, RatingSet};
    pub use revmax_serve::{plan_batch, BatchAlgorithm, BatchPlanner, PlanOptions};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let config = DatasetConfig::tiny();
        let ds = generate(&config);
        let out = global_greedy(&ds.instance);
        assert!(out.revenue >= 0.0);
        assert!(out.strategy.validate(&ds.instance).is_ok());
    }
}
