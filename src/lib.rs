//! # revmax
//!
//! Facade crate for the REVMAX workspace — a from-scratch Rust reproduction of
//! *"Show Me the Money: Dynamic Recommendations for Revenue Maximization"*
//! (Lu, Chen, Li, Lakshmanan; PVLDB 7(14), 2014).
//!
//! The individual crates can be used directly; this facade re-exports them
//! under stable module names and provides a small [`prelude`] so examples and
//! downstream users can get going with a single `use revmax::prelude::*`.
//!
//! **Start here for orientation:** `ARCHITECTURE.md` in the repository root
//! maps the 8 crates, the
//! `Instance → PlannerConfig → plan/plan_residual → PlanService/PlanSession`
//! data flow, and the engine / ledger / heap extension points;
//! `docs/submodularity.md` explains why the exact marginal implemented here
//! is not submodular (~13% of random instances violate the Theorem-2
//! inequality) and how lazy-forward correctness is therefore validated
//! empirically.
//!
//! * [`core`] — the revenue model: instances, strategies, dynamic adoption
//!   probabilities, marginal revenue, constraints, adoption events and
//!   residual instances, R-REVMAX.
//! * [`algorithms`] — G-Greedy, SL/RL-Greedy, baselines, local search,
//!   Max-DCS, and the timed runner, all configured by one
//!   [`PlannerConfig`](crate::algorithms::PlannerConfig) and driven through
//!   [`plan`](crate::algorithms::plan).
//! * [`serve`] — the serving layer: the asynchronous
//!   [`PlanService`](crate::serve::PlanService) (submit → ticket →
//!   wait/wait_timeout/poll/cancel) and adoption-driven
//!   [`PlanSession`](crate::serve::PlanSession) replanning — inline, or
//!   attached to a shared service (ticketed replans, stale ones cancelled),
//!   with optional warm-started residual replans
//!   (`PlannerConfig::warm_start`).
//! * [`recsys`] — the matrix-factorization substrate.
//! * [`pricing`] — KDE, valuations, and the random-price Taylor extension.
//! * [`data`] — synthetic dataset generators shaped like the paper's crawls.
//!
//! ## Quickstart: one-shot planning
//!
//! ```
//! use revmax::prelude::*;
//!
//! // A seller with two users, two competing items, and a two-day horizon.
//! let mut b = InstanceBuilder::new(2, 2, 2);
//! b.display_limit(1)
//!     .item_class(0, 0)
//!     .item_class(1, 0)
//!     .beta(0, 0.5)
//!     .beta(1, 0.5)
//!     .prices(0, &[99.0, 79.0]) // item 0 goes on sale on day 2
//!     .prices(1, &[49.0, 49.0])
//!     .candidate(0, 0, &[0.3, 0.6], 4.5)
//!     .candidate(0, 1, &[0.7, 0.7], 3.9)
//!     .candidate(1, 0, &[0.5, 0.8], 4.8)
//!     .candidate(1, 1, &[0.4, 0.4], 3.2);
//! let instance = b.build().unwrap();
//!
//! let outcome = plan(&instance, &PlannerConfig::default());
//! assert!(outcome.revenue > 0.0);
//! assert!(outcome.strategy.validate(&instance).is_ok());
//! ```
//!
//! ## Dynamic sessions: react to adoptions
//!
//! ```
//! # use revmax::prelude::*;
//! # let mut b = InstanceBuilder::new(2, 2, 3);
//! # b.display_limit(1).item_class(0, 0).item_class(1, 0).beta(0, 0.5).beta(1, 0.5)
//! #     .prices(0, &[99.0, 79.0, 59.0]).prices(1, &[49.0, 49.0, 49.0])
//! #     .candidate(0, 0, &[0.3, 0.6, 0.5], 4.5).candidate(0, 1, &[0.7, 0.7, 0.6], 3.9)
//! #     .candidate(1, 0, &[0.5, 0.8, 0.7], 4.8).candidate(1, 1, &[0.4, 0.4, 0.3], 3.2);
//! # let instance = b.build().unwrap();
//! // warm_start recycles engine state between replans (identical plans).
//! let config = PlannerConfig::default().with_warm_start(true);
//! let mut session = PlanSession::new(instance, config);
//! let today = session.upcoming(); // what to display on day 1
//! // … the storefront reports what actually happened …
//! let events: Vec<AdoptionEvent> = today
//!     .iter()
//!     .map(|z| AdoptionEvent::rejected(z.user.0, z.item.0, z.t.value()))
//!     .collect();
//! let report = session.advance(&events).unwrap(); // replans days 2..=T
//! assert!(report.expected_remaining_revenue >= 0.0);
//!
//! // Or multiplex many sessions over one service: ticketed replans,
//! // stale in-flight replans cancelled by newer event batches.
//! # use std::sync::Arc;
//! let service = Arc::new(PlanService::new(2));
//! session.attach(&service);
//! let report = session.advance(&[]).unwrap();
//! assert!(report.pending);
//! session.sync().expect("collects the replanned suffix");
//! ```
//!
//! ## Migrating from the pre-unification API
//!
//! | Deprecated | Replacement |
//! |---|---|
//! | `GreedyOptions { engine, heap, shards, .. }` | [`PlannerConfig`](crate::algorithms::PlannerConfig) builder (`with_engine`, `with_heap`, `with_shards`, …) |
//! | `LocalGreedyOptions { .. }` | `PlannerConfig` with `PlanAlgorithm::SequentialLocalGreedy` |
//! | `global_greedy_with(inst, &opts)` | [`plan`](crate::algorithms::plan)`(inst, &config)` |
//! | `local_greedy_with_order_opts(inst, order, &opts)` | [`plan_order`](crate::algorithms::plan_order)`(inst, order, &config)` |
//! | `sharded_global_greedy` / `sharded_local_greedy` | `sharded_plan` / `sharded_plan_order` |
//! | `GreedyOptions::from_env()` | `PlannerConfig::from_env()` (adds `REVMAX_ALGORITHM`, `REVMAX_SEED`, `REVMAX_WARM_START`) |
//! | `BatchPlanner` / `PlanOptions` / `BatchAlgorithm` | [`PlanService`](crate::serve::PlanService) / `PlannerConfig` / `PlanAlgorithm` |
//! | synchronous-only `PlanSession::advance` | [`PlanSession::attach`](crate::serve::PlanSession::attach) + `advance` + `sync` (ticketed replans over a shared service) |
//! | conservative residual capacity (re-displays double-charged) | exempt-aware exact capacity (default); `ResidualMode::Conservative` keeps the old accounting |
//!
//! Every deprecated entry point still compiles and produces an identical
//! plan (the old structs convert into `PlannerConfig` via `From`).
//!
//! ### Removal schedule
//!
//! The deprecated shims above shipped with the 0.2.0 unification (PR 3) and
//! have been conversion-only ever since. They are scheduled for **removal in
//! 0.4.0** (two releases after deprecation): until then they stay
//! compile-clean and plan-identical, enforced by the compat suites
//! (`deprecated_entry_points_match_the_unified_surface` in
//! `crates/algorithms`, `deprecated_plan_options_surface_still_works` in
//! `crates/serve`). The only remaining `#[allow(deprecated)]` sites in the
//! workspace are the shim definitions themselves, their re-exports, and
//! those compat tests — no internal caller consumes the deprecated surface.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use revmax_algorithms as algorithms;
pub use revmax_core as core;
pub use revmax_data as data;
pub use revmax_pricing as pricing;
pub use revmax_recsys as recsys;
pub use revmax_serve as serve;

/// The most commonly used items across the workspace, re-exported flat.
pub mod prelude {
    pub use revmax_algorithms::{
        global_greedy, global_no_saturation, plan, plan_order, plan_residual,
        randomized_local_greedy, run, sequential_local_greedy, solve_t1_exact, top_rating,
        top_revenue, Aggregates, Algorithm, EngineKind, GreedyOutcome, HeapKind, PlanAlgorithm,
        PlannerConfig, RunReport,
    };
    pub use revmax_core::{
        realized_revenue, residual_advance, residual_instance, residual_instance_with, revenue,
        shift_strategy, validate_events, AdoptionEvent, AdoptionOutcome, BetaProfile,
        EngineSnapshot, EventError, IncrementalRevenue, Instance, InstanceBuilder, ItemId,
        ResidualDelta, ResidualMode, Strategy, TimeStep, Triple, UserId,
    };
    pub use revmax_data::{
        generate, generate_scalability, BetaSetting, CapacityDistribution, DatasetConfig,
        GeneratedDataset, Table1Stats,
    };
    pub use revmax_pricing::{adoption_probability, GaussianKde, GaussianValuation, Valuation};
    pub use revmax_recsys::{MatrixFactorization, MfConfig, RatingSet};
    pub use revmax_serve::{
        plan_batch, PlanService, PlanSession, PlanTicket, ReplanReport, TicketStatus, WaitOutcome,
    };

    // Deprecated pre-unification names, kept importable for compatibility.
    #[allow(deprecated)]
    pub use revmax_algorithms::{global_greedy_with, GreedyOptions, LocalGreedyOptions};
    #[allow(deprecated)]
    pub use revmax_serve::{BatchAlgorithm, BatchPlanner, PlanOptions};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let config = DatasetConfig::tiny();
        let ds = generate(&config);
        let out = plan(&ds.instance, &PlannerConfig::default());
        assert!(out.revenue >= 0.0);
        assert!(out.strategy.validate(&ds.instance).is_ok());
        // The convenience entry and the unified entry agree.
        let direct = global_greedy(&ds.instance);
        assert_eq!(out.revenue.to_bits(), direct.revenue.to_bits());
    }

    #[test]
    fn facade_session_and_service_roundtrip() {
        let config = DatasetConfig::tiny();
        let ds = generate(&config);

        let service = PlanService::new(1);
        let ticket = service.submit(ds.instance.clone(), PlannerConfig::default());
        let report = ticket.wait().expect("not cancelled");

        let mut session = PlanSession::new(ds.instance.clone(), PlannerConfig::default());
        assert_eq!(
            session.planned_suffix().len(),
            report.outcome.strategy.len()
        );
        if !session.is_exhausted() {
            let events: Vec<AdoptionEvent> = session
                .upcoming()
                .iter()
                .map(|z| AdoptionEvent::adopted(z.user.0, z.item.0, z.t.value()))
                .collect();
            session.advance(&events).expect("advance");
            assert!(session.expected_total_revenue() >= session.realized_revenue());
        }
    }
}
