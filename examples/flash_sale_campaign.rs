//! Flash-sale campaign: the motivating scenario of the paper's introduction.
//!
//! A smartphone is scheduled to go on sale mid-week. High-valuation users
//! (willing to pay full price) should see the recommendation *before* the
//! price drops; low-valuation users should see it *on* the sale day, when
//! their adoption probability jumps. This example builds that scenario
//! explicitly and shows that Global Greedy times the recommendations exactly
//! that way, while a static top-rating recommender cannot.
//!
//! Run with: `cargo run --release --example flash_sale_campaign`

use revmax::prelude::*;
use revmax::pricing::adoption_series;

fn main() {
    let horizon = 5u32;
    let sale_day = 4usize; // day 4 of 5 (1-based)
    let full_price = 699.0;
    let sale_price = 499.0;
    let mut prices = vec![full_price; horizon as usize];
    prices[sale_day - 1] = sale_price;

    // 10 users: half value the phone above full price, half only above the
    // sale price.
    let num_users = 10u32;
    let mut builder = InstanceBuilder::new(num_users, 1, horizon);
    builder
        .display_limit(1)
        .beta(0, 0.3)
        .capacity(0, num_users)
        .prices(0, &prices);

    let rating = 4.6;
    let max_rating = 5.0;
    for u in 0..num_users {
        let valuation = if u % 2 == 0 {
            // High-valuation users: mean willingness to pay above full price.
            GaussianValuation {
                mean: 780.0,
                std: 60.0,
            }
        } else {
            // Low-valuation users: only comfortable at the sale price.
            GaussianValuation {
                mean: 560.0,
                std: 60.0,
            }
        };
        let probs = adoption_series(&valuation, rating, max_rating, &prices);
        builder.candidate(u, 0, &probs, rating);
    }
    let instance = builder.build().expect("valid instance");

    // Engine / heap / shard selection from the environment (REVMAX_ENGINE,
    // REVMAX_HEAP, REVMAX_SHARDS); the plan is identical for every choice.
    let plan = plan(&instance, &PlannerConfig::from_env());
    println!("expected campaign revenue: {:.2}\n", plan.revenue);
    println!("{:<10} {:>12} {:>14}", "user", "segment", "first shown on");
    let mut first_day = vec![None::<u32>; num_users as usize];
    for z in plan.strategy.iter() {
        let slot = &mut first_day[z.user.index()];
        *slot = Some(slot.map_or(z.t.value(), |d: u32| d.min(z.t.value())));
    }
    let mut before_sale_high = 0;
    let mut on_sale_low = 0;
    for u in 0..num_users {
        let segment = if u % 2 == 0 {
            "high-value"
        } else {
            "low-value"
        };
        let day = first_day[u as usize].map_or("never".to_string(), |d| format!("day {d}"));
        println!("{:<10} {:>12} {:>14}", format!("user {u}"), segment, day);
        match (u % 2 == 0, first_day[u as usize]) {
            (true, Some(d)) if (d as usize) < sale_day => before_sale_high += 1,
            (false, Some(d)) if d as usize == sale_day => on_sale_low += 1,
            _ => {}
        }
    }
    println!(
        "\n{before_sale_high}/5 high-valuation users are targeted before the sale, \
         {on_sale_low}/5 low-valuation users exactly on the sale day."
    );

    let myopic = top_rating(&instance);
    println!(
        "\nstatic rating-based rollout earns {:.2} ({:.0}% of the strategic plan)",
        myopic.revenue,
        100.0 * myopic.revenue / plan.revenue
    );
}
