//! Uncertain prices (§7): when next week's prices are only known as
//! distributions, the expected revenue of a plan can be estimated with the
//! second-order Taylor expansion instead of naively plugging in mean prices.
//!
//! Run with: `cargo run --release --example uncertain_prices`

use revmax::pricing::{
    rand_rev_mean_price, rand_rev_monte_carlo, rand_rev_taylor, CovarianceMatrix,
    GaussianValuation, RandomPriceTriple,
};

fn main() {
    // A user will be shown two competing laptops on Monday and Wednesday; each
    // price is forecast with some uncertainty, and the two prices of the same
    // retailer are positively correlated.
    let means = vec![1199.0, 1099.0];
    let stds = [120.0, 90.0];
    let mut cov = CovarianceMatrix::diagonal(&[stds[0] * stds[0], stds[1] * stds[1]]);
    cov.set(0, 1, 0.4 * stds[0] * stds[1]);

    let monday = RandomPriceTriple {
        own_var: 0,
        competitor_vars: vec![],
        rating_factor: 0.92,
        competitor_rating_factors: vec![],
        valuation: GaussianValuation {
            mean: 1250.0,
            std: 180.0,
        },
        competitor_valuations: vec![],
        saturation_discount: 1.0,
    };
    let wednesday = RandomPriceTriple {
        own_var: 1,
        competitor_vars: vec![0], // competes with Monday's laptop
        rating_factor: 0.85,
        competitor_rating_factors: vec![0.92],
        valuation: GaussianValuation {
            mean: 1180.0,
            std: 160.0,
        },
        competitor_valuations: vec![GaussianValuation {
            mean: 1250.0,
            std: 180.0,
        }],
        saturation_discount: 0.7, // some saturation from the Monday impression
    };
    let plan = vec![monday, wednesday];

    let naive = rand_rev_mean_price(&plan, &means);
    let taylor = rand_rev_taylor(&plan, &means, &cov);
    let truth = rand_rev_monte_carlo(&plan, &means, &cov, 200_000, 7).expect("PSD covariance");

    println!("expected revenue of the two-slot plan under price uncertainty");
    println!("  mean-price heuristic : {naive:>9.2}");
    println!("  Taylor (2nd order)   : {taylor:>9.2}");
    println!("  Monte-Carlo (200k)   : {truth:>9.2}");
    println!(
        "\nTaylor absolute error {:.2} vs mean-price error {:.2}",
        (taylor - truth).abs(),
        (naive - truth).abs()
    );
}
