//! Dynamic storefronts over one plan service: several concurrent
//! [`PlanSession`]s — one per regional storefront — multiplex a shared
//! [`PlanService`] worker pool and react to adoption events day by day,
//! with warm-started replans. The paper's *dynamic* premise, end to end.
//!
//! Each storefront plans a 5-day campaign, then lives through it: every
//! morning it displays the planned recommendations, every evening it
//! reports which users adopted and which ignored them. The session fixes
//! the realized prefix, conditions the instance on it (adopted classes
//! close, rejected displays keep their saturation memory, consumed capacity
//! stays consumed — with the displayed pairs exempt, so re-displays are
//! never double-charged), submits the replan of the remaining days as a
//! ticketed job, and the storefront collects it with `sync()`.
//!
//! Run with: `cargo run --release --example dynamic_storefront`
//!
//! Planner configuration comes from `PlannerConfig::from_env()`
//! (`REVMAX_ENGINE`, `REVMAX_HEAP`, `REVMAX_SHARDS`, `REVMAX_WARM_START`,
//! …) with warm-started replans enabled by default; none of the knobs may
//! change any (re)plan, which the example asserts by cross-checking every
//! replanned suffix against a from-scratch plan of the residual instance
//! on the *other* engine.

use revmax::prelude::*;
use std::sync::Arc;

/// One regional storefront's instance: 6 shoppers, 6 items in 3 classes
/// (tablets, headphones, chargers), 5 days; the flagship tablet goes on
/// sale on day 4. The `region` seed shifts shopper tastes so the three
/// storefronts genuinely plan different campaigns.
fn storefront(region: u32) -> Instance {
    let mut b = InstanceBuilder::new(6, 6, 5);
    b.display_limit(1)
        .item_class(0, 0)
        .item_class(1, 0)
        .item_class(2, 1)
        .item_class(3, 1)
        .item_class(4, 2)
        .item_class(5, 2)
        .beta(0, 0.35)
        .beta(1, 0.35)
        .beta(2, 0.6)
        .beta(3, 0.6)
        .beta(4, 0.8)
        .beta(5, 0.8)
        .capacity(0, 3)
        .capacity(1, 4)
        .capacity(2, 4)
        .capacity(3, 3)
        .capacity(4, 5)
        .capacity(5, 5)
        .prices(0, &[499.0, 499.0, 499.0, 399.0, 399.0]) // sale on day 4
        .prices(1, &[349.0, 349.0, 349.0, 349.0, 329.0])
        .prices(2, &[129.0, 119.0, 129.0, 129.0, 109.0])
        .prices(3, &[89.0, 89.0, 79.0, 89.0, 89.0])
        .prices(4, &[39.0, 39.0, 39.0, 35.0, 39.0])
        .prices(5, &[25.0, 25.0, 22.0, 25.0, 25.0]);
    for u in 0..6u32 {
        for i in 0..6u32 {
            if (u + i + region).is_multiple_of(2) || i.is_multiple_of(3) {
                let base = 0.10 + 0.05 * ((u + 2 * i + region) % 5) as f64;
                let probs: Vec<f64> = (0..5)
                    .map(|t| {
                        // Adoption jumps on discounted days.
                        let discount_kick = if (i == 0 && t == 3) || (i == 2 && t == 4) {
                            0.25
                        } else {
                            0.0
                        };
                        (base + 0.02 * t as f64 + discount_kick).min(0.95)
                    })
                    .collect();
                b.candidate(u, i, &probs, 3.0 + ((u + i) % 3) as f64 * 0.6);
            }
        }
    }
    b.build().expect("valid instance")
}

fn main() {
    // Warm-started replans by default; every REVMAX_* knob still applies on
    // top (and none may change a plan).
    let config = PlannerConfig::default().with_warm_start(true).env_overlay();
    let regions = ["north", "south", "harbor"];

    // One shared service: every storefront's replans are ticketed jobs on
    // the same worker pool.
    let service = Arc::new(PlanService::new(2));
    let mut sessions: Vec<(&str, Instance, PlanSession)> = regions
        .iter()
        .enumerate()
        .map(|(region, &name)| {
            let instance = storefront(region as u32);
            let mut session = PlanSession::new(instance.clone(), config);
            session.attach(&service);
            (name, instance, session)
        })
        .collect();
    for (name, _, session) in &sessions {
        println!(
            "{name:>7}: campaign plan {} slots, expected revenue {:.2}",
            session.planned_suffix().len(),
            session.expected_remaining_revenue()
        );
    }
    println!();

    for day in 1..=5u32 {
        // Morning: every storefront displays its plan and observes the
        // shoppers. A user adopts a display when its primitive adoption
        // probability is high enough for the day.
        let batches: Vec<Vec<AdoptionEvent>> = sessions
            .iter()
            .map(|(_, instance, session)| {
                session
                    .upcoming()
                    .iter()
                    .map(|z| AdoptionEvent {
                        user: z.user,
                        item: z.item,
                        t: z.t,
                        outcome: if instance.prob_of(*z) >= 0.22 {
                            AdoptionOutcome::Adopted
                        } else {
                            AdoptionOutcome::Rejected
                        },
                    })
                    .collect()
            })
            .collect();

        // Evening: submit every storefront's replan before collecting any —
        // the sessions multiplex the shared pool instead of replanning one
        // after another on this thread.
        let mut submitted: Vec<ReplanReport> = Vec::new();
        for ((_, _, session), events) in sessions.iter_mut().zip(&batches) {
            let report = session.advance(events).expect("valid event batch");
            assert!(report.pending == (day < 5), "day 5 exhausts the horizon");
            submitted.push(report);
        }
        for (((name, _, session), events), submitted_report) in
            sessions.iter_mut().zip(&batches).zip(submitted)
        {
            // sync() collects the ticketed replan; on day 5 the horizon is
            // exhausted, nothing was submitted, and the advance report was
            // already final.
            let report = session.sync().unwrap_or(submitted_report);
            let adopted = events.iter().filter(|e| e.is_adoption()).count();
            println!(
                "day {day} {name:>7}: displayed {:>2}, adopted {adopted:>2} | realized \
                 ${:>8.2} | replanned {:>2} future slots worth ${:>8.2}",
                events.len(),
                report.realized_revenue,
                report.suffix_len,
                report.expected_remaining_revenue,
            );

            // Engine cross-check: the replanned suffix must equal a
            // from-scratch plan of the residual instance under the *other*
            // engine to 1e-9 — warm starts, the service route, and the
            // engine are all pure performance knobs.
            if let Some(residual) = session.residual() {
                let other = match config.engine {
                    EngineKind::Flat => EngineKind::Hash,
                    EngineKind::Hash => EngineKind::Flat,
                };
                let reference = plan(residual, &config.with_engine(other));
                assert!(
                    (reference.revenue - session.expected_remaining_revenue()).abs() < 1e-9,
                    "engines disagreed on the replanned suffix: {} vs {}",
                    reference.revenue,
                    session.expected_remaining_revenue()
                );
                let shifted = shift_strategy(&reference.strategy, session.now());
                assert_eq!(
                    shifted.as_slice(),
                    session.planned_suffix().as_slice(),
                    "engines disagreed on the replanned suffix triples"
                );
            }
        }
        println!();
    }

    let mut grand_total = 0.0;
    for (name, _, session) in &sessions {
        assert!(session.is_exhausted());
        let adopted = session.events().iter().filter(|e| e.is_adoption()).count();
        grand_total += session.realized_revenue();
        println!(
            "{name:>7}: campaign over — realized ${:.2} across {} events \
             ({} adoptions, {} {} replans)",
            session.realized_revenue(),
            session.events().len(),
            adopted,
            session.replans(),
            if config.warm_start { "warm" } else { "cold" },
        );
        // The snapshot pool only fills for the flat engine (the hash engine
        // has nothing worth recycling) and only when the knob is on — and
        // `REVMAX_WARM_START=0` / `REVMAX_ENGINE=hash` may have overridden
        // the defaults above.
        if config.warm_start && config.engine == EngineKind::Flat {
            assert!(
                session.warm_snapshot().has_tables(),
                "warm-started sessions must engage the snapshot pool"
            );
        }
    }
    println!(
        "\nall storefronts: ${grand_total:.2} realized over one shared PlanService \
         ({} workers).",
        service.worker_count()
    );
}
