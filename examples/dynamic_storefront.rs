//! Dynamic storefront: drive a [`PlanSession`] through a stream of adoption
//! events — the paper's *dynamic* premise end to end.
//!
//! A small storefront plans a 5-day campaign, then lives through it day by
//! day: each morning it displays the planned recommendations, each evening
//! it reports which users adopted and which ignored them, and the session
//! fixes the realized prefix and replans the remaining days on the residual
//! instance (adopted classes close, rejected displays keep their saturation
//! memory, consumed capacity stays consumed).
//!
//! Run with: `cargo run --release --example dynamic_storefront`
//!
//! Planner configuration comes from `PlannerConfig::from_env()`
//! (`REVMAX_ENGINE`, `REVMAX_HEAP`, `REVMAX_SHARDS`, …); none of the knobs
//! may change any (re)plan, which the example asserts by cross-checking
//! every replanned suffix against a from-scratch plan of the residual
//! instance on the *other* engine.

use revmax::prelude::*;

fn main() {
    // 6 shoppers, 6 items in 3 classes (tablets, headphones, chargers),
    // 5 days; the flagship tablet goes on sale on day 4.
    let mut b = InstanceBuilder::new(6, 6, 5);
    b.display_limit(1)
        .item_class(0, 0)
        .item_class(1, 0)
        .item_class(2, 1)
        .item_class(3, 1)
        .item_class(4, 2)
        .item_class(5, 2)
        .beta(0, 0.35)
        .beta(1, 0.35)
        .beta(2, 0.6)
        .beta(3, 0.6)
        .beta(4, 0.8)
        .beta(5, 0.8)
        .capacity(0, 3)
        .capacity(1, 4)
        .capacity(2, 4)
        .capacity(3, 3)
        .capacity(4, 5)
        .capacity(5, 5)
        .prices(0, &[499.0, 499.0, 499.0, 399.0, 399.0]) // sale on day 4
        .prices(1, &[349.0, 349.0, 349.0, 349.0, 329.0])
        .prices(2, &[129.0, 119.0, 129.0, 129.0, 109.0])
        .prices(3, &[89.0, 89.0, 79.0, 89.0, 89.0])
        .prices(4, &[39.0, 39.0, 39.0, 35.0, 39.0])
        .prices(5, &[25.0, 25.0, 22.0, 25.0, 25.0]);
    for u in 0..6u32 {
        for i in 0..6u32 {
            if (u + i) % 2 == 0 || i % 3 == 0 {
                let base = 0.10 + 0.05 * ((u + 2 * i) % 5) as f64;
                let probs: Vec<f64> = (0..5)
                    .map(|t| {
                        // Adoption jumps on discounted days.
                        let discount_kick = if (i == 0 && t == 3) || (i == 2 && t == 4) {
                            0.25
                        } else {
                            0.0
                        };
                        (base + 0.02 * t as f64 + discount_kick).min(0.95)
                    })
                    .collect();
                b.candidate(u, i, &probs, 3.0 + ((u + i) % 3) as f64 * 0.6);
            }
        }
    }
    let instance = b.build().expect("valid instance");

    let config = PlannerConfig::from_env();
    let mut session = PlanSession::new(instance.clone(), config);
    println!(
        "campaign plan: {} recommendation slots, expected revenue {:.2}\n",
        session.planned_suffix().len(),
        session.expected_remaining_revenue()
    );

    // A deterministic "shopper model" for the demo: a user adopts a display
    // when its primitive adoption probability is high enough for the day.
    let adopts = |z: &Triple| instance.prob_of(*z) >= 0.22;

    while !session.is_exhausted() {
        let day = session.now() + 1;
        let shown = session.upcoming();
        let events: Vec<AdoptionEvent> = shown
            .iter()
            .map(|z| AdoptionEvent {
                user: z.user,
                item: z.item,
                t: z.t,
                outcome: if adopts(z) {
                    AdoptionOutcome::Adopted
                } else {
                    AdoptionOutcome::Rejected
                },
            })
            .collect();
        let adopted: Vec<String> = events
            .iter()
            .filter(|e| e.is_adoption())
            .map(|e| {
                format!(
                    "{} bought {} (${:.0})",
                    e.user,
                    e.item,
                    instance.price(e.item, e.t)
                )
            })
            .collect();

        let report = session.advance(&events).expect("valid event batch");
        println!(
            "day {day}: displayed {:>2}, adopted {:>2} | realized ${:>8.2} | \
             replanned {:>2} future slots worth ${:>8.2}",
            events.len(),
            adopted.len(),
            report.realized_revenue,
            report.suffix_len,
            report.expected_remaining_revenue,
        );
        for line in &adopted {
            println!("        {line}");
        }

        // Engine cross-check: the replanned suffix must equal a from-scratch
        // plan of the residual instance under the *other* engine to 1e-9.
        if let Some(residual) = session.residual() {
            let other = match config.engine {
                EngineKind::Flat => EngineKind::Hash,
                EngineKind::Hash => EngineKind::Flat,
            };
            let reference = plan(residual, &config.with_engine(other));
            assert!(
                (reference.revenue - session.expected_remaining_revenue()).abs() < 1e-9,
                "engines disagreed on the replanned suffix: {} vs {}",
                reference.revenue,
                session.expected_remaining_revenue()
            );
            let shifted = shift_strategy(&reference.strategy, session.now());
            assert_eq!(
                shifted.as_slice(),
                session.planned_suffix().as_slice(),
                "engines disagreed on the replanned suffix triples"
            );
        }
    }

    println!(
        "\ncampaign over: realized revenue ${:.2} across {} events ({} replans).",
        session.realized_revenue(),
        session.events().len(),
        session.replans(),
    );
    let adopted_count = session.events().iter().filter(|e| e.is_adoption()).count();
    println!(
        "{adopted_count} adoptions out of {} displays — the session closed each adopted \
         class and re-invested those slots elsewhere.",
        session.events().len()
    );
}
