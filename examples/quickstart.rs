//! Quickstart: build a tiny REVMAX instance by hand, run the Global Greedy
//! algorithm, and inspect the resulting recommendation plan.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Planner configuration comes from the environment through the unified
//! `PlannerConfig::from_env()` (`REVMAX_ENGINE=flat|hash`,
//! `REVMAX_HEAP=lazy|dary`, `REVMAX_SHARDS=n`, `REVMAX_ALGORITHM`,
//! `REVMAX_SEED`) — none of which may change a given algorithm's plan, which
//! this example asserts by cross-checking the flat-arena engine against the
//! hash reference engine.

use revmax::prelude::*;

fn main() {
    // A seller with 3 users, 3 items (two of which compete in the same class),
    // and a 3-day horizon. Item 0 goes on sale on day 3.
    let mut builder = InstanceBuilder::new(3, 3, 3);
    builder
        .display_limit(1)
        .item_class(0, 0) // "tablet A"
        .item_class(1, 0) // "tablet B" — competes with tablet A
        .item_class(2, 1) // "headphones"
        .beta(0, 0.4)
        .beta(1, 0.4)
        .beta(2, 0.8)
        .capacity(0, 2)
        .capacity(1, 3)
        .capacity(2, 3)
        .prices(0, &[499.0, 499.0, 399.0]) // sale on day 3
        .prices(1, &[349.0, 349.0, 349.0])
        .prices(2, &[89.0, 79.0, 89.0]);

    // Primitive adoption probabilities q(u, i, t): higher when the price is
    // lower than the user's willingness to pay.
    builder
        .candidate(0, 0, &[0.15, 0.15, 0.45], 4.7)
        .candidate(0, 1, &[0.35, 0.35, 0.35], 4.1)
        .candidate(0, 2, &[0.50, 0.60, 0.50], 3.8)
        .candidate(1, 0, &[0.40, 0.40, 0.70], 4.9)
        .candidate(1, 2, &[0.30, 0.40, 0.30], 3.5)
        .candidate(2, 1, &[0.55, 0.55, 0.55], 4.2)
        .candidate(2, 2, &[0.25, 0.35, 0.25], 3.9);
    let instance = builder.build().expect("valid instance");

    // Revenue-maximizing plan, with algorithm/engine/heap/shards picked from
    // the environment (defaults: G-Greedy, flat engine, lazy heap, 1 shard).
    let config = PlannerConfig::from_env();
    let outcome = plan(&instance, &config);

    // The engine choice is a performance knob, never a behaviour knob:
    // re-plan with the *other* engine and check the revenues agree to 1e-9.
    let other_engine = match config.engine {
        EngineKind::Flat => EngineKind::Hash,
        EngineKind::Hash => EngineKind::Flat,
    };
    let cross_check = plan(&instance, &config.with_engine(other_engine));
    assert!(
        (outcome.revenue - cross_check.revenue).abs() < 1e-9,
        "flat and hash engines must agree to 1e-9: {} vs {}",
        outcome.revenue,
        cross_check.revenue
    );

    println!("expected revenue: {:.2}", outcome.revenue);
    println!("recommendation plan ({} slots):", outcome.strategy.len());
    let mut triples: Vec<Triple> = outcome.strategy.iter().collect();
    triples.sort();
    for z in triples {
        println!(
            "  day {}: show item {} to user {} (price {:.0}, q = {:.2})",
            z.t.value(),
            z.item.0,
            z.user.0,
            instance.price(z.item, z.t),
            instance.prob_of(z),
        );
    }

    // Compare against the classical rating-driven recommender.
    let rating_based = top_rating(&instance);
    println!(
        "\nrating-driven baseline revenue: {:.2} ({:.0}% of the revenue-aware plan)",
        rating_based.revenue,
        100.0 * rating_based.revenue / outcome.revenue
    );
}
