//! Marketplace week: the end-to-end pipeline the paper evaluates.
//!
//! Generates an Amazon-like marketplace (ratings → matrix factorization →
//! valuations → adoption probabilities → prices over a 7-day horizon), then
//! compares all algorithms of §6 on expected revenue and running time.
//!
//! Run with: `cargo run --release --example marketplace_week`

use revmax::prelude::*;

fn main() {
    // ~1 % of the paper's Amazon crawl; bump the factor for a heavier run.
    let mut config = DatasetConfig::amazon_like().scaled(0.01);
    config.candidates_per_user = 40;
    println!("generating dataset `{}` …", config.name);
    let dataset = generate(&config);
    let stats = Table1Stats::from_dataset(&dataset);
    println!("{}", Table1Stats::header());
    println!("{stats}");
    println!(
        "hold-out RMSE of the MF substrate: {:.3}\n",
        dataset.mf_rmse
    );

    // REVMAX_SHARDS (default 2) picks the shard count of the sharded entry;
    // its revenue always matches GG exactly — shards change speed and memory
    // layout, never the plan. Read through the unified config so the knob
    // parses identically everywhere.
    let shards: u32 = PlannerConfig::default().with_shards(2).env_overlay().shards;
    let lineup = vec![
        Algorithm::GlobalGreedy,
        Algorithm::ShardedGlobalGreedy { shards },
        Algorithm::GlobalNoSaturation,
        Algorithm::RandomizedLocalGreedy { permutations: 10 },
        Algorithm::SequentialLocalGreedy,
        Algorithm::TopRevenue,
        Algorithm::TopRating,
    ];
    println!(
        "{:<8} {:>16} {:>10} {:>12} {:>16}",
        "alg", "exp. revenue", "size", "seconds", "marginal evals"
    );
    let mut best: Option<RunReport> = None;
    for alg in &lineup {
        let report = run(&dataset.instance, alg, 42);
        println!(
            "{:<8} {:>16.2} {:>10} {:>12.3} {:>16}",
            report.algorithm,
            report.revenue,
            report.strategy_size,
            report.elapsed.as_secs_f64(),
            report.marginal_evaluations
        );
        if best.as_ref().is_none_or(|b| report.revenue > b.revenue) {
            best = Some(report);
        }
    }
    let best = best.expect("at least one algorithm ran");
    println!(
        "\nbest plan: {} with expected revenue {:.2} over {} recommendation slots",
        best.algorithm, best.revenue, best.strategy_size
    );

    // How often does the winning plan repeat an item to the same user?
    let repeats = best.outcome.strategy.repeat_histogram();
    let repeated_pairs = repeats.values().filter(|&&c| c > 1).count();
    println!(
        "{repeated_pairs} of {} (user, item) pairs receive the item more than once — \
         repetition is used, but sparingly (saturation-aware).",
        repeats.len()
    );
}
