//! The seeded fuzz gate: 10k byte-mutated inputs per parser per seed must
//! all parse or reject — a panic anywhere fails the test. The same harness
//! backs `cargo xtask fuzz-http --seed N` for replaying a specific seed.

use revmax_http::fuzz::{fuzz_http_parser, fuzz_json_codec, FuzzReport, DEFAULT_ITERATIONS};

fn check(report: FuzzReport, what: &str) {
    assert_eq!(report.iterations, DEFAULT_ITERATIONS, "{what}: short run");
    assert_eq!(
        report.accepted + report.rejected,
        report.iterations,
        "{what}: every input must be classified"
    );
    // Mutations start from valid corpus entries, so both classes must be
    // well represented — a parser that rejects (or accepts) everything is
    // not being exercised.
    assert!(report.rejected > 0, "{what}: no rejections ({report:?})");
    assert!(report.accepted > 0, "{what}: no accepts ({report:?})");
}

#[test]
fn http_head_parser_survives_10k_mutations_per_seed() {
    for seed in [1, 2, 0xC0FFEE] {
        check(
            fuzz_http_parser(seed, DEFAULT_ITERATIONS),
            &format!("http seed {seed}"),
        );
    }
}

#[test]
fn json_codec_survives_10k_mutations_per_seed() {
    for seed in [1, 2, 0xC0FFEE] {
        check(
            fuzz_json_codec(seed, DEFAULT_ITERATIONS),
            &format!("json seed {seed}"),
        );
    }
}
