//! Session-lifecycle stress: ~200 sessions driven concurrently through
//! randomized open/advance/fetch/close sequences over real sockets, with
//! the registry sized to force LRU evictions throughout. The assertions:
//! every response is one of the protocol's defined statuses (evicted
//! sessions answer 410, they never hang), and after the storm the
//! snapshot-pool occupancy reported by `/statsz` returns to baseline — no
//! leaked engine state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_core::{json, wire, Instance, InstanceBuilder};
use revmax_http::{testkit, HttpConfig, Server};
use revmax_serve::{PlanService, Registry, RegistryConfig};
use std::sync::Arc;

const THREADS: usize = 8;
const SESSIONS_PER_THREAD: usize = 25; // 200 sessions total

fn stress_instance() -> Instance {
    let mut b = InstanceBuilder::new(4, 3, 4);
    b.display_limit(1)
        .beta(0, 0.3)
        .beta(1, 0.5)
        .beta(2, 0.7)
        .prices(0, &[9.0, 8.0, 7.0, 6.0])
        .prices(1, &[5.0, 5.0, 5.0, 5.0])
        .prices(2, &[2.0, 2.5, 3.0, 3.5]);
    for u in 0..4 {
        let base = 0.1 + 0.05 * f64::from(u);
        b.candidate(u, 0, &[base, 0.2, 0.3, 0.15], 4.0);
        b.candidate(u, 1, &[0.2, base, 0.1, 0.25], 3.5);
        b.candidate(u, 2, &[0.25, 0.1, base, 0.2], 3.0);
    }
    b.build().expect("stress instance is valid")
}

fn statsz(addr: std::net::SocketAddr) -> json::JsonValue {
    let (status, body) = testkit::request(addr, "GET", "/statsz", None).expect("statsz");
    assert_eq!(status, 200, "{body}");
    json::parse(&body).expect("stats JSON")
}

#[test]
fn two_hundred_randomized_sessions_leak_nothing_and_never_hang() {
    // Small session cap → constant LRU eviction pressure; enough workers
    // that every client thread can be in flight at once.
    let config = HttpConfig {
        workers: THREADS + 1,
        registry: RegistryConfig {
            max_sessions: 24,
            ..RegistryConfig::default()
        },
        ..HttpConfig::default()
    };
    let registry = Arc::new(Registry::new(
        Arc::new(PlanService::new(4)),
        config.registry,
    ));
    let server = Server::start(registry, config).expect("bind loopback");
    let addr = server.addr();
    let inst = stress_instance();
    let open_body = format!(
        "{{\"instance\":{},\"config\":{{\"warm_start\":true}}}}",
        wire::instance_to_json(&inst)
    );

    let baseline = statsz(addr)
        .get("pooled_snapshots")
        .and_then(|v| v.as_u64())
        .expect("baseline occupancy");
    assert_eq!(baseline, 0);

    std::thread::scope(|scope| {
        for thread_idx in 0..THREADS {
            let open_body = &open_body;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xA11CE + thread_idx as u64);
                let mut client = testkit::Client::connect(addr).expect("connect");
                for _ in 0..SESSIONS_PER_THREAD {
                    let (status, body) = client
                        .request("POST", "/sessions", Some(open_body))
                        .expect("open survives");
                    assert_eq!(status, 201, "{body}");
                    let view = json::parse(&body).expect("session JSON");
                    let sid = view
                        .get("session_id")
                        .and_then(|v| v.as_u64())
                        .expect("sid");
                    let mut suffix = view.get("suffix").cloned().expect("suffix");
                    let mut now = 0u32;
                    let mut closed = false;

                    for _ in 0..rng.gen_range(1usize..=6) {
                        match rng.gen_range(0u32..4) {
                            // Advance one day, adopting a random subset of
                            // the triples this session last saw planned.
                            0 if now < 4 => {
                                now += 1;
                                let mut events = String::from("[");
                                if let Some(rows) = suffix.as_array() {
                                    for row in rows {
                                        let Some(cells) = row.as_array() else { continue };
                                        let (Some(u), Some(i), Some(t)) = (
                                            cells.first().and_then(|v| v.as_u64()),
                                            cells.get(1).and_then(|v| v.as_u64()),
                                            cells.get(2).and_then(|v| v.as_u64()),
                                        ) else {
                                            continue;
                                        };
                                        if t != u64::from(now) || rng.gen_bool(0.5) {
                                            continue;
                                        }
                                        let outcome = if rng.gen_bool(0.4) {
                                            "adopted"
                                        } else {
                                            "rejected"
                                        };
                                        if events.len() > 1 {
                                            events.push(',');
                                        }
                                        events.push_str(&format!(
                                            "{{\"user\":{u},\"item\":{i},\"t\":{t},\"outcome\":\"{outcome}\"}}"
                                        ));
                                    }
                                }
                                events.push(']');
                                let body = format!("{{\"now\":{now},\"events\":{events}}}");
                                let (status, reply) = client
                                    .request(
                                        "POST",
                                        &format!("/sessions/{sid}/events"),
                                        Some(&body),
                                    )
                                    .expect("advance survives");
                                match status {
                                    200 => {
                                        let view =
                                            json::parse(&reply).expect("advance JSON");
                                        suffix = view
                                            .get("suffix")
                                            .cloned()
                                            .expect("suffix");
                                    }
                                    // Evicted under LRU pressure or closed
                                    // by a prior op in this walk.
                                    410 => closed = true,
                                    other => panic!("advance answered {other}: {reply}"),
                                }
                            }
                            // Read the suffix.
                            1 => {
                                let (status, reply) = client
                                    .request(
                                        "GET",
                                        &format!("/sessions/{sid}/suffix"),
                                        None,
                                    )
                                    .expect("read survives");
                                match status {
                                    200 => {
                                        let view = json::parse(&reply).expect("view JSON");
                                        suffix = view
                                            .get("suffix")
                                            .cloned()
                                            .expect("suffix");
                                    }
                                    410 => closed = true,
                                    other => panic!("read answered {other}: {reply}"),
                                }
                            }
                            // Close explicitly (a second close must answer
                            // 410, not 200 and not hang).
                            2 => {
                                let (status, reply) = client
                                    .request("DELETE", &format!("/sessions/{sid}"), None)
                                    .expect("close survives");
                                assert!(
                                    status == 200 || status == 410,
                                    "close answered {status}: {reply}"
                                );
                                closed = true;
                            }
                            // Probe the stats endpoint mid-storm.
                            _ => {
                                let stats = statsz(addr);
                                assert!(stats.get("active_sessions").is_some());
                            }
                        }
                        if closed {
                            break;
                        }
                    }
                    if !closed {
                        let (status, reply) = client
                            .request("DELETE", &format!("/sessions/{sid}"), None)
                            .expect("final close survives");
                        assert!(
                            status == 200 || status == 410,
                            "final close answered {status}: {reply}"
                        );
                    }
                }
            });
        }
    });

    // Everything is closed or evicted; the pool must be back to baseline.
    let stats = statsz(addr);
    assert_eq!(
        stats.get("active_sessions").and_then(|v| v.as_u64()),
        Some(0),
        "sessions leaked: {stats}"
    );
    assert_eq!(
        stats.get("pooled_snapshots").and_then(|v| v.as_u64()),
        Some(baseline),
        "snapshot pool did not return to baseline: {stats}"
    );
    let evicted = stats
        .get("sessions_evicted")
        .and_then(|v| v.as_u64())
        .expect("eviction counter");
    assert!(
        evicted >= (THREADS * SESSIONS_PER_THREAD) as u64,
        "every session should end closed or evicted, counter says {evicted}"
    );
    assert!(server.shutdown());
}
