//! Protocol conformance: a table of golden request → status cases over a
//! real loopback socket, plus the end-to-end acceptance walk — an
//! Amazon-shaped instance planned and replanned over the wire must match
//! the in-process `PlanSession` to 1e-9 on both engines.

use revmax_algorithms::{EngineKind, PlannerConfig};
use revmax_core::{json, wire, AdoptionEvent, Instance, InstanceBuilder};
use revmax_data::{generate, DatasetConfig};
use revmax_http::{testkit, HttpConfig, Server};
use revmax_serve::{PlanService, PlanSession, Registry, RegistryConfig};
use std::sync::Arc;
use std::time::Duration;

fn tiny_instance() -> Instance {
    let mut b = InstanceBuilder::new(3, 2, 3);
    b.display_limit(1)
        .beta(0, 0.4)
        .beta(1, 0.6)
        .prices(0, &[8.0, 7.0, 6.0])
        .prices(1, &[3.0, 3.5, 4.0]);
    for u in 0..3 {
        let base = 0.15 + 0.1 * f64::from(u);
        b.candidate(u, 0, &[base, 0.2, 0.25], 4.0);
        b.candidate(u, 1, &[0.2, base, 0.1], 3.0);
    }
    b.build().expect("tiny instance is valid")
}

fn start_server(config: HttpConfig) -> Server {
    let registry = Arc::new(Registry::new(
        Arc::new(PlanService::new(2)),
        config.registry,
    ));
    Server::start(registry, config).expect("bind loopback")
}

fn submission_body(inst: &Instance, config_json: &str) -> String {
    format!(
        "{{\"instance\":{},\"config\":{config_json}}}",
        wire::instance_to_json(inst)
    )
}

/// Polls `GET /plans/{id}` until it answers 200 (or times out).
fn wait_plan(client: &mut testkit::Client, id: u64) -> json::JsonValue {
    for _ in 0..2000 {
        let (status, body) = client
            .request("GET", &format!("/plans/{id}"), None)
            .expect("poll plan");
        match status {
            200 => return json::parse(&body).expect("plan JSON parses"),
            202 => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("unexpected status {other} polling plan {id}: {body}"),
        }
    }
    panic!("plan {id} did not finish");
}

#[test]
fn golden_request_table() {
    let server = start_server(HttpConfig::default());
    let addr = server.addr();
    let inst = tiny_instance();
    let valid = submission_body(&inst, "{}");
    // Build-invalid: probability above 1 parses and passes the schema but
    // fails `InstanceBuilder::build` (422, distinct from the 400s).
    let build_invalid = valid.replacen("0.15", "1.5", 1);
    assert_ne!(build_invalid, valid, "replacement must hit a probability");

    // (name, method, target, body, expected status)
    let table: &[(&str, &str, &str, Option<&str>, u16)] = &[
        ("health", "GET", "/healthz", None, 200),
        ("stats", "GET", "/statsz", None, 200),
        ("unknown endpoint", "GET", "/nope", None, 404),
        ("unknown plan", "GET", "/plans/999999", None, 404),
        (
            "unknown session read",
            "GET",
            "/sessions/999999/suffix",
            None,
            404,
        ),
        (
            "wrong method on health",
            "POST",
            "/healthz",
            Some("{}"),
            405,
        ),
        ("wrong method on instances", "GET", "/instances", None, 405),
        (
            "wrong method on session",
            "PUT",
            "/sessions/0",
            Some("{}"),
            405,
        ),
        ("malformed JSON", "POST", "/instances", Some("{oops"), 400),
        ("non-object body", "POST", "/instances", Some("[1,2]"), 400),
        ("missing instance", "POST", "/instances", Some("{}"), 400),
        (
            "unknown submission key",
            "POST",
            "/instances",
            Some("{\"instnace\":{}}"),
            400,
        ),
        (
            "schema violation",
            "POST",
            "/instances",
            Some("{\"instance\":{\"users\":1}}"),
            400,
        ),
        // A ~100-byte body claiming u32::MAX-sized dimensions must be a
        // fast 400 (wire caps), not a multi-GiB allocation in the builder.
        (
            "oversized dimensions",
            "POST",
            "/instances",
            Some(
                "{\"instance\":{\"users\":4294967295,\"items\":4294967295,\
                 \"horizon\":4294967295,\"prices\":[],\"candidates\":[]}}",
            ),
            400,
        ),
        (
            "build violation",
            "POST",
            "/instances",
            Some(&build_invalid),
            422,
        ),
        (
            "unknown config key",
            "POST",
            "/sessions",
            Some("{\"instance\":{},\"config\":{\"warm\":true}}"),
            400,
        ),
    ];
    for (name, method, target, body, expected) in table {
        let (status, reply) =
            testkit::request(addr, method, target, *body).expect("request completes");
        assert_eq!(status, *expected, "case {name:?}: {reply}");
        if *expected >= 400 {
            let value = json::parse(&reply).expect("error bodies are JSON");
            assert!(
                value.get("error").is_some(),
                "case {name:?} has no error key"
            );
        }
    }

    // Health body is pinned exactly.
    let (_, health) = testkit::request(addr, "GET", "/healthz", None).expect("health");
    assert_eq!(health, "{\"status\":\"ok\"}");
    assert!(server.shutdown());
}

#[test]
fn malformed_wire_bytes_get_structured_rejections() {
    let server = start_server(HttpConfig {
        body_limit: 256,
        ..HttpConfig::default()
    });
    let addr = server.addr();

    // (name, raw bytes, expected status)
    let mut huge_head = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..300 {
        huge_head.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
    }
    huge_head.extend_from_slice(b"\r\n");
    let oversized_body = format!(
        "POST /instances HTTP/1.1\r\nContent-Length: 1000\r\n\r\n{}",
        "x".repeat(1000)
    );
    let table: &[(&str, &[u8], u16)] = &[
        ("garbage", b"\x00\x01\x02\x03\r\n\r\n", 400),
        ("missing version", b"GET /\r\n\r\n", 400),
        ("http2", b"GET /healthz HTTP/2.0\r\n\r\n", 505),
        (
            "chunked upload",
            b"POST /instances HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            501,
        ),
        ("oversized body", oversized_body.as_bytes(), 413),
        ("oversized head", &huge_head, 431),
        (
            "conflicting content-length",
            b"GET /healthz HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            400,
        ),
    ];
    for (name, bytes, expected) in table {
        let (status, reply) = testkit::send_raw(addr, bytes).expect("response before close");
        assert_eq!(status, *expected, "case {name:?}: {reply}");
    }
    assert!(server.shutdown());
}

/// Workers must not be pinnable: a connection that sends nothing is closed
/// after the idle deadline, and one that stalls mid-request is answered
/// `408` — and the pool keeps serving afterwards.
#[test]
fn idle_and_trickling_connections_are_reaped() {
    use std::io::{Read, Write};

    let server = start_server(HttpConfig {
        idle_timeout: Duration::from_millis(300),
        ..HttpConfig::default()
    });
    let addr = server.addr();

    // Silent connection: closed (EOF) without a response.
    let mut idle = std::net::TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut byte = [0u8; 1];
    assert_eq!(
        idle.read(&mut byte).expect("server closes the idle conn"),
        0,
        "idle connection should be closed, not answered"
    );

    // Stalled partial request: answered 408, then closed.
    let mut trickle = std::net::TcpStream::connect(addr).expect("connect");
    trickle
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    trickle.write_all(b"GET /healthz HT").expect("partial head");
    let mut reply = String::new();
    trickle.read_to_string(&mut reply).expect("read 408");
    assert!(
        reply.starts_with("HTTP/1.1 408 "),
        "stalled request should get 408, got {reply:?}"
    );

    // The worker pool is intact: fresh requests still answer.
    let (status, _) = testkit::request(addr, "GET", "/healthz", None).expect("health");
    assert_eq!(status, 200);
    assert!(server.shutdown());
}

#[test]
fn plan_fetch_matches_in_process_planning_exactly() {
    let server = start_server(HttpConfig::default());
    let addr = server.addr();
    let inst = tiny_instance();
    let mut client = testkit::Client::connect(addr).expect("connect");

    let (status, body) = client
        .request("POST", "/instances", Some(&submission_body(&inst, "{}")))
        .expect("submit");
    assert_eq!(status, 202, "{body}");
    let ticket = json::parse(&body).expect("ticket JSON");
    assert_eq!(
        ticket.get("status").and_then(|v| v.as_str()),
        Some("queued")
    );
    let id = ticket
        .get("plan_id")
        .and_then(|v| v.as_u64())
        .expect("plan id");

    let plan = wait_plan(&mut client, id);
    let wire_revenue = plan
        .get("revenue")
        .and_then(|v| v.as_f64())
        .expect("revenue");
    let wire_strategy =
        wire::strategy_from_value(plan.get("strategy").expect("strategy")).expect("strategy");

    let reference = revmax_algorithms::plan(&inst, &PlannerConfig::default());
    // Shortest-round-trip f64 formatting makes the fetch bit-exact.
    assert_eq!(wire_revenue.to_bits(), reference.revenue.to_bits());
    assert_eq!(wire_strategy.as_slice(), reference.strategy.as_slice());

    // The report remains fetchable (poll/fetch, not fetch-once).
    let again = wait_plan(&mut client, id);
    assert_eq!(again, plan);
    assert!(server.shutdown());
}

#[test]
fn session_conflicts_closures_and_evictions_answer_correctly() {
    // max_sessions: 1 forces LRU eviction on the second open.
    let server = start_server(HttpConfig {
        registry: RegistryConfig {
            max_sessions: 1,
            ..RegistryConfig::default()
        },
        ..HttpConfig::default()
    });
    let addr = server.addr();
    let inst = tiny_instance();
    let mut client = testkit::Client::connect(addr).expect("connect");
    let open = submission_body(&inst, "{}");

    let (status, body) = client
        .request("POST", "/sessions", Some(&open))
        .expect("open");
    assert_eq!(status, 201, "{body}");
    let first = json::parse(&body).expect("session JSON");
    let sid = first
        .get("session_id")
        .and_then(|v| v.as_u64())
        .expect("sid");
    let suffix =
        wire::strategy_from_value(first.get("suffix").expect("suffix")).expect("suffix parses");
    assert!(!suffix.is_empty());

    // Advance to day 1 adopting one displayed triple.
    let day1 = suffix
        .as_slice()
        .iter()
        .find(|z| z.t.value() == 1)
        .expect("day-1 display");
    let event = format!(
        "{{\"user\":{},\"item\":{},\"t\":1,\"outcome\":\"adopted\"}}",
        day1.user.0, day1.item.0
    );
    let advance = format!("{{\"now\":1,\"events\":[{event}]}}");
    let (status, body) = client
        .request("POST", &format!("/sessions/{sid}/events"), Some(&advance))
        .expect("advance");
    assert_eq!(status, 200, "{body}");
    let view = json::parse(&body).expect("view JSON");
    assert_eq!(view.get("now").and_then(|v| v.as_u32()), Some(1));
    assert_eq!(view.get("events_applied").and_then(|v| v.as_u32()), Some(1));

    // Double submission of the same batch: `now` is no longer monotone → 409.
    let (status, body) = client
        .request("POST", &format!("/sessions/{sid}/events"), Some(&advance))
        .expect("re-advance");
    assert_eq!(status, 409, "{body}");
    // Same event against a later frontier: stale → 409, state unchanged.
    let stale = format!("{{\"now\":2,\"events\":[{event}]}}");
    let (status, body) = client
        .request("POST", &format!("/sessions/{sid}/events"), Some(&stale))
        .expect("stale advance");
    assert_eq!(status, 409, "{body}");
    let (status, body) = client
        .request("GET", &format!("/sessions/{sid}/suffix"), None)
        .expect("read");
    assert_eq!(status, 200);
    assert_eq!(
        json::parse(&body)
            .expect("view")
            .get("now")
            .and_then(|v| v.as_u32()),
        Some(1),
        "conflicting advances must not move the frontier"
    );

    // Malformed event submissions.
    let bad: &[(&str, &str, u16)] = &[
        ("unknown key", "{\"events\":[],\"nope\":1}", 400),
        ("missing events", "{\"now\":2}", 400),
        ("non-integer now", "{\"events\":[],\"now\":1.5}", 400),
        (
            "event for unknown user",
            "{\"now\":2,\"events\":[{\"user\":999,\"item\":0,\"t\":2,\"outcome\":\"adopted\"}]}",
            422,
        ),
    ];
    for (name, body, expected) in bad {
        let (status, reply) = client
            .request("POST", &format!("/sessions/{sid}/events"), Some(body))
            .expect("request completes");
        assert_eq!(status, *expected, "case {name:?}: {reply}");
    }

    // Eviction race: opening a second session evicts the first (limit 1);
    // the evicted id answers 410 immediately — it must not hang.
    let (status, body) = client
        .request("POST", "/sessions", Some(&open))
        .expect("open 2nd");
    assert_eq!(status, 201, "{body}");
    let (status, _) = client
        .request("GET", &format!("/sessions/{sid}/suffix"), None)
        .expect("evicted read");
    assert_eq!(status, 410);
    let (status, _) = client
        .request("DELETE", &format!("/sessions/{sid}"), None)
        .expect("evicted delete");
    assert_eq!(status, 410);

    // Explicit close → 410 afterwards.
    let second = json::parse(&body).expect("session JSON");
    let sid2 = second
        .get("session_id")
        .and_then(|v| v.as_u64())
        .expect("sid");
    let (status, _) = client
        .request("DELETE", &format!("/sessions/{sid2}"), None)
        .expect("close");
    assert_eq!(status, 200);
    let (status, _) = client
        .request("GET", &format!("/sessions/{sid2}/suffix"), None)
        .expect("closed read");
    assert_eq!(status, 410);
    assert!(server.shutdown());
}

/// The acceptance walk: an Amazon-shaped instance served over a real
/// socket, ≥ 5 adoption events streamed day by day, and the wire session's
/// suffix + revenue must track an in-process twin to 1e-9 — on both
/// engines, with the engine selected through the wire config.
#[test]
fn amazon_shaped_session_over_the_wire_matches_in_process_to_1e9() {
    let ds = generate(&DatasetConfig::amazon_like().scaled(0.01));
    let inst = &ds.instance;
    let server = start_server(HttpConfig::default());
    let addr = server.addr();

    for (engine_name, engine) in [("flat", EngineKind::Flat), ("hash", EngineKind::Hash)] {
        let mut client = testkit::Client::connect(addr).expect("connect");
        let config_json = format!("{{\"engine\":\"{engine_name}\",\"warm_start\":true}}");
        let twin_config = PlannerConfig::default()
            .with_engine(engine)
            .with_warm_start(true);
        let mut twin = PlanSession::new(inst.clone(), twin_config);

        let (status, body) = client
            .request(
                "POST",
                "/sessions",
                Some(&submission_body(inst, &config_json)),
            )
            .expect("open");
        assert_eq!(status, 201, "[{engine_name}] {body}");
        let view = json::parse(&body).expect("session JSON");
        let sid = view
            .get("session_id")
            .and_then(|v| v.as_u64())
            .expect("sid");
        let horizon = view
            .get("horizon")
            .and_then(|v| v.as_u32())
            .expect("horizon");
        assert_eq!(horizon, inst.horizon());
        let opening_suffix =
            wire::strategy_from_value(view.get("suffix").expect("suffix")).expect("suffix");
        assert_eq!(
            opening_suffix.as_slice(),
            twin.planned_suffix().as_slice(),
            "[{engine_name}] opening plans diverge"
        );

        let mut total_events = 0usize;
        let days = horizon.min(6);
        for day in 1..=days {
            // Shopper rule: adopt every second triple the twin displays
            // today (the wire session is asserted identical, so both see
            // the same display set).
            let events: Vec<AdoptionEvent> = twin
                .upcoming()
                .into_iter()
                .enumerate()
                .map(|(idx, z)| {
                    if idx % 2 == 0 {
                        AdoptionEvent::adopted(z.user.0, z.item.0, z.t.value())
                    } else {
                        AdoptionEvent::rejected(z.user.0, z.item.0, z.t.value())
                    }
                })
                .collect();
            total_events += events.len();
            let body = format!(
                "{{\"now\":{day},\"events\":{}}}",
                wire::events_to_json(&events)
            );
            let (status, reply) = client
                .request("POST", &format!("/sessions/{sid}/events"), Some(&body))
                .expect("advance");
            assert_eq!(status, 200, "[{engine_name}] day {day}: {reply}");
            let twin_report = twin.advance_to(day, &events).expect("twin advances");
            assert!(!twin_report.pending);

            let view = json::parse(&reply).expect("view JSON");
            let suffix =
                wire::strategy_from_value(view.get("suffix").expect("suffix")).expect("suffix");
            assert_eq!(
                suffix.as_slice(),
                twin.planned_suffix().as_slice(),
                "[{engine_name}] day {day}: replanned suffixes diverge"
            );
            let expected = view
                .get("expected_remaining_revenue")
                .and_then(|v| v.as_f64())
                .expect("expected revenue");
            let realized = view
                .get("realized_revenue")
                .and_then(|v| v.as_f64())
                .expect("realized revenue");
            assert!(
                (expected - twin_report.expected_remaining_revenue).abs()
                    <= 1e-9 * expected.abs().max(1.0),
                "[{engine_name}] day {day}: expected revenue {expected} vs {}",
                twin_report.expected_remaining_revenue
            );
            assert!(
                (realized - twin_report.realized_revenue).abs() <= 1e-9 * realized.abs().max(1.0),
                "[{engine_name}] day {day}: realized revenue {realized} vs {}",
                twin_report.realized_revenue
            );
        }
        assert!(
            total_events >= 5,
            "[{engine_name}] acceptance requires ≥ 5 adoption events, got {total_events}"
        );
        let (status, _) = client
            .request("DELETE", &format!("/sessions/{sid}"), None)
            .expect("close");
        assert_eq!(status, 200);
    }
    assert!(server.shutdown());
}
