//! Seeded byte-mutation fuzzing for the two untrusted-input parsers: the
//! HTTP head parser ([`crate::request::parse_head`]) and the JSON codec
//! (`revmax_core::json::parse`).
//!
//! Deterministic by construction — the vendored `rand` shim is seeded, so a
//! failing seed replays exactly (`cargo xtask fuzz-http --seed N`). The
//! harness asserts the *totality* contract: every mutated input must parse
//! or be rejected with a structured error; a panic (or out-of-bounds read,
//! which in safe Rust surfaces as a panic) fails the run. Accepted JSON
//! documents additionally round-trip through the writer and must re-parse
//! to the identical value.

use crate::request::{parse_head, HeadOutcome, DEFAULT_HEAD_LIMIT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_core::json;

/// Default iteration count per parser (the acceptance bar is 10k).
pub const DEFAULT_ITERATIONS: usize = 10_000;

/// What a fuzz run observed (a run that panics never returns one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzReport {
    /// Mutated inputs fed to the parser.
    pub iterations: usize,
    /// Inputs the parser accepted.
    pub accepted: usize,
    /// Inputs rejected with a structured error (or, for the HTTP parser,
    /// classified as incomplete).
    pub rejected: usize,
}

/// Valid request heads the HTTP mutations start from.
const HTTP_CORPUS: &[&[u8]] = &[
    b"GET /healthz HTTP/1.1\r\n\r\n",
    b"GET /statsz HTTP/1.1\r\nHost: revmax\r\n\r\n",
    b"GET /plans/42 HTTP/1.1\r\nAccept: application/json\r\n\r\n",
    b"POST /instances HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
    b"POST /sessions HTTP/1.1\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n",
    b"POST /sessions/7/events HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"events\":[]}",
    b"GET /sessions/7/suffix HTTP/1.0\r\nConnection: close\r\n\r\n",
    b"DELETE /sessions/123456 HTTP/1.1\r\nX-Trace: 00-aa-bb\r\n\r\n",
];

/// Valid documents (covering every wire shape) the JSON mutations start
/// from.
const JSON_CORPUS: &[&str] = &[
    "null",
    "true",
    "[]",
    "{}",
    "-12.5e-3",
    "[[0,1,1],[2,0,3]]",
    "{\"plan_id\":3,\"status\":\"done\",\"revenue\":81.25,\"strategy\":[[0,0,1]]}",
    "{\"events\":[{\"user\":1,\"item\":0,\"t\":2,\"outcome\":\"adopted\"}],\"now\":2}",
    "{\"users\":2,\"items\":1,\"horizon\":2,\"display_limit\":1,\"classes\":[0],\
     \"beta\":[0.5],\"capacity\":[2],\"prices\":[null],\
     \"candidates\":[[0,0,4.5,[0.25,0.5]],[1,0,3.0,[0.125,0.0625]]]}",
    "\"escape \\u00e9 \\n \\\" \\\\ sequences\"",
    "[1e308,-1e-308,0.0,-0.0,9007199254740991]",
];

/// Applies 1–8 random byte-level mutations to `base`.
fn mutate(rng: &mut StdRng, base: &[u8], splice_pool: &[&[u8]]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    for _ in 0..rng.gen_range(1usize..=8) {
        if bytes.is_empty() {
            bytes.push(rng.gen_range(0u32..256) as u8);
            continue;
        }
        match rng.gen_range(0u32..6) {
            // Overwrite one byte with anything.
            0 => {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen_range(0u32..256) as u8;
            }
            // Insert a random byte.
            1 => {
                let at = rng.gen_range(0..=bytes.len());
                bytes.insert(at, rng.gen_range(0u32..256) as u8);
            }
            // Delete a short range.
            2 => {
                let at = rng.gen_range(0..bytes.len());
                let end = (at + rng.gen_range(1usize..=8)).min(bytes.len());
                bytes.drain(at..end);
            }
            // Duplicate a short range in place.
            3 => {
                let at = rng.gen_range(0..bytes.len());
                let end = (at + rng.gen_range(1usize..=8)).min(bytes.len());
                let slice = bytes[at..end].to_vec();
                for (offset, b) in slice.into_iter().enumerate() {
                    bytes.insert(at + offset, b);
                }
            }
            // Truncate.
            4 => {
                let keep = rng.gen_range(0..=bytes.len());
                bytes.truncate(keep);
            }
            // Splice a window from another corpus entry.
            _ => {
                let donor = splice_pool[rng.gen_range(0..splice_pool.len())];
                if !donor.is_empty() {
                    let from = rng.gen_range(0..donor.len());
                    let to = (from + rng.gen_range(1usize..=16)).min(donor.len());
                    let at = rng.gen_range(0..=bytes.len());
                    for (offset, &b) in donor[from..to].iter().enumerate() {
                        bytes.insert(at + offset, b);
                    }
                }
            }
        }
    }
    bytes
}

/// Fuzzes the HTTP head parser with `iterations` seeded mutations.
pub fn fuzz_http_parser(seed: u64, iterations: usize) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0;
    let mut rejected = 0;
    for _ in 0..iterations {
        let base = HTTP_CORPUS[rng.gen_range(0..HTTP_CORPUS.len())];
        let input = mutate(&mut rng, base, HTTP_CORPUS);
        match parse_head(&input, DEFAULT_HEAD_LIMIT) {
            HeadOutcome::Parsed { head, consumed } => {
                assert!(
                    consumed <= input.len(),
                    "parser claimed more bytes than it was given"
                );
                // Accepted heads must answer the derived queries without
                // panicking either.
                let _ = head.content_length();
                let _ = head.keep_alive();
                accepted += 1;
            }
            HeadOutcome::Incomplete | HeadOutcome::Invalid(_) => rejected += 1,
        }
    }
    FuzzReport {
        iterations,
        accepted,
        rejected,
    }
}

/// Fuzzes the JSON codec with `iterations` seeded mutations; accepted
/// documents are round-tripped through the writer.
pub fn fuzz_json_codec(seed: u64, iterations: usize) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let splice_pool: Vec<&[u8]> = JSON_CORPUS.iter().map(|s| s.as_bytes()).collect();
    let mut accepted = 0;
    let mut rejected = 0;
    for _ in 0..iterations {
        let base = JSON_CORPUS[rng.gen_range(0..JSON_CORPUS.len())];
        let input = mutate(&mut rng, base.as_bytes(), &splice_pool);
        let text = String::from_utf8_lossy(&input);
        match json::parse(&text) {
            Ok(value) => {
                let rewritten = value.to_string();
                let reparsed = json::parse(&rewritten);
                assert!(
                    reparsed.as_ref().is_ok_and(|v| *v == value),
                    "write→parse round trip broke on {rewritten:?}: {reparsed:?}"
                );
                accepted += 1;
            }
            Err(_) => rejected += 1,
        }
    }
    FuzzReport {
        iterations,
        accepted,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_runs_are_deterministic_per_seed() {
        let a = fuzz_http_parser(7, 500);
        let b = fuzz_http_parser(7, 500);
        assert_eq!(a, b);
        let c = fuzz_json_codec(7, 500);
        let d = fuzz_json_codec(7, 500);
        assert_eq!(c, d);
    }

    #[test]
    fn corpora_baselines_are_accepted_unmutated() {
        for base in HTTP_CORPUS {
            assert!(
                matches!(
                    parse_head(base, DEFAULT_HEAD_LIMIT),
                    HeadOutcome::Parsed { .. }
                ),
                "corpus entry failed to parse: {:?}",
                String::from_utf8_lossy(base)
            );
        }
        for base in JSON_CORPUS {
            json::parse(base).expect("JSON corpus entry parses");
        }
    }
}
