//! A strict, allocation-light HTTP/1.1 request parser.
//!
//! The head parser ([`parse_head`]) is a pure function over a byte buffer —
//! no I/O — so the fuzz harness ([`crate::fuzz`]) can drive it with
//! arbitrary bytes; [`read_request`] layers buffered socket reads and body
//! collection on top for the server's connection loop. Every deviation from
//! the grammar maps to a definite [`RequestError`], and every
//! [`RequestError`] maps to a definite HTTP status — malformed input is
//! never answered with a hang or a panic.

use std::fmt;
use std::io::Read;
use std::time::Instant;

/// Hard cap on the request head (request line + headers + CRLFCRLF).
pub const DEFAULT_HEAD_LIMIT: usize = 8 * 1024;
/// Maximum number of header fields per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum request-line method length.
const MAX_METHOD: usize = 16;
/// Maximum request-target length.
const MAX_TARGET: usize = 2048;

/// Why a request was rejected; [`RequestError::status`] gives the HTTP
/// status the server answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The bytes do not form an HTTP/1.x request (400).
    Syntax(&'static str),
    /// The head exceeded the size or header-count limit (431).
    HeadTooLarge,
    /// The declared body exceeds the configured limit (413).
    BodyTooLarge {
        /// The configured body limit in bytes.
        limit: usize,
    },
    /// `Transfer-Encoding` (chunked uploads) is not implemented (501).
    UnsupportedEncoding,
    /// Not an HTTP/1.0 or HTTP/1.1 request (505).
    UnsupportedVersion,
    /// The request was still incomplete when the read deadline passed (408).
    Timeout,
}

impl RequestError {
    /// The HTTP status this rejection is answered with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Syntax(_) => 400,
            RequestError::HeadTooLarge => 431,
            RequestError::BodyTooLarge { .. } => 413,
            RequestError::UnsupportedEncoding => 501,
            RequestError::UnsupportedVersion => 505,
            RequestError::Timeout => 408,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Syntax(m) => write!(f, "malformed request: {m}"),
            RequestError::HeadTooLarge => write!(f, "request head too large"),
            RequestError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            RequestError::UnsupportedEncoding => {
                write!(f, "transfer encodings are not supported")
            }
            RequestError::UnsupportedVersion => write!(f, "unsupported HTTP version"),
            RequestError::Timeout => write!(f, "request not completed before the deadline"),
        }
    }
}

impl std::error::Error for RequestError {}

/// The parsed request line and header fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// The request method, verbatim (e.g. `GET`).
    pub method: String,
    /// The request target, verbatim (e.g. `/plans/3`).
    pub target: String,
    /// Whether the request was HTTP/1.1 (`false` = HTTP/1.0).
    pub http11: bool,
    /// Header fields in order of appearance, names lower-cased.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// The first value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The declared body length (0 when absent). Repeated `Content-Length`
    /// fields with differing values are rejected outright (RFC 9112 §6.3 —
    /// request-smuggling hygiene); identical repeats are collapsed.
    pub fn content_length(&self) -> Result<usize, RequestError> {
        let mut values = self
            .headers
            .iter()
            .filter(|(n, _)| n == "content-length")
            .map(|(_, v)| v.as_str());
        let Some(raw) = values.next() else {
            return Ok(0);
        };
        if values.any(|v| v != raw) {
            return Err(RequestError::Syntax("conflicting content-length headers"));
        }
        if raw.is_empty() || raw.len() > 12 || !raw.bytes().all(|b| b.is_ascii_digit()) {
            return Err(RequestError::Syntax("invalid content-length"));
        }
        raw.parse()
            .map_err(|_| RequestError::Syntax("invalid content-length"))
    }

    /// Whether the connection should stay open after the response.
    /// `Connection` is a comma-separated token list; an explicit `close`
    /// anywhere in it wins over `keep-alive`, and an empty/unknown list
    /// falls back to the HTTP-version default.
    pub fn keep_alive(&self) -> bool {
        let mut keep = None;
        for (name, value) in &self.headers {
            if name != "connection" {
                continue;
            }
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    return false;
                }
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep = Some(true);
                }
            }
        }
        keep.unwrap_or(self.http11)
    }
}

/// What [`parse_head`] observed in the buffer.
#[derive(Debug)]
pub enum HeadOutcome {
    /// No terminating blank line yet — read more bytes.
    Incomplete,
    /// A complete, well-formed head; `consumed` bytes cover it including
    /// the terminating blank line.
    Parsed {
        /// The parsed head.
        head: RequestHead,
        /// Bytes of `buf` the head occupied.
        consumed: usize,
    },
    /// The bytes can never become a valid request head.
    Invalid(RequestError),
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses one request head from the front of `buf`.
///
/// Pure and total: arbitrary bytes yield [`HeadOutcome::Incomplete`] or
/// [`HeadOutcome::Invalid`], never a panic or an out-of-bounds read — this
/// is the fuzzing entry point.
pub fn parse_head(buf: &[u8], head_limit: usize) -> HeadOutcome {
    let window = &buf[..buf.len().min(head_limit)];
    let Some(end) = find_blank_line(window) else {
        return if buf.len() >= head_limit {
            HeadOutcome::Invalid(RequestError::HeadTooLarge)
        } else {
            HeadOutcome::Incomplete
        };
    };
    // Keep the CRLF that closes the last line so every line (split on
    // `\n`) carries its `\r`; the final empty remainder is skipped below.
    let head = &window[..end + 2];
    let mut lines = head.split(|&b| b == b'\n');
    let Some(request_line) = lines.next() else {
        return HeadOutcome::Invalid(RequestError::Syntax("empty request head"));
    };
    let request_line = match strip_cr(request_line) {
        Some(l) => l,
        None => return HeadOutcome::Invalid(RequestError::Syntax("bare LF in request line")),
    };
    let (method, target, http11) = match parse_request_line(request_line) {
        Ok(parts) => parts,
        Err(e) => return HeadOutcome::Invalid(e),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // remainder after the final `\n`
        }
        let Some(line) = strip_cr(line) else {
            return HeadOutcome::Invalid(RequestError::Syntax("bare LF in header line"));
        };
        if headers.len() >= MAX_HEADERS {
            return HeadOutcome::Invalid(RequestError::HeadTooLarge);
        }
        match parse_header_line(line) {
            Ok(field) => headers.push(field),
            Err(e) => return HeadOutcome::Invalid(e),
        }
    }
    HeadOutcome::Parsed {
        head: RequestHead {
            method,
            target,
            http11,
            headers,
        },
        consumed: end + 4,
    }
}

/// Index of the `\r\n\r\n` terminator (start position), if present.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Strips a trailing `\r`; `None` when the line does not end with one
/// (i.e. the head used a bare `\n` separator, which we reject).
fn strip_cr(line: &[u8]) -> Option<&[u8]> {
    match line.split_last() {
        Some((b'\r', rest)) => Some(rest),
        _ => None,
    }
}

fn parse_request_line(line: &[u8]) -> Result<(String, String, bool), RequestError> {
    let mut parts = line.split(|&b| b == b' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Syntax(
            "request line is not METHOD SP TARGET SP VERSION",
        ));
    };
    if method.is_empty() || method.len() > MAX_METHOD || !method.iter().all(|&b| is_token_byte(b)) {
        return Err(RequestError::Syntax("invalid method"));
    }
    if target.is_empty()
        || target.len() > MAX_TARGET
        || !target.iter().all(|&b| (0x21..=0x7e).contains(&b))
    {
        return Err(RequestError::Syntax("invalid request target"));
    }
    let http11 = match version {
        b"HTTP/1.1" => true,
        b"HTTP/1.0" => false,
        v if v.len() == 8 && v.starts_with(b"HTTP/") => {
            return Err(RequestError::UnsupportedVersion)
        }
        _ => return Err(RequestError::Syntax("invalid HTTP version")),
    };
    // `method`/`target` are pure ASCII by the checks above.
    let method = String::from_utf8_lossy(method).into_owned();
    let target = String::from_utf8_lossy(target).into_owned();
    Ok((method, target, http11))
}

fn parse_header_line(line: &[u8]) -> Result<(String, String), RequestError> {
    let Some(colon) = line.iter().position(|&b| b == b':') else {
        return Err(RequestError::Syntax("header line has no colon"));
    };
    let (name, rest) = line.split_at(colon);
    if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
        return Err(RequestError::Syntax("invalid header name"));
    }
    let value = trim_ows(&rest[1..]);
    if !value
        .iter()
        .all(|&b| b == b'\t' || (0x20..=0x7e).contains(&b))
    {
        return Err(RequestError::Syntax("invalid header value"));
    }
    Ok((
        String::from_utf8_lossy(name).to_ascii_lowercase(),
        String::from_utf8_lossy(value).into_owned(),
    ))
}

fn trim_ows(mut bytes: &[u8]) -> &[u8] {
    while let Some((b' ' | b'\t', rest)) = bytes.split_first() {
        bytes = rest;
    }
    while let Some((b' ' | b'\t', rest)) = bytes.split_last() {
        bytes = rest;
    }
    bytes
}

/// One complete request: head plus collected body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The parsed head.
    pub head: RequestHead,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Size limits enforced while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Head cap in bytes (431 beyond).
    pub head_bytes: usize,
    /// Body cap in bytes (413 beyond).
    pub body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            head_bytes: DEFAULT_HEAD_LIMIT,
            body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// What one [`read_request`] call produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request; leftover pipelined bytes stay in the buffer.
    Request(Request),
    /// The peer closed the connection at a request boundary.
    Closed,
    /// The bytes were rejected; answer with [`RequestError::status`] and
    /// close.
    Bad(RequestError),
    /// A transport error (including read timeouts — the caller decides
    /// whether to retry; `buf` keeps the partial request).
    Io(std::io::Error),
}

/// Reads one complete request from `stream`, carrying partial bytes across
/// calls in `buf` (which also retains pipelined follow-up requests).
///
/// `deadline` bounds how long an *incomplete* request may keep us reading:
/// whenever more bytes are still needed past it, the read stops with
/// [`RequestError::Timeout`] (408) — so a client trickling a head or body
/// one byte at a time cannot pin the caller forever. A request whose bytes
/// are already buffered never times out.
pub fn read_request(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    limits: &Limits,
    deadline: Option<Instant>,
) -> ReadOutcome {
    let expired = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() >= d);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_head(buf, limits.head_bytes) {
            HeadOutcome::Invalid(e) => return ReadOutcome::Bad(e),
            HeadOutcome::Parsed { head, consumed } => {
                if head.header("transfer-encoding").is_some() {
                    return ReadOutcome::Bad(RequestError::UnsupportedEncoding);
                }
                let body_len = match head.content_length() {
                    Ok(n) => n,
                    Err(e) => return ReadOutcome::Bad(e),
                };
                if body_len > limits.body_bytes {
                    return ReadOutcome::Bad(RequestError::BodyTooLarge {
                        limit: limits.body_bytes,
                    });
                }
                while buf.len() < consumed + body_len {
                    if expired(deadline) {
                        return ReadOutcome::Bad(RequestError::Timeout);
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            return ReadOutcome::Bad(RequestError::Syntax(
                                "connection closed mid-body",
                            ))
                        }
                        Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        Err(e) => return ReadOutcome::Io(e),
                    }
                }
                let body = buf[consumed..consumed + body_len].to_vec();
                buf.drain(..consumed + body_len);
                return ReadOutcome::Request(Request { head, body });
            }
            HeadOutcome::Incomplete => {
                if expired(deadline) {
                    return ReadOutcome::Bad(RequestError::Timeout);
                }
                match stream.read(&mut chunk) {
                    Ok(0) => {
                        return if buf.is_empty() {
                            ReadOutcome::Closed
                        } else {
                            ReadOutcome::Bad(RequestError::Syntax("connection closed mid-head"))
                        }
                    }
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) => return ReadOutcome::Io(e),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> (RequestHead, usize) {
        match parse_head(bytes, DEFAULT_HEAD_LIMIT) {
            HeadOutcome::Parsed { head, consumed } => (head, consumed),
            other => panic!("expected parse, got {other:?}"),
        }
    }

    fn parse_err(bytes: &[u8]) -> RequestError {
        match parse_head(bytes, DEFAULT_HEAD_LIMIT) {
            HeadOutcome::Invalid(e) => e,
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_minimal_get() {
        let (head, consumed) = parse_ok(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\ntrailing");
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/healthz");
        assert!(head.http11);
        assert_eq!(head.header("host"), Some("x"));
        assert_eq!(head.header("HOST"), Some("x"));
        assert_eq!(consumed, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());
        assert!(head.keep_alive());
    }

    #[test]
    fn content_length_and_keep_alive_semantics() {
        let (head, _) = parse_ok(
            b"POST /instances HTTP/1.1\r\nContent-Length: 12\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(head.content_length(), Ok(12));
        assert!(!head.keep_alive());
        let (head, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!head.keep_alive());
        let (head, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(head.keep_alive());
        let (head, _) = parse_ok(b"POST / HTTP/1.1\r\nContent-Length: 9999999999999\r\n\r\n");
        assert!(head.content_length().is_err());
    }

    #[test]
    fn conflicting_content_length_headers_are_rejected() {
        let (head, _) =
            parse_ok(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n");
        assert_eq!(
            head.content_length(),
            Err(RequestError::Syntax("conflicting content-length headers"))
        );
        // Identical repeats are collapsed, per RFC 9112 §6.3.
        let (head, _) =
            parse_ok(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n");
        assert_eq!(head.content_length(), Ok(5));
    }

    #[test]
    fn connection_header_lists_honor_close() {
        let (head, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n");
        assert!(!head.keep_alive());
        let (head, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close, keep-alive\r\n\r\n");
        assert!(!head.keep_alive());
        let (head, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: Keep-Alive, Upgrade\r\n\r\n");
        assert!(head.keep_alive());
        // `close` wins even when split across repeated Connection fields.
        let (head, _) =
            parse_ok(b"GET / HTTP/1.1\r\nConnection: keep-alive\r\nConnection: close\r\n\r\n");
        assert!(!head.keep_alive());
        // Unknown tokens alone fall back to the version default.
        let (head, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n");
        assert!(head.keep_alive());
    }

    #[test]
    fn read_request_times_out_incomplete_requests_only() {
        let limits = Limits::default();
        let expired = Some(Instant::now());
        // Incomplete head past the deadline → 408, without reading further.
        let mut cursor = std::io::Cursor::new(b"GET / HT".to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut cursor, &mut buf, &limits, expired),
            ReadOutcome::Bad(RequestError::Timeout)
        ));
        // Complete head, missing body bytes past the deadline → 408.
        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut buf = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel".to_vec();
        assert!(matches!(
            read_request(&mut cursor, &mut buf, &limits, expired),
            ReadOutcome::Bad(RequestError::Timeout)
        ));
        // A fully buffered request never times out, however late.
        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut buf = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec();
        let ReadOutcome::Request(req) = read_request(&mut cursor, &mut buf, &limits, expired)
        else {
            panic!("buffered request should parse despite an expired deadline");
        };
        assert_eq!(req.body, b"hello");
        assert_eq!(RequestError::Timeout.status(), 408);
    }

    #[test]
    fn incomplete_heads_ask_for_more() {
        assert!(matches!(
            parse_head(b"GET / HTTP/1.1\r\nHost: x\r\n", DEFAULT_HEAD_LIMIT),
            HeadOutcome::Incomplete
        ));
        assert!(matches!(
            parse_head(b"", DEFAULT_HEAD_LIMIT),
            HeadOutcome::Incomplete
        ));
    }

    #[test]
    fn malformed_heads_are_rejected_with_the_right_status() {
        assert_eq!(parse_err(b"GET /\r\n\r\n").status(), 400); // missing version
        assert_eq!(parse_err(b"GET / HTTP/2.0\r\n\r\n").status(), 505);
        assert_eq!(parse_err(b"GET / HTTP/9.9\r\n\r\n").status(), 505);
        assert_eq!(parse_err(b"GET / FTP/1.1\r\n\r\n").status(), 400);
        assert_eq!(parse_err(b"GET  / HTTP/1.1\r\n\r\n").status(), 400); // double SP
        assert_eq!(
            parse_err(b"GET / HTTP/1.1\r\nbad header\r\n\r\n").status(),
            400
        );
        assert_eq!(
            parse_err(b"GET / HTTP/1.1\nHost: x\n\r\n\r\n").status(),
            400
        ); // bare LF
        assert_eq!(parse_err(b"G\x01T / HTTP/1.1\r\n\r\n").status(), 400);
        assert_eq!(
            parse_err(b"GET / HTTP/1.1\r\nX: a\x00b\r\n\r\n").status(),
            400
        );
    }

    #[test]
    fn oversized_heads_are_431() {
        let huge = vec![b'a'; 100];
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            req.extend_from_slice(format!("X-{i}: ").as_bytes());
            req.extend_from_slice(&huge);
            req.extend_from_slice(b"\r\n");
        }
        req.extend_from_slice(b"\r\n");
        assert_eq!(parse_err(&req), RequestError::HeadTooLarge);
        // Also when the terminator never arrives inside the window.
        let endless = vec![b'a'; DEFAULT_HEAD_LIMIT + 1];
        assert_eq!(parse_err(&endless), RequestError::HeadTooLarge);
    }

    #[test]
    fn read_request_collects_bodies_and_pipelines() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /y HTTP/1.1\r\n\r\n";
        let mut cursor = std::io::Cursor::new(wire.to_vec());
        let mut buf = Vec::new();
        let limits = Limits::default();
        let ReadOutcome::Request(first) = read_request(&mut cursor, &mut buf, &limits, None) else {
            panic!("first request should parse");
        };
        assert_eq!(first.body, b"hello");
        let ReadOutcome::Request(second) = read_request(&mut cursor, &mut buf, &limits, None)
        else {
            panic!("pipelined request should parse");
        };
        assert_eq!(second.head.target, "/y");
        assert!(matches!(
            read_request(&mut cursor, &mut buf, &limits, None),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn read_request_enforces_body_limit_and_encoding() {
        let limits = Limits {
            head_bytes: DEFAULT_HEAD_LIMIT,
            body_bytes: 4,
        };
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut cursor = std::io::Cursor::new(wire.to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut cursor, &mut buf, &limits, None),
            ReadOutcome::Bad(RequestError::BodyTooLarge { limit: 4 })
        ));
        let wire = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let mut cursor = std::io::Cursor::new(wire.to_vec());
        let mut buf = Vec::new();
        assert!(matches!(
            read_request(&mut cursor, &mut buf, &limits, None),
            ReadOutcome::Bad(RequestError::UnsupportedEncoding)
        ));
    }
}
