//! The listener and worker pool: accepted connections flow through a
//! bounded queue into a fixed set of handler threads.
//!
//! Concurrency is a mutex + condvar over plain state (the workspace
//! confines atomics to the capacity ledger): the accept thread pushes
//! connections and notifies, workers pop and serve keep-alive loops, and
//! shutdown flips a flag, wakes everyone (a loopback self-connect unblocks
//! `accept`), joins the threads after they drain the queue, and then drains
//! the registry's in-flight tickets — a graceful stop, not an abort.

use crate::api::Api;
use crate::config::HttpConfig;
use crate::request::{read_request, Limits, ReadOutcome, DEFAULT_HEAD_LIMIT};
use crate::response::Response;
use revmax_serve::Registry;
use std::collections::VecDeque;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker blocks in `read` before re-checking the shutdown
/// flag; idle keep-alive connections stay open across timeouts.
const READ_TICK: Duration = Duration::from_millis(200);

struct ServerState {
    queue: VecDeque<TcpStream>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<ServerState>,
    work: Condvar,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.state.lock().expect("server state poisoned").shutdown
    }
}

/// A running HTTP server bound to loopback; dropping it (or calling
/// [`Server::shutdown`]) stops it gracefully.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Registry>,
}

impl Server {
    /// Binds `127.0.0.1:{config.port}` and starts the accept thread plus
    /// `config.workers` handler threads over `registry`.
    pub fn start(registry: Arc<Registry>, config: HttpConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(ServerState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let api = Arc::new(Api::new(Arc::clone(&registry)));

        let accept_shared = Arc::clone(&shared);
        let queue_limit = config.queue;
        let accept_thread = std::thread::Builder::new()
            .name("revmax-http-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    let Ok(stream) = conn else { continue };
                    let rejected = {
                        let mut state = accept_shared.state.lock().expect("server state poisoned");
                        if state.shutdown {
                            break;
                        }
                        if state.queue.len() < queue_limit {
                            state.queue.push_back(stream);
                            None
                        } else {
                            Some(stream)
                        }
                    };
                    match rejected {
                        None => accept_shared.work.notify_one(),
                        // Backpressure: refuse at the door instead of
                        // queueing unboundedly.
                        Some(mut stream) => {
                            let _ = Response::error(503, "server is saturated")
                                .write_to(&mut stream, true);
                        }
                    }
                }
            })?;

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for idx in 0..config.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let worker_api = Arc::clone(&api);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("revmax-http-worker-{idx}"))
                    .spawn(move || loop {
                        let conn = {
                            let mut state =
                                worker_shared.state.lock().expect("server state poisoned");
                            loop {
                                if let Some(conn) = state.queue.pop_front() {
                                    break Some(conn);
                                }
                                if state.shutdown {
                                    break None;
                                }
                                state = worker_shared
                                    .work
                                    .wait(state)
                                    .expect("server state poisoned");
                            }
                        };
                        match conn {
                            // Panic isolation: a handler panic must not
                            // shrink the pool. Connection state is per-call
                            // (the stream is dropped, closing the socket),
                            // so unwinding past it leaks nothing shared.
                            Some(stream) => {
                                let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    serve_connection(stream, &worker_api, &worker_shared, &config)
                                }));
                            }
                            None => return,
                        }
                    })?,
            );
        }

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            workers,
            registry,
        })
    }

    /// The bound loopback address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server serves from.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stops accepting, lets workers finish queued and in-flight requests,
    /// joins every thread, and drains the registry's pending plan tickets.
    /// Returns `true` when the registry fully drained inside the grace
    /// period.
    pub fn shutdown(mut self) -> bool {
        self.stop();
        self.registry.drain(Duration::from_secs(10))
    }

    fn stop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("server state poisoned");
            if state.shutdown {
                return;
            }
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        // Unblock the accept thread: it wakes on this connection, observes
        // the flag, and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection's keep-alive loop: read a request, answer it, repeat
/// until the peer closes, an error forces `Connection: close`, shutdown is
/// observed between requests, or `config.idle_timeout` passes without a
/// completed request (incomplete requests are answered `408`, a silent
/// idle connection is simply closed) — so neither an idle nor a
/// byte-trickling client can pin a worker forever.
fn serve_connection(mut stream: TcpStream, api: &Api, shared: &Shared, config: &HttpConfig) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let limits = Limits {
        head_bytes: DEFAULT_HEAD_LIMIT,
        body_bytes: config.body_limit,
    };
    let mut buf = Vec::new();
    let mut deadline = Instant::now() + config.idle_timeout;
    loop {
        match read_request(&mut stream, &mut buf, &limits, Some(deadline)) {
            ReadOutcome::Request(req) => {
                deadline = Instant::now() + config.idle_timeout;
                let keep = req.head.keep_alive() && !shared.is_shutdown();
                // Panic isolation at the request boundary: answer a 500 and
                // close instead of unwinding through the worker.
                let response = std::panic::catch_unwind(AssertUnwindSafe(|| api.handle(&req)));
                let Ok(response) = response else {
                    let _ =
                        Response::error(500, "internal server error").write_to(&mut stream, true);
                    return;
                };
                if response.write_to(&mut stream, !keep).is_err() || !keep {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Bad(e) => {
                let _ = Response::error(e.status(), &e.to_string()).write_to(&mut stream, true);
                return;
            }
            ReadOutcome::Io(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick: keep the connection (and any partial request
                // bytes) unless the server is stopping or the connection
                // sat idle past its deadline (a partial request is left
                // for `read_request` to answer with 408 on re-entry).
                if shared.is_shutdown() {
                    return;
                }
                if buf.is_empty() && Instant::now() >= deadline {
                    return;
                }
            }
            ReadOutcome::Io(_) => return,
        }
    }
}
