//! A minimal blocking HTTP client for the conformance/stress suites and
//! the `bench_http` emitter — the test harness must not depend on the
//! parser under test, so responses are read with an independent, trivial
//! scanner (status line + `Content-Length` only, which is everything the
//! server emits).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A keep-alive client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr` with generous timeouts.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads the response: `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let wire = format!(
            "{method} {target} HTTP/1.1\r\nHost: revmax\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(wire.as_bytes())?;
        read_response(&mut self.stream, &mut self.buf)
    }
}

/// Sends raw bytes on a fresh connection and reads one response — for the
/// malformed-request conformance cases that no well-formed client can
/// produce.
pub fn send_raw(addr: SocketAddr, bytes: &[u8]) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.write_all(bytes)?;
    let mut buf = Vec::new();
    read_response(&mut stream, &mut buf)
}

/// One-shot convenience: connect, request, disconnect.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    Client::connect(addr)?.request(method, target, body)
}

/// Reads one `status + headers + Content-Length body` response, keeping
/// surplus bytes in `buf` for the next keep-alive exchange.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<(u16, String)> {
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid response body",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    buf.drain(..body_start + content_length);
    Ok((status, body))
}
