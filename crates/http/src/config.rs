//! Server configuration, sourced from `REVMAX_HTTP_*` environment knobs
//! through the shared `revmax_core::env` parser (documented in
//! `docs/env.md`).

use revmax_core::env;
use revmax_serve::RegistryConfig;
use std::time::Duration;

/// Listener, worker-pool, and registry sizing for one [`crate::Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// TCP port to bind on loopback (`0` = ephemeral, the default — the
    /// bound port is reported by [`crate::Server::addr`]).
    pub port: u16,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Accepted connections queued ahead of the workers; beyond this the
    /// listener answers `503` directly.
    pub queue: usize,
    /// Request-body cap in bytes (`413` beyond).
    pub body_limit: usize,
    /// How long a connection may sit without completing a request before
    /// the worker closes it (incomplete requests are answered `408`) — an
    /// idle or byte-trickling client cannot pin a worker past this.
    pub idle_timeout: Duration,
    /// Plan/session capacity and eviction policy for the backing registry.
    pub registry: RegistryConfig,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            port: 0,
            workers: 4,
            queue: 64,
            body_limit: 8 * 1024 * 1024,
            idle_timeout: Duration::from_secs(30),
            registry: RegistryConfig::default(),
        }
    }
}

impl HttpConfig {
    /// Reads the `REVMAX_HTTP_*` knobs, with [`HttpConfig::default`] for
    /// anything unset:
    ///
    /// * `REVMAX_HTTP_PORT` — loopback port (`0` = ephemeral);
    /// * `REVMAX_HTTP_WORKERS` — worker threads (min 1);
    /// * `REVMAX_HTTP_QUEUE` — accept-queue bound (min 1);
    /// * `REVMAX_HTTP_BODY_LIMIT` — request-body cap in bytes;
    /// * `REVMAX_HTTP_IDLE_TIMEOUT` — per-connection idle deadline in
    ///   seconds (min 1);
    /// * `REVMAX_HTTP_PLANS` — max unfinished plan submissions (429 beyond);
    /// * `REVMAX_HTTP_SESSIONS` — max live sessions (LRU eviction beyond);
    /// * `REVMAX_HTTP_SESSION_TTL` — session idle TTL in seconds.
    pub fn from_env() -> Self {
        let default = HttpConfig::default();
        let registry = RegistryConfig {
            max_pending_plans: env::var_or("REVMAX_HTTP_PLANS", default.registry.max_pending_plans),
            max_sessions: env::var_or("REVMAX_HTTP_SESSIONS", default.registry.max_sessions),
            session_ttl: Duration::from_secs(env::var_or(
                "REVMAX_HTTP_SESSION_TTL",
                default.registry.session_ttl.as_secs(),
            )),
            ..default.registry
        };
        HttpConfig {
            port: env::var_or("REVMAX_HTTP_PORT", default.port),
            workers: env::var_or("REVMAX_HTTP_WORKERS", default.workers).max(1),
            queue: env::var_or("REVMAX_HTTP_QUEUE", default.queue).max(1),
            body_limit: env::var_or("REVMAX_HTTP_BODY_LIMIT", default.body_limit),
            idle_timeout: Duration::from_secs(
                env::var_or("REVMAX_HTTP_IDLE_TIMEOUT", default.idle_timeout.as_secs()).max(1),
            ),
            registry,
        }
    }
}
