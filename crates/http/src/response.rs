//! HTTP/1.1 response assembly: every endpoint answers a JSON document with
//! an explicit `Content-Length` (no chunked framing anywhere).

use revmax_core::JsonValue;
use std::io::{self, Write};

/// A response ready to serialise: status plus a JSON body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The JSON body, already serialised.
    pub body: String,
}

impl Response {
    /// A response with `value` as its body.
    pub fn json(status: u16, value: JsonValue) -> Self {
        Response {
            status,
            body: value.to_string(),
        }
    }

    /// A standard error body: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::from("{\"error\":");
        revmax_core::json::write_escaped(&mut body, message);
        body.push('}');
        Response { status, body }
    }

    /// The canonical reason phrase for this response's status.
    pub fn reason(&self) -> &'static str {
        reason(self.status)
    }

    /// Writes the full response; `close` selects the `Connection` header.
    pub fn write_to(&self, out: &mut impl Write, close: bool) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            self.reason(),
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        out.write_all(head.as_bytes())?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

/// The reason phrase for a status code.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_status_line_headers_and_body() {
        let resp = Response::error(404, "no such endpoint");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).expect("in-memory write");
        let text = String::from_utf8(wire).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        let body = text.split("\r\n\r\n").nth(1).expect("body present");
        assert_eq!(body, "{\"error\":\"no such endpoint\"}");
        assert!(text.contains(&format!("Content-Length: {}\r\n", body.len())));
    }

    #[test]
    fn keep_alive_header_and_reasons() {
        let resp = Response::json(200, revmax_core::json::object(vec![]));
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).expect("in-memory write");
        let text = String::from_utf8(wire).expect("ascii");
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert_eq!(reason(429), "Too Many Requests");
        assert_eq!(reason(410), "Gone");
        assert_eq!(reason(599), "Unknown");
    }
}
