//! HTTP front-end throughput/latency emitter: starts an in-process
//! `revmax_http::Server`, drives `N` concurrent clients over real loopback
//! sockets through full session walks (open → per-day adoption events →
//! suffix reads), and writes a machine-readable `BENCH_http.json`.
//!
//! Usage:
//! ```text
//! cargo run --release -p revmax-http --bin bench_http [-- out.json]
//! ```
//! Environment (parsed through the shared `revmax_core::env` module):
//! * `REVMAX_HTTP_BENCH_SCALE`   — dataset scale factor (default 0.02);
//! * `REVMAX_HTTP_BENCH_CLIENTS` — concurrent client connections
//!   (default 2, min 2 — the point is concurrency);
//! * `REVMAX_BENCH_ENFORCE`      — `1` arms the assertions (non-zero
//!   throughput, identical realized revenue across clients).
//!
//! Each client runs its own session over the same instance with the same
//! deterministic shopper rule (adopt every third displayed triple), so
//! every client must realize the identical revenue — divergence fails the
//! run under `REVMAX_BENCH_ENFORCE=1`. The headline numbers are aggregate
//! `requests_per_sec` and the pooled p50/p99 of the per-event replan
//! round-trip (POST events → replanned suffix in the response).

use revmax_core::{env, json, wire};
use revmax_data::{generate, DatasetConfig};
use revmax_http::{testkit, HttpConfig, Server};
use revmax_serve::{PlanService, Registry};
use std::sync::Arc;
use std::time::Instant;

struct ClientOutcome {
    requests: usize,
    replan_ns: Vec<u128>,
    realized_revenue: f64,
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Walks one full session over the wire; returns per-request measurements.
fn run_client(addr: std::net::SocketAddr, open_body: &str) -> ClientOutcome {
    let mut client = testkit::Client::connect(addr).expect("connect to bench server");
    let mut requests = 0usize;
    let mut replan_ns = Vec::new();

    let (status, body) = client
        .request("POST", "/sessions", Some(open_body))
        .expect("open session");
    requests += 1;
    assert_eq!(status, 201, "open session: {body}");
    let view = json::parse(&body).expect("session JSON parses");
    let sid = view
        .get("session_id")
        .and_then(|v| v.as_u64())
        .expect("session id");
    let horizon = view
        .get("horizon")
        .and_then(|v| v.as_u32())
        .expect("horizon");
    let mut suffix = view.get("suffix").cloned().expect("suffix");
    let mut realized = 0.0;

    for day in 1..=horizon {
        // Deterministic shopper: adopt every third triple displayed today.
        let triples = suffix.as_array().expect("suffix is an array");
        let mut events = String::from("[");
        let mut adopted_idx = 0usize;
        for t in triples {
            let row = t.as_array().expect("triple row");
            let (u, i, step) = (
                row[0].as_u64().expect("user"),
                row[1].as_u64().expect("item"),
                row[2].as_u64().expect("t"),
            );
            if step != u64::from(day) {
                continue;
            }
            let outcome = if adopted_idx.is_multiple_of(3) {
                "adopted"
            } else {
                "rejected"
            };
            adopted_idx += 1;
            if events.len() > 1 {
                events.push(',');
            }
            events.push_str(&format!(
                "{{\"user\":{u},\"item\":{i},\"t\":{step},\"outcome\":\"{outcome}\"}}"
            ));
        }
        events.push(']');
        let body = format!("{{\"now\":{day},\"events\":{events}}}");
        let started = Instant::now();
        let (status, reply) = client
            .request("POST", &format!("/sessions/{sid}/events"), Some(&body))
            .expect("advance session");
        replan_ns.push(started.elapsed().as_nanos());
        requests += 1;
        assert_eq!(status, 200, "advance day {day}: {reply}");
        let view = json::parse(&reply).expect("advance JSON parses");
        suffix = view.get("suffix").cloned().expect("suffix");
        realized = view
            .get("realized_revenue")
            .and_then(|v| v.as_f64())
            .expect("realized revenue");

        // Interleave a read so the mix is not pure POST.
        let (status, reply) = client
            .request("GET", &format!("/sessions/{sid}/suffix"), None)
            .expect("read suffix");
        requests += 1;
        assert_eq!(status, 200, "suffix day {day}: {reply}");
    }

    let (status, _) = client
        .request("DELETE", &format!("/sessions/{sid}"), None)
        .expect("close session");
    requests += 1;
    assert_eq!(status, 200);
    ClientOutcome {
        requests,
        replan_ns,
        realized_revenue: realized,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_http.json".to_string());
    let scale: f64 = env::var_or("REVMAX_HTTP_BENCH_SCALE", 0.02);
    let clients: usize = env::var_or("REVMAX_HTTP_BENCH_CLIENTS", 2).max(2);
    let enforce = env::flag("REVMAX_BENCH_ENFORCE");

    eprintln!("generating amazon_like().scaled({scale}) ...");
    let config = DatasetConfig::amazon_like().scaled(scale);
    let ds = generate(&config);
    let inst = &ds.instance;
    eprintln!(
        "dataset: {} users, {} items, T = {}, {} candidate pairs; {clients} clients",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    );

    let http = HttpConfig {
        workers: clients + 1,
        ..HttpConfig::default()
    };
    let registry = Arc::new(Registry::new(
        Arc::new(PlanService::new(clients)),
        http.registry,
    ));
    let server = Server::start(registry, http).expect("bind loopback");
    let addr = server.addr();
    let open_body = format!(
        "{{\"instance\":{},\"config\":{{\"warm_start\":true}}}}",
        wire::instance_to_json(inst)
    );

    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| scope.spawn(|| run_client(addr, &open_body)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    assert!(server.shutdown(), "registry drained on shutdown");

    let requests: usize = outcomes.iter().map(|o| o.requests).sum();
    let mut replans: Vec<u128> = outcomes.iter().flat_map(|o| o.replan_ns.clone()).collect();
    replans.sort_unstable();
    let requests_per_sec = requests as f64 / wall_secs;
    let p50 = percentile(&replans, 0.50);
    let p99 = percentile(&replans, 0.99);
    let revenue = outcomes[0].realized_revenue;
    let agree = outcomes
        .iter()
        .all(|o| (o.realized_revenue - revenue).abs() <= 1e-9 * revenue.abs().max(1.0));

    eprintln!(
        "{requests} requests over {wall_secs:.3}s = {requests_per_sec:.1} req/s; \
         replan p50 {p50} ns, p99 {p99} ns; realized revenue {revenue:.4} (agree: {agree})"
    );
    if enforce {
        assert!(requests_per_sec > 0.0, "throughput must be non-zero");
        assert!(agree, "clients diverged on realized revenue");
    } else if !agree {
        eprintln!("WARNING: clients diverged on realized revenue");
    }

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"dataset\": \"{}\",\n", ds.config.name));
    out.push_str(&format!(
        "  \"users\": {}, \"items\": {}, \"horizon\": {},\n",
        inst.num_users(),
        inst.num_items(),
        inst.horizon()
    ));
    out.push_str(&format!("  \"clients\": {clients},\n"));
    out.push_str(&format!("  \"requests\": {requests},\n"));
    out.push_str(&format!("  \"wall_secs\": {wall_secs},\n"));
    out.push_str(&format!("  \"requests_per_sec\": {requests_per_sec},\n"));
    out.push_str(&format!(
        "  \"replan_latency_ns\": {{ \"p50\": {p50}, \"p99\": {p99}, \"count\": {} }},\n",
        replans.len()
    ));
    out.push_str(&format!("  \"realized_revenue\": {revenue},\n"));
    out.push_str(&format!("  \"clients_agree\": {agree}\n"));
    out.push_str("}\n");
    std::fs::write(&out_path, out).expect("write BENCH_http.json");
    eprintln!("wrote {out_path}");
}
