//! Method + path dispatch for the protocol surface documented in
//! `docs/http.md`.

/// The endpoints the service exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness probe.
    Health,
    /// `GET /statsz` — registry occupancy counters.
    Stats,
    /// `POST /instances` — submit an instance for asynchronous planning.
    SubmitPlan,
    /// `GET /plans/{id}` — poll/fetch a submitted plan.
    PlanStatus(u64),
    /// `POST /sessions` — open a replanning session.
    OpenSession,
    /// `POST /sessions/{id}/events` — apply adoption events and replan.
    SessionEvents(u64),
    /// `GET /sessions/{id}/suffix` — the current planned suffix.
    SessionSuffix(u64),
    /// `DELETE /sessions/{id}` — close a session.
    CloseSession(u64),
}

/// Why a request did not dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The path names no known resource (404).
    NotFound,
    /// The path exists but not under this method (405).
    MethodNotAllowed,
}

/// A decimal id segment (rejects empty, non-digit, and overlong ids).
fn parse_id(segment: &str) -> Option<u64> {
    if segment.is_empty() || segment.len() > 19 || !segment.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    segment.parse().ok()
}

/// Dispatches a method + request target to a [`Route`]. Query strings are
/// ignored; paths are matched exactly (no trailing-slash tolerance).
pub fn route(method: &str, target: &str) -> Result<Route, RouteError> {
    let path = target.split('?').next().unwrap_or(target);
    let allow = |ok: bool, route: Route| {
        if ok {
            Ok(route)
        } else {
            Err(RouteError::MethodNotAllowed)
        }
    };
    match path {
        "/healthz" => return allow(method == "GET", Route::Health),
        "/statsz" => return allow(method == "GET", Route::Stats),
        "/instances" => return allow(method == "POST", Route::SubmitPlan),
        "/sessions" => return allow(method == "POST", Route::OpenSession),
        _ => {}
    }
    let mut segments = path
        .strip_prefix('/')
        .ok_or(RouteError::NotFound)?
        .split('/');
    match (
        segments.next(),
        segments.next(),
        segments.next(),
        segments.next(),
    ) {
        (Some("plans"), Some(id), None, _) => {
            let id = parse_id(id).ok_or(RouteError::NotFound)?;
            allow(method == "GET", Route::PlanStatus(id))
        }
        (Some("sessions"), Some(id), None, _) => {
            let id = parse_id(id).ok_or(RouteError::NotFound)?;
            allow(method == "DELETE", Route::CloseSession(id))
        }
        (Some("sessions"), Some(id), Some("events"), None) => {
            let id = parse_id(id).ok_or(RouteError::NotFound)?;
            allow(method == "POST", Route::SessionEvents(id))
        }
        (Some("sessions"), Some(id), Some("suffix"), None) => {
            let id = parse_id(id).ok_or(RouteError::NotFound)?;
            allow(method == "GET", Route::SessionSuffix(id))
        }
        _ => Err(RouteError::NotFound),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_every_endpoint() {
        assert_eq!(route("GET", "/healthz"), Ok(Route::Health));
        assert_eq!(route("GET", "/statsz"), Ok(Route::Stats));
        assert_eq!(route("POST", "/instances"), Ok(Route::SubmitPlan));
        assert_eq!(route("GET", "/plans/42"), Ok(Route::PlanStatus(42)));
        assert_eq!(route("POST", "/sessions"), Ok(Route::OpenSession));
        assert_eq!(
            route("POST", "/sessions/7/events"),
            Ok(Route::SessionEvents(7))
        );
        assert_eq!(
            route("GET", "/sessions/7/suffix"),
            Ok(Route::SessionSuffix(7))
        );
        assert_eq!(route("DELETE", "/sessions/7"), Ok(Route::CloseSession(7)));
        assert_eq!(route("GET", "/plans/3?verbose=1"), Ok(Route::PlanStatus(3)));
    }

    #[test]
    fn wrong_method_is_405_unknown_path_is_404() {
        assert_eq!(route("POST", "/healthz"), Err(RouteError::MethodNotAllowed));
        assert_eq!(
            route("GET", "/instances"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("PUT", "/sessions/1"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("GET", "/sessions/1/events"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(route("GET", "/"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/plans"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/plans/abc"), Err(RouteError::NotFound));
        assert_eq!(
            route("GET", "/plans/123456789012345678901"),
            Err(RouteError::NotFound)
        );
        assert_eq!(route("GET", "/sessions/1/nope"), Err(RouteError::NotFound));
        assert_eq!(
            route("GET", "/sessions/1/suffix/extra"),
            Err(RouteError::NotFound)
        );
        assert_eq!(route("GET", "healthz"), Err(RouteError::NotFound));
    }
}
