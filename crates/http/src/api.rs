//! The protocol handlers: a pure mapping from parsed [`Request`]s to
//! [`Response`]s over a [`Registry`] — no sockets, so the conformance suite
//! can exercise every status path in-process and over loopback identically.

use crate::request::Request;
use crate::response::Response;
use crate::router::{route, Route, RouteError};
use revmax_algorithms::{EngineKind, HeapKind, PlanAlgorithm, PlannerConfig};
use revmax_core::json::{self, JsonValue};
use revmax_core::{wire, WireError};
use revmax_serve::{
    PlanView, Registry, RegistryError, RegistryStats, SessionError, SessionView, TicketStatus,
};
use std::sync::Arc;

/// The request handler shared by every connection worker.
pub struct Api {
    registry: Arc<Registry>,
}

impl Api {
    /// A handler over `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        Api { registry }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Answers one request. Total: every input maps to a response with a
    /// definite status (this function never panics on untrusted input).
    pub fn handle(&self, req: &Request) -> Response {
        let route = match route(&req.head.method, &req.head.target) {
            Ok(r) => r,
            Err(RouteError::NotFound) => return Response::error(404, "no such endpoint"),
            Err(RouteError::MethodNotAllowed) => {
                return Response::error(405, "method not allowed on this endpoint")
            }
        };
        match route {
            Route::Health => Response::json(
                200,
                json::object(vec![("status", JsonValue::String("ok".into()))]),
            ),
            Route::Stats => self.stats(),
            Route::SubmitPlan => self.submit_plan(&req.body),
            Route::PlanStatus(id) => self.plan_status(id),
            Route::OpenSession => self.open_session(&req.body),
            Route::SessionEvents(id) => self.session_events(id, &req.body),
            Route::SessionSuffix(id) => match self.registry.session_view(id) {
                Ok(view) => Response::json(200, session_json(&view)),
                Err(e) => registry_error(&e),
            },
            Route::CloseSession(id) => match self.registry.close_session(id) {
                Ok(()) => Response::json(
                    200,
                    json::object(vec![
                        ("session_id", id_json(id)),
                        ("closed", JsonValue::Bool(true)),
                    ]),
                ),
                Err(e) => registry_error(&e),
            },
        }
    }

    fn stats(&self) -> Response {
        let RegistryStats {
            queued_plans,
            stored_plans,
            active_sessions,
            pooled_snapshots,
            plans_evicted,
            sessions_evicted,
        } = self.registry.stats();
        Response::json(
            200,
            json::object(vec![
                ("queued_plans", count_json(queued_plans)),
                ("stored_plans", count_json(stored_plans)),
                ("active_sessions", count_json(active_sessions)),
                ("pooled_snapshots", count_json(pooled_snapshots)),
                ("plans_evicted", id_json(plans_evicted)),
                ("sessions_evicted", id_json(sessions_evicted)),
            ]),
        )
    }

    fn submit_plan(&self, body: &[u8]) -> Response {
        let (inst, config) = match parse_submission(body) {
            Ok(parts) => parts,
            Err(resp) => return *resp,
        };
        match self.registry.submit_plan(inst, config) {
            Ok(id) => Response::json(
                202,
                json::object(vec![
                    ("plan_id", id_json(id)),
                    ("status", JsonValue::String("queued".into())),
                ]),
            ),
            Err(e) => registry_error(&e),
        }
    }

    fn plan_status(&self, id: u64) -> Response {
        match self.registry.plan_status(id) {
            Ok(PlanView::Pending(status)) => {
                let label = match status {
                    TicketStatus::Queued => "queued",
                    _ => "running",
                };
                Response::json(
                    202,
                    json::object(vec![
                        ("plan_id", id_json(id)),
                        ("status", JsonValue::String(label.into())),
                    ]),
                )
            }
            Ok(PlanView::Done(report)) => Response::json(
                200,
                json::object(vec![
                    ("plan_id", id_json(id)),
                    ("status", JsonValue::String("done".into())),
                    ("revenue", JsonValue::Number(report.outcome.revenue)),
                    (
                        "strategy",
                        wire::strategy_to_value(&report.outcome.strategy),
                    ),
                ]),
            ),
            Err(e) => registry_error(&e),
        }
    }

    fn open_session(&self, body: &[u8]) -> Response {
        let (inst, config) = match parse_submission(body) {
            Ok(parts) => parts,
            Err(resp) => return *resp,
        };
        match self.registry.open_session(inst, config) {
            Ok((_, view)) => Response::json(201, session_json(&view)),
            Err(e) => registry_error(&e),
        }
    }

    fn session_events(&self, id: u64, body: &[u8]) -> Response {
        let value = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return *resp,
        };
        let Some(obj) = value.as_object() else {
            return Response::error(400, "request body must be a JSON object");
        };
        let mut events = None;
        let mut now = None;
        for (key, field) in obj {
            match key.as_str() {
                "events" => match wire::events_from_value(field) {
                    Ok(parsed) => events = Some(parsed),
                    Err(e) => return wire_error(&e),
                },
                "now" => match field.as_u32() {
                    Some(t) => now = Some(t),
                    None => return Response::error(400, "\"now\" must be an integer time step"),
                },
                _ => return Response::error(400, "unknown key in event submission"),
            }
        }
        let Some(events) = events else {
            return Response::error(400, "missing \"events\" array");
        };
        match self.registry.advance_session(id, now, &events) {
            Ok(view) => Response::json(200, session_json(&view)),
            Err(e) => registry_error(&e),
        }
    }
}

/// `{"instance": ..., "config"?: ...}` → a built instance + planner config.
fn parse_submission(body: &[u8]) -> Result<(revmax_core::Instance, PlannerConfig), Box<Response>> {
    let value = parse_body(body)?;
    let Some(obj) = value.as_object() else {
        return Err(Box::new(Response::error(
            400,
            "request body must be a JSON object",
        )));
    };
    let mut instance = None;
    let mut config = PlannerConfig::default();
    for (key, field) in obj {
        match key.as_str() {
            "instance" => match wire::instance_from_value(field) {
                Ok(inst) => instance = Some(inst),
                Err(e) => return Err(Box::new(wire_error(&e))),
            },
            "config" => match planner_config_from(field) {
                Ok(cfg) => config = cfg,
                Err(message) => return Err(Box::new(Response::error(400, &message))),
            },
            _ => {
                return Err(Box::new(Response::error(
                    400,
                    "unknown key in plan submission",
                )))
            }
        }
    }
    let Some(instance) = instance else {
        return Err(Box::new(Response::error(
            400,
            "missing \"instance\" object",
        )));
    };
    Ok((instance, config))
}

fn parse_body(body: &[u8]) -> Result<JsonValue, Box<Response>> {
    let text = std::str::from_utf8(body)
        .map_err(|_| Box::new(Response::error(400, "request body is not valid UTF-8")))?;
    json::parse(text).map_err(|e| Box::new(Response::error(400, &e.to_string())))
}

/// The wire subset of [`PlannerConfig`]: algorithm/engine/heap selectors
/// plus the numeric knobs a remote client can meaningfully set. Unknown
/// keys are rejected so typos fail loudly instead of silently defaulting.
fn planner_config_from(value: &JsonValue) -> Result<PlannerConfig, String> {
    let Some(obj) = value.as_object() else {
        return Err("\"config\" must be a JSON object".into());
    };
    let mut cfg = PlannerConfig::default();
    for (key, field) in obj {
        match key.as_str() {
            "algorithm" => {
                let name = field.as_str().ok_or("\"algorithm\" must be a string")?;
                cfg = cfg.with_algorithm(match name {
                    "gg" => PlanAlgorithm::GlobalGreedy,
                    "gg-no" => PlanAlgorithm::GlobalNoSaturation,
                    "slg" => PlanAlgorithm::SequentialLocalGreedy,
                    "rlg" => PlanAlgorithm::RandomizedLocalGreedy { permutations: 20 },
                    other => return Err(format!("unknown algorithm {other:?}")),
                });
            }
            "engine" => {
                let name = field.as_str().ok_or("\"engine\" must be a string")?;
                cfg = cfg.with_engine(match name {
                    "flat" => EngineKind::Flat,
                    "hash" => EngineKind::Hash,
                    other => return Err(format!("unknown engine {other:?}")),
                });
            }
            "heap" => {
                let name = field.as_str().ok_or("\"heap\" must be a string")?;
                cfg = cfg.with_heap(match name {
                    "lazy" => HeapKind::Lazy,
                    "dary" | "indexed_dary" => HeapKind::IndexedDary,
                    other => return Err(format!("unknown heap {other:?}")),
                });
            }
            "shards" => {
                let n = field
                    .as_u32()
                    .ok_or("\"shards\" must be a non-negative integer")?;
                cfg = cfg.with_shards(n);
            }
            "seed" => {
                let n = field
                    .as_u64()
                    .ok_or("\"seed\" must be a non-negative integer")?;
                cfg = cfg.with_seed(n);
            }
            "warm_start" => {
                let b = field.as_bool().ok_or("\"warm_start\" must be a boolean")?;
                cfg = cfg.with_warm_start(b);
            }
            "parallel" => {
                let b = field.as_bool().ok_or("\"parallel\" must be a boolean")?;
                cfg = cfg.with_parallel(Some(b));
            }
            other => return Err(format!("unknown config key {other:?}")),
        }
    }
    Ok(cfg)
}

/// The JSON document for a session view (shared by open/advance/read).
fn session_json(view: &SessionView) -> JsonValue {
    json::object(vec![
        ("session_id", id_json(view.id)),
        ("now", JsonValue::Number(f64::from(view.now))),
        ("horizon", JsonValue::Number(f64::from(view.horizon))),
        ("exhausted", JsonValue::Bool(view.exhausted)),
        ("events_applied", count_json(view.events_applied)),
        ("replans", JsonValue::Number(f64::from(view.replans))),
        (
            "expected_remaining_revenue",
            JsonValue::Number(view.expected_remaining_revenue),
        ),
        ("realized_revenue", JsonValue::Number(view.realized_revenue)),
        ("suffix", wire::strategy_to_value(&view.suffix)),
    ])
}

/// Registry ids are sequential and far below 2^53, so `f64` is lossless.
fn id_json(id: u64) -> JsonValue {
    JsonValue::Number(id as f64)
}

fn count_json(n: usize) -> JsonValue {
    JsonValue::Number(n as f64)
}

/// Maps a registry refusal to its protocol status:
/// 404 (never issued), 410 (evicted/closed), 429 (backlog),
/// 409 (event conflicts with the session frontier), 422 (event invalid
/// against the instance).
fn registry_error(e: &RegistryError) -> Response {
    match e {
        RegistryError::NotFound => Response::error(404, "unknown id"),
        RegistryError::Gone => Response::error(410, "evicted or closed"),
        RegistryError::PlanBacklog { limit } => {
            Response::error(429, &format!("plan backlog full (limit {limit})"))
        }
        RegistryError::Session(se) => match se {
            SessionError::Event(_) => Response::error(422, &se.to_string()),
            SessionError::NotMonotone { .. }
            | SessionError::BeyondHorizon { .. }
            | SessionError::StaleEvent { .. } => Response::error(409, &se.to_string()),
        },
    }
}

/// Maps a wire decoding failure: 400 for malformed JSON or schema
/// violations, 422 for documents that parse but build an invalid instance.
fn wire_error(e: &WireError) -> Response {
    match e {
        WireError::Json(_) | WireError::Schema { .. } => Response::error(400, &e.to_string()),
        WireError::Build(_) => Response::error(422, &e.to_string()),
    }
}
