//! # revmax-http
//!
//! REVMAX as a service: a dependency-free HTTP/1.1 + JSON front end over
//! the serving layer's [`revmax_serve::PlanService`] /
//! [`revmax_serve::PlanSession`], exposed through the
//! [`revmax_serve::Registry`].
//!
//! Everything is built on the standard library plus the workspace's own
//! JSON codec (`revmax_core::json` / `revmax_core::wire`) — no async
//! runtime, no HTTP framework, no serde. The protocol (endpoints, wire
//! schemas, status-code semantics, backpressure and eviction behaviour,
//! `curl` examples) is documented in `docs/http.md`; the `REVMAX_HTTP_*`
//! environment knobs in `docs/env.md`.
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /instances` | submit an instance → `202` + plan id |
//! | `GET /plans/{id}` | poll (`202`) / fetch (`200`) the plan |
//! | `POST /sessions` | open a replanning session → `201` + suffix |
//! | `POST /sessions/{id}/events` | apply adoption events, replan → `200` |
//! | `GET /sessions/{id}/suffix` | current suffix without advancing |
//! | `DELETE /sessions/{id}` | close the session |
//! | `GET /healthz` · `GET /statsz` | liveness · occupancy counters |
//!
//! The layering keeps every policy testable without sockets: the parser
//! ([`request`]) is a pure function fuzzed by [`fuzz`], dispatch
//! ([`router`]) and the handlers ([`Api`]) map requests to responses
//! in-process, and [`Server`] adds only the listener, the bounded accept
//! queue, and the worker threads (mutex + condvar; the workspace confines
//! atomics to the capacity ledger).
//!
//! ```
//! use revmax_http::{testkit, HttpConfig, Server};
//! use revmax_serve::{PlanService, Registry};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::new(
//!     Arc::new(PlanService::new(2)),
//!     HttpConfig::default().registry,
//! ));
//! let server = Server::start(registry, HttpConfig::default()).unwrap();
//! let (status, body) = testkit::request(server.addr(), "GET", "/healthz", None).unwrap();
//! assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
//! assert!(server.shutdown());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod api;
mod config;
pub mod fuzz;
pub mod request;
pub mod response;
pub mod router;
mod server;
pub mod testkit;

pub use api::Api;
pub use config::HttpConfig;
pub use request::{Limits, Request, RequestError, RequestHead};
pub use response::Response;
pub use router::{route, Route, RouteError};
pub use server::Server;
