//! Item-class assignment with a skewed class-size profile.
//!
//! Table 1 of the paper shows very skewed class sizes for Amazon (largest 1081,
//! median 12, smallest 2 across 94 classes) and mildly skewed ones for Epinions
//! (largest 52, median 27, smallest 10 across 43 classes). We reproduce that
//! shape with a Zipf-like size distribution whose exponent is the
//! `class_skew` knob of [`crate::DatasetConfig`].

use rand::seq::SliceRandom;
use rand::Rng;

/// Generates per-class sizes that sum exactly to `num_items`, following a
/// Zipf(`skew`) profile with every class getting at least one item.
pub fn class_sizes(num_items: u32, num_classes: u32, skew: f64) -> Vec<u32> {
    assert!(num_classes >= 1, "need at least one class");
    assert!(num_items >= num_classes, "need at least one item per class");
    let n = num_classes as usize;
    let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(skew)).collect();
    let total_weight: f64 = weights.iter().sum();
    // Start with one item per class, distribute the remainder proportionally.
    let mut sizes = vec![1u32; n];
    let mut remaining = num_items - num_classes;
    let budget = remaining;
    for (idx, w) in weights.iter().enumerate() {
        let share = ((w / total_weight) * budget as f64).floor() as u32;
        let share = share.min(remaining);
        sizes[idx] += share;
        remaining -= share;
    }
    // Hand out any rounding leftovers to the largest classes first.
    let mut idx = 0;
    while remaining > 0 {
        sizes[idx % n] += 1;
        remaining -= 1;
        idx += 1;
    }
    debug_assert_eq!(sizes.iter().sum::<u32>(), num_items);
    sizes
}

/// Assigns every item to a class according to the generated size profile and
/// shuffles the mapping so class membership is not correlated with item id.
pub fn assign_classes<R: Rng>(
    num_items: u32,
    num_classes: u32,
    skew: f64,
    rng: &mut R,
) -> Vec<u32> {
    let sizes = class_sizes(num_items, num_classes, skew);
    let mut assignment = Vec::with_capacity(num_items as usize);
    for (class, &size) in sizes.iter().enumerate() {
        assignment.extend(std::iter::repeat_n(class as u32, size as usize));
    }
    assignment.shuffle(rng);
    assignment
}

/// Summary statistics of a class assignment: (largest, smallest, median) size.
pub fn class_size_summary(assignment: &[u32]) -> (u32, u32, u32) {
    if assignment.is_empty() {
        return (0, 0, 0);
    }
    let num_classes = assignment.iter().copied().max().unwrap() as usize + 1;
    let mut counts = vec![0u32; num_classes];
    for &c in assignment {
        counts[c as usize] += 1;
    }
    counts.retain(|&c| c > 0);
    counts.sort_unstable();
    let largest = *counts.last().unwrap();
    let smallest = counts[0];
    let median = counts[counts.len() / 2];
    (largest, smallest, median)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_sum_to_item_count_and_are_positive() {
        for (items, classes, skew) in [(4_200u32, 94u32, 1.05f64), (1_100, 43, 0.35), (20, 5, 0.8)]
        {
            let sizes = class_sizes(items, classes, skew);
            assert_eq!(sizes.len(), classes as usize);
            assert_eq!(sizes.iter().sum::<u32>(), items);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn higher_skew_gives_larger_top_class() {
        let flat = class_sizes(1000, 50, 0.0);
        let skewed = class_sizes(1000, 50, 1.2);
        assert!(skewed.iter().max() > flat.iter().max());
    }

    #[test]
    fn amazon_like_profile_is_heavily_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let assignment = assign_classes(4_200, 94, 1.05, &mut rng);
        let (largest, smallest, median) = class_size_summary(&assignment);
        // Matches the order of magnitude of Table 1 (1081 / 2 / 12): a few
        // hundred items in the largest class, a single-digit tail, a small median.
        assert!(largest > 400, "largest class {largest} too small");
        assert!(smallest <= 12, "smallest class {smallest} too large");
        assert!(median < 40, "median class size {median} too large");
        assert!(
            largest > 10 * median,
            "profile not skewed enough: {largest} vs median {median}"
        );
    }

    #[test]
    fn assignment_covers_every_class() {
        let mut rng = StdRng::seed_from_u64(2);
        let assignment = assign_classes(200, 10, 0.5, &mut rng);
        assert_eq!(assignment.len(), 200);
        let mut seen = [false; 10];
        for &c in &assignment {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn summary_of_empty_assignment() {
        assert_eq!(class_size_summary(&[]), (0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one item per class")]
    fn too_many_classes_panics() {
        class_sizes(3, 10, 1.0);
    }
}
