//! Dataset statistics in the format of Table 1 of the paper.

use crate::classes::class_size_summary;
use crate::pipeline::GeneratedDataset;
use revmax_core::{Instance, ItemId};
use std::fmt;

/// One row of Table 1: the headline statistics of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Stats {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub users: u32,
    /// Number of items.
    pub items: u32,
    /// Number of observed ratings (0 for the synthetic scalability data).
    pub ratings: u64,
    /// Number of candidate triples with positive adoption probability
    /// (the true input size).
    pub positive_triples: usize,
    /// Number of item classes.
    pub classes: u32,
    /// Largest class size.
    pub largest_class: u32,
    /// Smallest class size.
    pub smallest_class: u32,
    /// Median class size.
    pub median_class: u32,
}

impl Table1Stats {
    /// Computes the statistics of a generated dataset.
    pub fn from_dataset(ds: &GeneratedDataset) -> Self {
        Self::from_instance(&ds.config.name, &ds.instance, ds.num_ratings)
    }

    /// Computes the statistics directly from an instance.
    pub fn from_instance(name: &str, inst: &Instance, ratings: u64) -> Self {
        let assignment: Vec<u32> = (0..inst.num_items())
            .map(|i| inst.class_of(ItemId(i)).0)
            .collect();
        let (largest, smallest, median) = class_size_summary(&assignment);
        Table1Stats {
            name: name.to_string(),
            users: inst.num_users(),
            items: inst.num_items(),
            ratings,
            positive_triples: inst.num_candidate_triples(),
            classes: inst.num_classes(),
            largest_class: largest,
            smallest_class: smallest,
            median_class: median,
        }
    }

    /// Header row matching the [`fmt::Display`] output of the stats.
    pub fn header() -> String {
        format!(
            "{:<22} {:>9} {:>9} {:>11} {:>16} {:>8} {:>8} {:>9} {:>8}",
            "dataset",
            "#users",
            "#items",
            "#ratings",
            "#triples(q>0)",
            "#classes",
            "largest",
            "smallest",
            "median"
        )
    }
}

impl fmt::Display for Table1Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>9} {:>9} {:>11} {:>16} {:>8} {:>8} {:>9} {:>8}",
            self.name,
            self.users,
            self.items,
            self.ratings,
            self.positive_triples,
            self.classes,
            self.largest_class,
            self.smallest_class,
            self.median_class
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;
    use crate::pipeline::generate;

    #[test]
    fn stats_reflect_generated_dataset() {
        let ds = generate(&DatasetConfig::tiny());
        let stats = Table1Stats::from_dataset(&ds);
        assert_eq!(stats.users, 30);
        assert_eq!(stats.items, 20);
        assert_eq!(stats.positive_triples, ds.positive_triples());
        assert!(stats.classes <= 5);
        assert!(stats.largest_class >= stats.median_class);
        assert!(stats.median_class >= stats.smallest_class);
        assert!(stats.smallest_class >= 1);
    }

    #[test]
    fn display_lines_align_with_header() {
        let ds = generate(&DatasetConfig::tiny());
        let stats = Table1Stats::from_dataset(&ds);
        let header = Table1Stats::header();
        let row = stats.to_string();
        assert_eq!(header.split_whitespace().count(), 9);
        assert!(row.contains("tiny"));
        assert!(row.split_whitespace().count() >= 9);
    }
}
