//! # revmax-data
//!
//! Synthetic dataset generators standing in for the crawled Amazon and
//! Epinions datasets of the REVMAX paper, plus the large synthetic datasets of
//! the scalability study.
//!
//! The crawls themselves cannot be redistributed; what the evaluation actually
//! consumes is (a) predicted ratings from a recommender, (b) per-day prices,
//! (c) item classes, and (d) valuation distributions. The generators here
//! produce all four with the same statistical shape as Table 1 of the paper
//! (user/item/rating counts, class-size skew) and run them through exactly the
//! preparation pipeline of §6.1: matrix factorization → top-N items per user →
//! `q(u,i,t) = Pr[val ≥ p(i,t)] · r̂ / r_max`.
//!
//! Entry points:
//!
//! * [`DatasetConfig`] — presets [`DatasetConfig::amazon_like`],
//!   [`DatasetConfig::epinions_like`], [`DatasetConfig::synthetic_scalability`],
//!   [`DatasetConfig::tiny`], and [`DatasetConfig::scaled`] for laptop-scale runs;
//! * [`generate`] — the full (MF + valuation) pipeline;
//! * [`generate_scalability`] — the direct-sampling pipeline of Figure 6;
//! * [`Table1Stats`] — Table-1 style statistics of a generated dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classes;
pub mod config;
pub mod pipeline;
pub mod prices;
pub mod ratings_gen;
pub mod stats;

pub use classes::{assign_classes, class_size_summary, class_sizes};
pub use config::{BetaSampler, BetaSetting, CapacityDistribution, DatasetConfig};
pub use pipeline::{generate, generate_scalability, GeneratedDataset};
pub use prices::{
    amazon_style_series, base_price, epinions_style_series, reported_price_samples,
    synthetic_series,
};
pub use ratings_gen::{generate_ratings, GroundTruthPreferences};
pub use stats::Table1Stats;
