//! Price-series generation.
//!
//! The Amazon preparation of §6.1 records one price per item per day over a
//! week; prices fluctuate daily and occasionally drop for a sale (the
//! motivation of the dynamic model in §1). The Epinions preparation instead
//! collects user-reported price samples and samples a weekly series from the
//! KDE fitted to them. Both paths are reproduced here.

use rand::Rng;
use revmax_pricing::GaussianKde;

/// Draws an item base price log-uniformly from `[lo, hi]`.
pub fn base_price<R: Rng>(range: (f64, f64), rng: &mut R) -> f64 {
    let (lo, hi) = range;
    assert!(lo > 0.0 && hi > lo, "price range must satisfy 0 < lo < hi");
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    rng.gen_range(log_lo..log_hi).exp()
}

/// Generates a per-day price series of length `horizon` around a base price:
/// multiplicative daily noise of `±noise`, plus an occasional sale that lasts
/// one day and cuts the price by `sale_depth`.
pub fn amazon_style_series<R: Rng>(
    base: f64,
    horizon: u32,
    noise: f64,
    sale_probability: f64,
    sale_depth: f64,
    rng: &mut R,
) -> Vec<f64> {
    (0..horizon)
        .map(|_| {
            let wiggle = 1.0 + rng.gen_range(-noise..=noise);
            let sale = if rng.gen_bool(sale_probability.clamp(0.0, 1.0)) {
                1.0 - sale_depth.clamp(0.0, 0.95)
            } else {
                1.0
            };
            (base * wiggle * sale).max(0.01)
        })
        .collect()
}

/// Generates `n` "user-reported" price samples around a base price (the raw
/// material of the Epinions/KDE path): sellers differ, so reported prices
/// scatter by `spread` relative standard deviation.
pub fn reported_price_samples<R: Rng>(base: f64, n: usize, spread: f64, rng: &mut R) -> Vec<f64> {
    (0..n.max(2))
        .map(|_| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (base * (1.0 + spread * z)).max(0.01)
        })
        .collect()
}

/// The Epinions path of §6.1: fit a KDE to reported prices and sample a
/// `horizon`-day price series from it.
pub fn epinions_style_series<R: Rng>(reported: &[f64], horizon: u32, rng: &mut R) -> Vec<f64> {
    let kde = GaussianKde::fit(reported);
    kde.sample_series(horizon as usize, 0.01, rng)
}

/// The scalability-synthetic path of §6.1: pick `x_i` uniformly from the price
/// range and draw each `p(i, t)` uniformly from `[x_i, 2 x_i]`.
pub fn synthetic_series<R: Rng>(range: (f64, f64), horizon: u32, rng: &mut R) -> Vec<f64> {
    let x = rng.gen_range(range.0..=range.1);
    (0..horizon).map(|_| rng.gen_range(x..=2.0 * x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_price_respects_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = base_price((10.0, 500.0), &mut rng);
            assert!((10.0..=500.0).contains(&p));
        }
    }

    #[test]
    fn log_uniform_prefers_lower_decades() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..5000)
            .map(|_| base_price((10.0, 1000.0), &mut rng))
            .collect();
        let below_100 = samples.iter().filter(|&&p| p < 100.0).count();
        // Log-uniform on [10, 1000]: half the mass below 100.
        assert!((below_100 as f64 / 5000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn amazon_series_has_right_length_and_stays_near_base() {
        let mut rng = StdRng::seed_from_u64(3);
        let series = amazon_style_series(100.0, 7, 0.05, 0.0, 0.3, &mut rng);
        assert_eq!(series.len(), 7);
        assert!(series.iter().all(|&p| (90.0..=110.0).contains(&p)));
    }

    #[test]
    fn sales_actually_reduce_prices() {
        let mut rng = StdRng::seed_from_u64(4);
        let series = amazon_style_series(100.0, 2000, 0.0, 0.5, 0.4, &mut rng);
        let discounted = series.iter().filter(|&&p| p < 70.0).count();
        assert!(
            discounted > 500,
            "expected many sale days, got {discounted}"
        );
        let full_price = series.iter().filter(|&&p| p > 99.0).count();
        assert!(full_price > 500);
    }

    #[test]
    fn reported_samples_scatter_around_base() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples = reported_price_samples(200.0, 50, 0.1, &mut rng);
        assert_eq!(samples.len(), 50);
        let mean = samples.iter().sum::<f64>() / 50.0;
        assert!((mean - 200.0).abs() < 20.0);
        assert!(samples.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn epinions_series_tracks_reported_prices() {
        let mut rng = StdRng::seed_from_u64(6);
        let reported = reported_price_samples(80.0, 30, 0.08, &mut rng);
        let series = epinions_style_series(&reported, 7, &mut rng);
        assert_eq!(series.len(), 7);
        assert!(series.iter().all(|&p| p > 0.0 && p < 200.0));
    }

    #[test]
    fn synthetic_series_in_xi_to_two_xi() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let series = synthetic_series((10.0, 500.0), 5, &mut rng);
            assert_eq!(series.len(), 5);
            let max = series.iter().cloned().fold(0.0, f64::max);
            let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(max <= 2.0 * min + 1e-9 || min >= 10.0);
            assert!(min >= 10.0 && max <= 1000.0);
        }
    }

    #[test]
    #[should_panic(expected = "price range")]
    fn invalid_price_range_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        base_price((0.0, 10.0), &mut rng);
    }
}
