//! Configuration of the synthetic dataset generators.
//!
//! The paper evaluates on two crawled datasets (Amazon Electronics and
//! Epinions) plus a family of large synthetic datasets. We cannot redistribute
//! the crawls, so the generators in this crate produce datasets with the same
//! *shape*: the user/item/rating counts and class-size profile of Table 1, a
//! per-day price series over a one-week horizon, and adoption probabilities
//! derived exactly as in §6.1 (matrix factorization → top-N per user →
//! valuation-based adoption probability). See DESIGN.md for the substitution
//! rationale.

use rand::Rng;

/// How the per-item saturation factors `β_i` are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaSetting {
    /// A single value shared by every item (the paper tests 0.1, 0.5, 0.9).
    Fixed(f64),
    /// Independent uniform draws from `[0, 1]` (the paper's "unknown β" case).
    UniformRandom,
    /// One uniform draw **per item class**, shared by every item of the
    /// class. Classes then qualify for the flat engine's saturation-aggregate
    /// fast path (`revmax_core::BetaProfile::Uniform`) while still differing
    /// from each other — the shape the aggregate-vs-walk bench rows measure.
    PerClassRandom,
}

impl BetaSetting {
    /// Samples a saturation factor for one item **without class context**:
    /// [`BetaSetting::PerClassRandom`] degenerates to an independent draw
    /// here. The generator pipelines use a [`BetaSampler`] instead, which
    /// gives all items of one class the same draw.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match self {
            BetaSetting::Fixed(b) => b.clamp(0.0, 1.0),
            BetaSetting::UniformRandom | BetaSetting::PerClassRandom => rng.gen_range(0.0..=1.0),
        }
    }
}

/// Stateful sampler for per-item saturation factors that keeps
/// [`BetaSetting::PerClassRandom`] coherent: the first item of each class
/// draws the class's `β`, later items reuse it bit-exactly.
#[derive(Debug)]
pub struct BetaSampler {
    setting: BetaSetting,
    per_class: Vec<Option<f64>>,
}

impl BetaSampler {
    /// A sampler for `num_classes` classes under `setting`.
    pub fn new(setting: BetaSetting, num_classes: u32) -> Self {
        BetaSampler {
            setting,
            per_class: vec![None; num_classes as usize],
        }
    }

    /// Samples the saturation factor of one item given its class label.
    pub fn sample_for<R: Rng>(&mut self, class: u32, rng: &mut R) -> f64 {
        match self.setting {
            BetaSetting::PerClassRandom => {
                *self.per_class[class as usize].get_or_insert_with(|| rng.gen_range(0.0..=1.0))
            }
            other => other.sample(rng),
        }
    }
}

/// Distribution from which per-item capacities `q_i` are sampled (§6.1 tests
/// Gaussian, exponential, power-law, and uniform item-capacity profiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityDistribution {
    /// Normal with the given mean and standard deviation.
    Gaussian {
        /// Mean capacity.
        mean: f64,
        /// Standard deviation of the capacity.
        std: f64,
    },
    /// Exponential with the given mean (inverse rate).
    Exponential {
        /// Mean capacity.
        mean: f64,
    },
    /// Pareto / power-law with minimum value and shape `alpha`.
    PowerLaw {
        /// Minimum capacity.
        min: f64,
        /// Tail exponent (larger = lighter tail).
        alpha: f64,
    },
    /// Uniform over `[min, max]`.
    Uniform {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
}

impl CapacityDistribution {
    /// Samples one capacity value (at least 1).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let value = match *self {
            CapacityDistribution::Gaussian { mean, std } => {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std * z
            }
            CapacityDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            CapacityDistribution::PowerLaw { min, alpha } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                min * u.powf(-1.0 / alpha)
            }
            CapacityDistribution::Uniform { min, max } => rng.gen_range(min..=max),
        };
        value.round().max(1.0) as u32
    }
}

/// Full configuration of a generated dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// Number of users `|U|`.
    pub num_users: u32,
    /// Number of items `|I|`.
    pub num_items: u32,
    /// Number of item classes.
    pub num_classes: u32,
    /// Skew of the class-size distribution (1.0 ≈ Zipf; 0.0 = uniform).
    pub class_skew: f64,
    /// Target number of observed ratings.
    pub num_ratings: u64,
    /// Time horizon `T` (days).
    pub horizon: u32,
    /// Display limit `k` (items per user per day).
    pub display_limit: u32,
    /// Number of top-rated items per user that become candidates
    /// (the paper uses 100).
    pub candidates_per_user: u32,
    /// Range of item base prices (log-uniform).
    pub price_range: (f64, f64),
    /// Per-day multiplicative price noise (e.g. 0.05 = ±5 %).
    pub daily_price_noise: f64,
    /// Probability that an item runs a sale on a given day.
    pub sale_probability: f64,
    /// Relative depth of a sale (e.g. 0.3 = 30 % off).
    pub sale_depth: f64,
    /// Number of latent factors of the ground-truth preference model.
    pub latent_factors: usize,
    /// Observation noise of generated ratings.
    pub rating_noise: f64,
    /// Saturation-factor setting.
    pub beta: BetaSetting,
    /// Capacity distribution.
    pub capacity: CapacityDistribution,
    /// Matrix-factorization training configuration used in the pipeline.
    pub mf: revmax_recsys::MfConfig,
    /// Master RNG seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// A dataset shaped like the paper's Amazon Electronics crawl (Table 1):
    /// 23.0K users, 4.2K items, 681K ratings, 94 classes, T = 7.
    pub fn amazon_like() -> Self {
        DatasetConfig {
            name: "amazon-like".to_string(),
            num_users: 23_000,
            num_items: 4_200,
            num_classes: 94,
            class_skew: 1.05,
            num_ratings: 681_000,
            horizon: 7,
            display_limit: 3,
            candidates_per_user: 100,
            price_range: (15.0, 600.0),
            daily_price_noise: 0.04,
            sale_probability: 0.1,
            sale_depth: 0.3,
            latent_factors: 8,
            rating_noise: 0.4,
            beta: BetaSetting::UniformRandom,
            capacity: CapacityDistribution::Gaussian {
                mean: 5000.0,
                std: 300.0,
            },
            mf: revmax_recsys::MfConfig {
                factors: 16,
                epochs: 15,
                ..Default::default()
            },
            seed: 20140814,
        }
    }

    /// A dataset shaped like the paper's Epinions crawl (Table 1): 21.3K users,
    /// 1.1K items, 32.9K ratings (ultra sparse), 43 classes, T = 7.
    pub fn epinions_like() -> Self {
        DatasetConfig {
            name: "epinions-like".to_string(),
            num_users: 21_300,
            num_items: 1_100,
            num_classes: 43,
            class_skew: 0.35,
            num_ratings: 32_900,
            horizon: 7,
            display_limit: 3,
            candidates_per_user: 100,
            price_range: (10.0, 400.0),
            daily_price_noise: 0.06,
            sale_probability: 0.08,
            sale_depth: 0.25,
            latent_factors: 8,
            rating_noise: 0.7,
            beta: BetaSetting::UniformRandom,
            capacity: CapacityDistribution::Gaussian {
                mean: 5000.0,
                std: 200.0,
            },
            mf: revmax_recsys::MfConfig {
                factors: 16,
                epochs: 20,
                ..Default::default()
            },
            seed: 20140815,
        }
    }

    /// Scales users, items, classes, and ratings by `factor` (used to run the
    /// full experiment suite at laptop scale while preserving the shape).
    pub fn scaled(&self, factor: f64) -> Self {
        let f = factor.max(1e-3);
        let mut scaled = self.clone();
        scaled.name = format!("{}-x{:.2}", self.name, f);
        scaled.num_users = ((self.num_users as f64 * f).round() as u32).max(10);
        scaled.num_items = ((self.num_items as f64 * f).round() as u32).max(10);
        scaled.num_classes =
            ((self.num_classes as f64 * f.sqrt()).round() as u32).clamp(2, scaled.num_items);
        scaled.num_ratings = ((self.num_ratings as f64 * f * f).round() as u64).max(100);
        scaled.candidates_per_user = self.candidates_per_user.min(scaled.num_items).max(1);
        // Capacities scale with the user base so constraints stay comparable.
        scaled.capacity = match self.capacity {
            CapacityDistribution::Gaussian { mean, std } => CapacityDistribution::Gaussian {
                mean: (mean * f).max(2.0),
                std: (std * f).max(1.0),
            },
            CapacityDistribution::Exponential { mean } => CapacityDistribution::Exponential {
                mean: (mean * f).max(2.0),
            },
            CapacityDistribution::PowerLaw { min, alpha } => CapacityDistribution::PowerLaw {
                min: (min * f).max(1.0),
                alpha,
            },
            CapacityDistribution::Uniform { min, max } => CapacityDistribution::Uniform {
                min: (min * f).max(1.0),
                max: (max * f).max(2.0),
            },
        };
        scaled
    }

    /// The scalability synthetic dataset of §6.1: `num_users` users, 20K items,
    /// 500 classes, 100 candidate items per user, `T = 5`, adoption
    /// probabilities sampled directly (no MF pipeline).
    pub fn synthetic_scalability(num_users: u32) -> Self {
        DatasetConfig {
            name: format!("synthetic-{}k", num_users / 1000),
            num_users,
            num_items: 20_000,
            num_classes: 500,
            class_skew: 0.2,
            num_ratings: 0,
            horizon: 5,
            display_limit: 3,
            candidates_per_user: 100,
            price_range: (10.0, 500.0),
            daily_price_noise: 0.0,
            sale_probability: 0.0,
            sale_depth: 0.0,
            latent_factors: 0,
            rating_noise: 0.0,
            beta: BetaSetting::UniformRandom,
            capacity: CapacityDistribution::Gaussian {
                mean: 5000.0,
                std: 300.0,
            },
            mf: revmax_recsys::MfConfig::default(),
            seed: 20140816,
        }
    }

    /// A tiny configuration suitable for unit tests and doc examples.
    pub fn tiny() -> Self {
        DatasetConfig {
            name: "tiny".to_string(),
            num_users: 30,
            num_items: 20,
            num_classes: 5,
            class_skew: 0.8,
            num_ratings: 400,
            horizon: 4,
            display_limit: 2,
            candidates_per_user: 8,
            price_range: (10.0, 100.0),
            daily_price_noise: 0.05,
            sale_probability: 0.2,
            sale_depth: 0.3,
            latent_factors: 4,
            rating_noise: 0.3,
            beta: BetaSetting::UniformRandom,
            capacity: CapacityDistribution::Gaussian {
                mean: 15.0,
                std: 3.0,
            },
            mf: revmax_recsys::MfConfig {
                factors: 4,
                epochs: 10,
                ..Default::default()
            },
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_setting_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let b = BetaSetting::UniformRandom.sample(&mut rng);
            assert!((0.0..=1.0).contains(&b));
        }
        assert_eq!(BetaSetting::Fixed(0.5).sample(&mut rng), 0.5);
        assert_eq!(BetaSetting::Fixed(2.0).sample(&mut rng), 1.0);
    }

    #[test]
    fn capacity_distributions_sample_positive_integers() {
        let mut rng = StdRng::seed_from_u64(2);
        let dists = [
            CapacityDistribution::Gaussian {
                mean: 50.0,
                std: 10.0,
            },
            CapacityDistribution::Exponential { mean: 50.0 },
            CapacityDistribution::PowerLaw {
                min: 5.0,
                alpha: 2.0,
            },
            CapacityDistribution::Uniform {
                min: 1.0,
                max: 100.0,
            },
        ];
        for d in dists {
            let samples: Vec<u32> = (0..500).map(|_| d.sample(&mut rng)).collect();
            assert!(samples.iter().all(|&c| c >= 1));
            let mean = samples.iter().map(|&c| c as f64).sum::<f64>() / samples.len() as f64;
            assert!(mean > 1.0, "mean capacity for {d:?} suspiciously small");
        }
    }

    #[test]
    fn gaussian_capacity_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = CapacityDistribution::Gaussian {
            mean: 5000.0,
            std: 300.0,
        };
        let samples: Vec<u32> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().map(|&c| c as f64).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5000.0).abs() < 50.0);
    }

    #[test]
    fn presets_match_table1_shapes() {
        let amazon = DatasetConfig::amazon_like();
        assert_eq!(amazon.num_users, 23_000);
        assert_eq!(amazon.num_items, 4_200);
        assert_eq!(amazon.num_classes, 94);
        assert_eq!(amazon.horizon, 7);
        let epinions = DatasetConfig::epinions_like();
        assert_eq!(epinions.num_users, 21_300);
        assert_eq!(epinions.num_items, 1_100);
        assert_eq!(epinions.num_classes, 43);
        let synth = DatasetConfig::synthetic_scalability(100_000);
        assert_eq!(synth.num_items, 20_000);
        assert_eq!(synth.num_classes, 500);
        assert_eq!(synth.horizon, 5);
    }

    #[test]
    fn scaled_preserves_shape_and_shrinks_counts() {
        let base = DatasetConfig::amazon_like();
        let small = base.scaled(0.01);
        assert!(small.num_users < base.num_users);
        assert!(small.num_items < base.num_items);
        assert!(small.num_classes >= 2);
        assert!(small.candidates_per_user <= small.num_items);
        assert!(small.name.contains("amazon"));
        match small.capacity {
            CapacityDistribution::Gaussian { mean, .. } => assert!(mean < 5000.0),
            _ => panic!("capacity family should be preserved"),
        }
    }
}
