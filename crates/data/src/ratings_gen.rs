//! Synthetic rating generation from a low-rank ground-truth preference model.
//!
//! The crawled datasets provide real ratings; our substitute generates them
//! from latent user/item factors (so that matrix factorization — the substrate
//! the paper trains — can actually recover structure), with item popularity
//! skew and observation noise controlling sparsity and difficulty.

use rand::Rng;
use revmax_recsys::RatingSet;
use std::collections::HashSet;

/// A dense low-rank ground-truth preference model.
#[derive(Debug, Clone)]
pub struct GroundTruthPreferences {
    factors: usize,
    user_latent: Vec<f64>,
    item_latent: Vec<f64>,
    num_users: u32,
    num_items: u32,
}

impl GroundTruthPreferences {
    /// Samples a ground-truth model with the given number of latent factors.
    pub fn generate<R: Rng>(num_users: u32, num_items: u32, factors: usize, rng: &mut R) -> Self {
        let f = factors.max(1);
        let scale = (1.0 / f as f64).sqrt();
        let user_latent = (0..num_users as usize * f)
            .map(|_| rng.gen_range(-1.0..1.0) * scale * 2.0)
            .collect();
        let item_latent = (0..num_items as usize * f)
            .map(|_| rng.gen_range(-1.0..1.0) * scale * 2.0)
            .collect();
        GroundTruthPreferences {
            factors: f,
            user_latent,
            item_latent,
            num_users,
            num_items,
        }
    }

    /// The noiseless rating a user would give an item, on a 1–5 scale.
    pub fn true_rating(&self, user: u32, item: u32) -> f64 {
        let f = self.factors;
        let u = user as usize;
        let i = item as usize;
        let mut dot = 0.0;
        for k in 0..f {
            dot += self.user_latent[u * f + k] * self.item_latent[i * f + k];
        }
        (3.0 + 1.8 * dot).clamp(1.0, 5.0)
    }

    /// Number of users in the model.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items in the model.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }
}

/// Generates roughly `num_ratings` observed ratings: items are picked with a
/// Zipf-ish popularity skew, users uniformly, duplicates are skipped, and the
/// true rating is perturbed with `noise` and rounded to half stars.
pub fn generate_ratings<R: Rng>(
    prefs: &GroundTruthPreferences,
    num_ratings: u64,
    noise: f64,
    rng: &mut R,
) -> RatingSet {
    let num_users = prefs.num_users();
    let num_items = prefs.num_items();
    let mut ratings = RatingSet::new(num_users, num_items);
    if num_users == 0 || num_items == 0 {
        return ratings;
    }
    // Popularity weights ∝ 1 / rank^0.8, assigned to a random permutation of items.
    let mut item_order: Vec<u32> = (0..num_items).collect();
    for idx in (1..item_order.len()).rev() {
        let j = rng.gen_range(0..=idx);
        item_order.swap(idx, j);
    }
    let weights: Vec<f64> = (1..=num_items as usize)
        .map(|r| 1.0 / (r as f64).powf(0.8))
        .collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().unwrap();

    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let max_attempts = num_ratings.saturating_mul(4).max(16);
    let mut attempts = 0u64;
    while (ratings.len() as u64) < num_ratings && attempts < max_attempts {
        attempts += 1;
        let user = rng.gen_range(0..num_users);
        let draw = rng.gen_range(0.0..total_weight);
        let rank = cumulative
            .partition_point(|&c| c < draw)
            .min(num_items as usize - 1);
        let item = item_order[rank];
        if !seen.insert((user, item)) {
            continue;
        }
        let value = prefs.true_rating(user, item) + rng.gen_range(-noise..=noise);
        let value = (value * 2.0).round() / 2.0; // half-star granularity
        ratings.push(user, item, value.clamp(1.0, 5.0));
    }
    ratings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn true_ratings_stay_on_the_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let prefs = GroundTruthPreferences::generate(50, 30, 6, &mut rng);
        for u in 0..50 {
            for i in 0..30 {
                let r = prefs.true_rating(u, i);
                assert!((1.0..=5.0).contains(&r));
            }
        }
    }

    #[test]
    fn generated_ratings_hit_the_target_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let prefs = GroundTruthPreferences::generate(100, 60, 4, &mut rng);
        let ratings = generate_ratings(&prefs, 1500, 0.3, &mut rng);
        assert!(ratings.len() >= 1400, "only generated {}", ratings.len());
        assert!(ratings
            .ratings()
            .iter()
            .all(|r| (1.0..=5.0).contains(&r.value)));
    }

    #[test]
    fn ratings_have_popularity_skew() {
        let mut rng = StdRng::seed_from_u64(3);
        let prefs = GroundTruthPreferences::generate(300, 100, 4, &mut rng);
        let ratings = generate_ratings(&prefs, 4000, 0.3, &mut rng);
        let mut counts = ratings.item_rating_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = counts.iter().take(10).sum();
        let bottom50: u32 = counts.iter().rev().take(50).sum();
        assert!(
            top10 > bottom50,
            "popular items ({top10}) should gather more ratings than the tail ({bottom50})"
        );
    }

    #[test]
    fn no_duplicate_user_item_pairs() {
        let mut rng = StdRng::seed_from_u64(4);
        let prefs = GroundTruthPreferences::generate(20, 15, 4, &mut rng);
        let ratings = generate_ratings(&prefs, 200, 0.2, &mut rng);
        let mut seen = HashSet::new();
        for r in ratings.ratings() {
            assert!(
                seen.insert((r.user, r.item)),
                "duplicate pair ({}, {})",
                r.user,
                r.item
            );
        }
    }

    #[test]
    fn degenerate_universe_yields_empty_set() {
        let mut rng = StdRng::seed_from_u64(5);
        let prefs = GroundTruthPreferences::generate(0, 0, 4, &mut rng);
        let ratings = generate_ratings(&prefs, 100, 0.2, &mut rng);
        assert!(ratings.is_empty());
    }
}
