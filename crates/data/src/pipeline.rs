//! End-to-end dataset construction: from configuration to a ready-to-optimize
//! [`revmax_core::Instance`].
//!
//! Two pipelines are provided, mirroring §6.1 of the paper:
//!
//! * [`generate`] — the real-data pipeline: generate ratings, train matrix
//!   factorization, keep the top-N predicted items per user, derive per-item
//!   valuation distributions from (reported) price samples, and convert
//!   predicted ratings + prices into primitive adoption probabilities;
//! * [`generate_scalability`] — the synthetic pipeline used for the
//!   scalability study (Figure 6): adoption probabilities are sampled directly
//!   and matched to prices so that anti-monotonicity holds, skipping MF.

use crate::classes::assign_classes;
use crate::config::DatasetConfig;
use crate::prices::{amazon_style_series, base_price, reported_price_samples, synthetic_series};
use crate::ratings_gen::{generate_ratings, GroundTruthPreferences};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use revmax_core::{Instance, InstanceBuilder};
use revmax_pricing::{adoption_series, GaussianValuation};
use revmax_recsys::{MatrixFactorization, RatingSet};

/// A generated dataset: the optimization instance plus provenance information.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The configuration the dataset was generated from.
    pub config: DatasetConfig,
    /// The REVMAX instance ready to be optimized.
    pub instance: Instance,
    /// Number of observed ratings fed to the recommender substrate.
    pub num_ratings: u64,
    /// Hold-out RMSE of the trained MF model (NaN for the scalability pipeline,
    /// which skips MF entirely).
    pub mf_rmse: f64,
}

impl GeneratedDataset {
    /// Number of candidate triples with positive adoption probability — the
    /// "true input size" of Table 1.
    pub fn positive_triples(&self) -> usize {
        self.instance.num_candidate_triples()
    }
}

/// Runs the full real-data-style pipeline for the given configuration.
pub fn generate(config: &DatasetConfig) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let classes = assign_classes(
        config.num_items,
        config.num_classes,
        config.class_skew,
        &mut rng,
    );

    // 1. Ratings from a ground-truth low-rank preference model.
    let prefs = GroundTruthPreferences::generate(
        config.num_users,
        config.num_items,
        config.latent_factors,
        &mut rng,
    );
    let ratings = generate_ratings(&prefs, config.num_ratings, config.rating_noise, &mut rng);

    // 2. Matrix factorization on a train split, RMSE on the hold-out.
    let (train, test) = ratings.split(0.1, &mut rng);
    let model = MatrixFactorization::train(&train, &config.mf);
    let mf_rmse = model.evaluate_rmse(&test);

    // 3. Prices and valuations per item.
    let mut price_series = Vec::with_capacity(config.num_items as usize);
    let mut valuations = Vec::with_capacity(config.num_items as usize);
    for _item in 0..config.num_items {
        let base = base_price(config.price_range, &mut rng);
        let series = amazon_style_series(
            base,
            config.horizon,
            config.daily_price_noise,
            config.sale_probability,
            config.sale_depth,
            &mut rng,
        );
        // Reported price samples play the role of the Epinions price reports:
        // they determine the valuation distribution of the item's buyers.
        let reported = reported_price_samples(base, 25, 0.12, &mut rng);
        valuations.push(GaussianValuation::from_samples(&reported));
        price_series.push(series);
    }

    build_instance(
        config,
        &classes,
        &price_series,
        &valuations,
        &model,
        &ratings,
        mf_rmse,
        &mut rng,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_instance(
    config: &DatasetConfig,
    classes: &[u32],
    price_series: &[Vec<f64>],
    valuations: &[GaussianValuation],
    model: &MatrixFactorization,
    ratings: &RatingSet,
    mf_rmse: f64,
    rng: &mut StdRng,
) -> GeneratedDataset {
    let mut builder = InstanceBuilder::new(config.num_users, config.num_items, config.horizon);
    builder.display_limit(config.display_limit);
    let mut betas = crate::config::BetaSampler::new(config.beta, config.num_classes);
    for item in 0..config.num_items {
        builder.item_class(item, classes[item as usize]);
        builder.beta(item, betas.sample_for(classes[item as usize], rng));
        builder.capacity(item, config.capacity.sample(rng));
        builder.prices(item, &price_series[item as usize]);
    }

    let max_rating = if model.max_rating().is_finite() {
        model.max_rating()
    } else {
        5.0
    };
    for user in 0..config.num_users {
        let top = model.top_n_for_user(user, config.candidates_per_user as usize);
        for (item, predicted) in top {
            let probs = adoption_series(
                &valuations[item as usize],
                predicted,
                max_rating,
                &price_series[item as usize],
            );
            if probs.iter().any(|&p| p > 0.0) {
                builder.candidate(user, item, &probs, predicted);
            }
        }
    }

    let instance = builder
        .build()
        .expect("generated dataset must be a valid instance");
    GeneratedDataset {
        config: config.clone(),
        instance,
        num_ratings: ratings.len() as u64,
        mf_rmse,
    }
}

/// Runs the scalability pipeline of §6.1 (used for Figure 6): adoption
/// probabilities are drawn directly and matched to prices so that cheaper days
/// have higher adoption probability.
pub fn generate_scalability(config: &DatasetConfig) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let classes = assign_classes(
        config.num_items,
        config.num_classes,
        config.class_skew,
        &mut rng,
    );

    let mut builder = InstanceBuilder::new(config.num_users, config.num_items, config.horizon);
    builder.display_limit(config.display_limit);
    let mut betas = crate::config::BetaSampler::new(config.beta, config.num_classes);
    let mut price_series = Vec::with_capacity(config.num_items as usize);
    let mut attractiveness = Vec::with_capacity(config.num_items as usize);
    for item in 0..config.num_items {
        builder.item_class(item, classes[item as usize]);
        builder.beta(item, betas.sample_for(classes[item as usize], &mut rng));
        builder.capacity(item, config.capacity.sample(&mut rng));
        let series = synthetic_series(config.price_range, config.horizon, &mut rng);
        builder.prices(item, &series);
        price_series.push(series);
        attractiveness.push(rng.gen_range(0.0..1.0_f64));
    }

    let t = config.horizon as usize;
    let mut item_pool: Vec<u32> = (0..config.num_items).collect();
    for user in 0..config.num_users {
        item_pool.shuffle(&mut rng);
        for &item in item_pool.iter().take(config.candidates_per_user as usize) {
            let y = attractiveness[item as usize];
            // T adoption probability draws around the item attractiveness.
            let mut probs: Vec<f64> = (0..t)
                .map(|_| {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (y + 0.1_f64.sqrt() * z).clamp(0.0, 1.0)
                })
                .collect();
            // Match probabilities to prices so anti-monotonicity holds:
            // the cheapest day gets the largest probability.
            let prices = &price_series[item as usize];
            let mut price_order: Vec<usize> = (0..t).collect();
            price_order.sort_by(|&a, &b| prices[a].partial_cmp(&prices[b]).unwrap());
            probs.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut matched = vec![0.0; t];
            for (rank, &day) in price_order.iter().enumerate() {
                matched[day] = probs[rank];
            }
            if matched.iter().any(|&p| p > 0.0) {
                builder.candidate(user, item, &matched, y * 5.0);
            }
        }
    }

    let instance = builder
        .build()
        .expect("scalability dataset must be a valid instance");
    GeneratedDataset {
        config: config.clone(),
        instance,
        num_ratings: 0,
        mf_rmse: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BetaSetting, CapacityDistribution};
    use revmax_core::{ItemId, TimeStep, UserId};

    #[test]
    fn tiny_pipeline_produces_consistent_instance() {
        let config = DatasetConfig::tiny();
        let ds = generate(&config);
        let inst = &ds.instance;
        assert_eq!(inst.num_users(), config.num_users);
        assert_eq!(inst.num_items(), config.num_items);
        assert_eq!(inst.horizon(), config.horizon);
        assert_eq!(inst.display_limit(), config.display_limit);
        assert!(inst.num_classes() <= config.num_classes);
        assert!(ds.num_ratings > 0);
        assert!(ds.mf_rmse.is_finite());
        assert!(ds.positive_triples() > 0);
        // Every user got at most `candidates_per_user` candidates.
        for u in 0..config.num_users {
            let count = inst.candidates_of_user(UserId(u)).count();
            assert!(count <= config.candidates_per_user as usize);
        }
        // Probabilities and prices are sane.
        for c in inst.candidates() {
            for &p in inst.candidate_probs(c) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
        for i in 0..config.num_items {
            assert!(inst.price_series(ItemId(i)).iter().all(|&p| p > 0.0));
            assert!((0.0..=1.0).contains(&inst.beta(ItemId(i))));
            assert!(inst.capacity(ItemId(i)) >= 1);
        }
    }

    #[test]
    fn pipeline_is_deterministic_for_a_seed() {
        let config = DatasetConfig::tiny();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.positive_triples(), b.positive_triples());
        assert_eq!(a.num_ratings, b.num_ratings);
        let ca = a.instance.candidates().count();
        let cb = b.instance.candidates().count();
        assert_eq!(ca, cb);
    }

    #[test]
    fn adoption_probability_is_anti_monotone_in_price_on_average() {
        // Cheaper days should on average have higher adoption probability
        // because q is driven by Pr[val ≥ price].
        let mut config = DatasetConfig::tiny();
        config.daily_price_noise = 0.25;
        config.sale_probability = 0.3;
        let ds = generate(&config);
        let inst = &ds.instance;
        let mut agree = 0u32;
        let mut total = 0u32;
        for c in inst.candidates() {
            let item = inst.candidate_item(c);
            let probs = inst.candidate_probs(c);
            for t1 in 0..inst.horizon() as usize {
                for t2 in (t1 + 1)..inst.horizon() as usize {
                    let p1 = inst.price(item, TimeStep::from_index(t1));
                    let p2 = inst.price(item, TimeStep::from_index(t2));
                    if (p1 - p2).abs() < 1e-9 {
                        continue;
                    }
                    total += 1;
                    let cheaper_has_higher_q =
                        (p1 < p2 && probs[t1] >= probs[t2]) || (p2 < p1 && probs[t2] >= probs[t1]);
                    if cheaper_has_higher_q {
                        agree += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            agree as f64 / total as f64 > 0.95,
            "anti-monotonicity violated too often: {agree}/{total}"
        );
    }

    #[test]
    fn scalability_pipeline_shapes() {
        let mut config = DatasetConfig::synthetic_scalability(200);
        config.num_items = 100;
        config.num_classes = 10;
        config.candidates_per_user = 20;
        let ds = generate_scalability(&config);
        let inst = &ds.instance;
        assert_eq!(inst.num_users(), 200);
        assert_eq!(inst.horizon(), 5);
        assert!(ds.mf_rmse.is_nan());
        // Input size ≈ candidates_per_user × T × |U| (some triples may be 0).
        let expected = 200 * 20 * 5;
        assert!(ds.positive_triples() as u64 <= expected);
        assert!(ds.positive_triples() as u64 > expected / 2);
        // Anti-monotonicity holds exactly by construction.
        for c in inst.candidates().take(500) {
            let item = inst.candidate_item(c);
            let probs = inst.candidate_probs(c);
            for t1 in 0..5usize {
                for t2 in 0..5usize {
                    let p1 = inst.price(item, TimeStep::from_index(t1));
                    let p2 = inst.price(item, TimeStep::from_index(t2));
                    if p1 < p2 {
                        assert!(probs[t1] >= probs[t2] - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn per_class_random_beta_is_uniform_within_every_class() {
        let mut config = DatasetConfig::tiny();
        config.beta = BetaSetting::PerClassRandom;
        let ds = generate(&config);
        assert!(
            ds.instance.all_beta_uniform(),
            "every class must share one beta"
        );
        // Classes are not all identical: at least two distinct class betas
        // exist on the tiny config (5 classes, independent draws).
        let betas: std::collections::BTreeSet<u64> = (0..config.num_items)
            .map(|i| ds.instance.beta(ItemId(i)).to_bits())
            .collect();
        assert!(betas.len() > 1, "class betas should differ across classes");

        // The synthetic (no-MF) pipeline honours the setting too.
        let mut synth = DatasetConfig::synthetic_scalability(50);
        synth.num_items = 40;
        synth.num_classes = 6;
        synth.candidates_per_user = 10;
        synth.beta = BetaSetting::PerClassRandom;
        let ds = generate_scalability(&synth);
        assert!(ds.instance.all_beta_uniform());
    }

    #[test]
    fn beta_and_capacity_settings_are_respected() {
        let mut config = DatasetConfig::tiny();
        config.beta = BetaSetting::Fixed(0.5);
        config.capacity = CapacityDistribution::Uniform { min: 3.0, max: 6.0 };
        let ds = generate(&config);
        for i in 0..config.num_items {
            assert_eq!(ds.instance.beta(ItemId(i)), 0.5);
            let c = ds.instance.capacity(ItemId(i));
            assert!((3..=6).contains(&c));
        }
    }
}
