//! Buyer valuations and the price-aware primitive adoption probability.
//!
//! Following §6 of the paper, each user holds a private valuation `val_ui`
//! drawn from a common per-item distribution (the independent private value
//! assumption), and the primitive adoption probability of a candidate triple is
//!
//! ```text
//! q(u, i, t) = Pr[val_ui ≥ p(i, t)] · r̂_ui / r_max
//! ```
//!
//! where `r̂_ui` is the predicted rating from the recommender substrate. The
//! paper learns the per-item valuation distribution from observed price
//! samples via KDE and then works with its Gaussian summary.

use crate::kde::GaussianKde;
use crate::stats::{mean, normal_cdf, std_dev};

/// A distribution of buyer valuations for one item.
pub trait Valuation {
    /// Probability that a random buyer's valuation is at least `price`.
    fn prob_at_least(&self, price: f64) -> f64;
}

/// Gaussian valuation distribution `val ~ N(mean, std²)`.
///
/// `Pr[val ≥ p] = ½ (1 − erf((p − μ) / (√2 σ)))`, exactly the expression used
/// in §6.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianValuation {
    /// Mean valuation `μ`.
    pub mean: f64,
    /// Valuation standard deviation `σ`.
    pub std: f64,
}

impl GaussianValuation {
    /// Builds a Gaussian valuation from raw price observations using the
    /// sample mean and standard deviation.
    ///
    /// The paper's Epinions preparation treats the KDE of reported prices as
    /// the valuation distribution and then summarises it as a Gaussian; the
    /// KDE mixture mean equals the sample mean and its variance is the sample
    /// variance plus `h²`, which for Silverman bandwidths is dominated by the
    /// sample variance — so this summary matches the KDE summary closely.
    pub fn from_samples(samples: &[f64]) -> Self {
        GaussianValuation {
            mean: mean(samples),
            std: std_dev(samples).max(1e-9),
        }
    }

    /// Builds the Gaussian summary of a fitted KDE (mixture mean and standard
    /// deviation, which includes the bandwidth term).
    pub fn from_kde(kde: &GaussianKde) -> Self {
        GaussianValuation {
            mean: kde.mean(),
            std: kde.variance().sqrt().max(1e-9),
        }
    }
}

impl Valuation for GaussianValuation {
    fn prob_at_least(&self, price: f64) -> f64 {
        (1.0 - normal_cdf(price, self.mean, self.std)).clamp(0.0, 1.0)
    }
}

/// Valuation distribution given directly by a KDE over observed prices
/// (the non-parametric alternative to [`GaussianValuation`]).
#[derive(Debug, Clone)]
pub struct KdeValuation {
    kde: GaussianKde,
}

impl KdeValuation {
    /// Wraps a fitted KDE as a valuation distribution.
    pub fn new(kde: GaussianKde) -> Self {
        KdeValuation { kde }
    }

    /// Access to the underlying KDE.
    pub fn kde(&self) -> &GaussianKde {
        &self.kde
    }
}

impl Valuation for KdeValuation {
    fn prob_at_least(&self, price: f64) -> f64 {
        self.kde.survival(price)
    }
}

/// The primitive adoption probability
/// `q(u, i, t) = Pr[val ≥ price] · r̂ / r_max`, clamped to `[0, 1]`.
///
/// A non-positive predicted rating yields probability 0 (the paper only keeps
/// the top-rated items per user anyway).
pub fn adoption_probability<V: Valuation>(
    valuation: &V,
    predicted_rating: f64,
    max_rating: f64,
    price: f64,
) -> f64 {
    if max_rating <= 0.0 || predicted_rating <= 0.0 {
        return 0.0;
    }
    let rating_factor = (predicted_rating / max_rating).clamp(0.0, 1.0);
    (valuation.prob_at_least(price) * rating_factor).clamp(0.0, 1.0)
}

/// Computes the primitive adoption probabilities of one candidate pair over a
/// whole price series (one value per time step).
pub fn adoption_series<V: Valuation>(
    valuation: &V,
    predicted_rating: f64,
    max_rating: f64,
    prices: &[f64],
) -> Vec<f64> {
    prices
        .iter()
        .map(|&p| adoption_probability(valuation, predicted_rating, max_rating, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_valuation_is_anti_monotone_in_price() {
        let v = GaussianValuation {
            mean: 100.0,
            std: 20.0,
        };
        let mut prev = 1.0;
        for p in (0..300).map(|x| x as f64) {
            let q = v.prob_at_least(p);
            assert!(q <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&q));
            prev = q;
        }
        assert!((v.prob_at_least(100.0) - 0.5).abs() < 1e-9);
        assert!(v.prob_at_least(0.0) > 0.99);
        assert!(v.prob_at_least(200.0) < 0.01);
    }

    #[test]
    fn from_samples_matches_moments() {
        let samples = [90.0, 110.0, 100.0, 95.0, 105.0];
        let v = GaussianValuation::from_samples(&samples);
        assert!((v.mean - 100.0).abs() < 1e-9);
        assert!(v.std > 0.0);
    }

    #[test]
    fn from_kde_uses_mixture_moments() {
        let kde = GaussianKde::fit(&[90.0, 110.0, 100.0]);
        let v = GaussianValuation::from_kde(&kde);
        assert!((v.mean - kde.mean()).abs() < 1e-12);
        assert!((v.std - kde.variance().sqrt()).abs() < 1e-12);
    }

    #[test]
    fn kde_valuation_agrees_with_survival() {
        let kde = GaussianKde::fit(&[50.0, 60.0, 55.0, 58.0]);
        let v = KdeValuation::new(kde.clone());
        for p in [40.0, 55.0, 70.0] {
            assert!((v.prob_at_least(p) - kde.survival(p)).abs() < 1e-12);
        }
        assert_eq!(v.kde().samples().len(), 4);
    }

    #[test]
    fn adoption_probability_scales_with_rating() {
        let v = GaussianValuation {
            mean: 100.0,
            std: 10.0,
        };
        let q_high = adoption_probability(&v, 5.0, 5.0, 100.0);
        let q_low = adoption_probability(&v, 2.5, 5.0, 100.0);
        assert!((q_high - 0.5).abs() < 1e-9);
        assert!((q_low - 0.25).abs() < 1e-9);
        // Degenerate inputs.
        assert_eq!(adoption_probability(&v, 0.0, 5.0, 100.0), 0.0);
        assert_eq!(adoption_probability(&v, 4.0, 0.0, 100.0), 0.0);
        // Rating above r_max clamps to 1.
        assert!((adoption_probability(&v, 9.0, 5.0, 100.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn adoption_series_follows_price_fluctuation() {
        let v = GaussianValuation {
            mean: 100.0,
            std: 10.0,
        };
        let prices = [120.0, 100.0, 80.0];
        let series = adoption_series(&v, 5.0, 5.0, &prices);
        assert_eq!(series.len(), 3);
        // Cheaper days have strictly higher adoption probability.
        assert!(series[0] < series[1] && series[1] < series[2]);
    }
}
