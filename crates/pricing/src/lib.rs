//! # revmax-pricing
//!
//! Price and valuation modelling for the REVMAX reproduction.
//!
//! The revenue model treats prices as exogenous input: either exact per-day
//! values `p(i, t)` or random variables with a known distribution (§7). This
//! crate provides the substrate the paper's data preparation (§6.1) relies on:
//!
//! * [`stats`] — error function, Gaussian pdf/cdf, sample moments, and a
//!   Cholesky-based correlated sampler;
//! * [`kde`] — Gaussian-kernel density estimation with Silverman's
//!   rule-of-thumb bandwidth, used to learn price/valuation distributions from
//!   reported prices (the Epinions pipeline);
//! * [`valuation`] — buyer valuation distributions and the price-aware
//!   primitive adoption probability `q(u,i,t) = Pr[val ≥ p]·r̂/r_max`;
//! * [`taylor`] — the random-price extension: second-order Taylor
//!   approximation of expected revenue, a Monte-Carlo ground-truth estimator,
//!   and the naive mean-price heuristic it is compared against.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kde;
pub mod stats;
pub mod taylor;
pub mod valuation;

pub use kde::{silverman_bandwidth, GaussianKde};
pub use stats::{erf, mean, normal_cdf, normal_pdf, std_dev, variance, CovarianceMatrix};
pub use taylor::{
    monte_carlo_expected_value, rand_rev_mean_price, rand_rev_monte_carlo, rand_rev_taylor,
    taylor_expected_value, RandomPriceTriple,
};
pub use valuation::{
    adoption_probability, adoption_series, GaussianValuation, KdeValuation, Valuation,
};
