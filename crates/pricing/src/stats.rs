//! Small statistics toolkit: error function, Gaussian pdf/cdf, sample moments,
//! and a Cholesky factorisation used for correlated price sampling.
//!
//! Everything is implemented from scratch so the workspace only depends on the
//! pre-approved crates.

/// The Gauss error function `erf(x)`, via the Abramowitz–Stegun 7.1.26
/// rational approximation (absolute error ≤ 1.5e-7, plenty for probabilities).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal density `φ(x)`.
pub fn standard_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)`.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Normal density with mean `mu` and standard deviation `sigma`.
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if (x - mu).abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        };
    }
    standard_normal_pdf((x - mu) / sigma) / sigma
}

/// Normal cumulative distribution with mean `mu` and standard deviation `sigma`.
pub fn normal_cdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if x >= mu { 1.0 } else { 0.0 };
    }
    standard_normal_cdf((x - mu) / sigma)
}

/// Sample mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 for fewer than two observations).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// A symmetric positive semi-definite covariance matrix with a Cholesky-based
/// sampler for correlated multivariate-normal draws.
#[derive(Debug, Clone)]
pub struct CovarianceMatrix {
    n: usize,
    /// Row-major symmetric matrix.
    data: Vec<f64>,
}

impl CovarianceMatrix {
    /// Diagonal covariance built from per-coordinate variances.
    pub fn diagonal(variances: &[f64]) -> Self {
        let n = variances.len();
        let mut data = vec![0.0; n * n];
        for (i, &v) in variances.iter().enumerate() {
            data[i * n + i] = v.max(0.0);
        }
        CovarianceMatrix { n, data }
    }

    /// Dense covariance from a row-major `n × n` matrix.
    ///
    /// The matrix is symmetrised; no positive-definiteness check is performed
    /// until [`CovarianceMatrix::cholesky`] is called.
    pub fn dense(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "covariance matrix must be n×n");
        let mut sym = data.clone();
        for i in 0..n {
            for j in 0..n {
                sym[i * n + j] = 0.5 * (data[i * n + j] + data[j * n + i]);
            }
        }
        CovarianceMatrix { n, data: sym }
    }

    /// Number of coordinates.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `cov(a, b)`.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        self.data[a * self.n + b]
    }

    /// Sets `cov(a, b)` (and the symmetric entry).
    pub fn set(&mut self, a: usize, b: usize, value: f64) {
        self.data[a * self.n + b] = value;
        self.data[b * self.n + a] = value;
    }

    /// Variance of coordinate `a`.
    pub fn variance(&self, a: usize) -> f64 {
        self.get(a, a)
    }

    /// Lower-triangular Cholesky factor `L` with `L Lᵀ = Σ`.
    ///
    /// Small negative pivots (numerical noise) are clamped to zero, which turns
    /// the factorisation into the factor of the nearest diagonal-repaired
    /// matrix; `None` is returned for clearly indefinite inputs.
    pub fn cholesky(&self) -> Option<Vec<f64>> {
        let n = self.n;
        let mut l = vec![0.0_f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum < -1e-9 {
                        return None;
                    }
                    l[i * n + j] = sum.max(0.0).sqrt();
                } else {
                    let diag = l[j * n + j];
                    l[i * n + j] = if diag.abs() < 1e-15 { 0.0 } else { sum / diag };
                }
            }
        }
        Some(l)
    }

    /// Draws one multivariate-normal sample with the given means and this
    /// covariance, using a pre-computed Cholesky factor and i.i.d. standard
    /// normal inputs `z`.
    pub fn correlate(&self, chol: &[f64], means: &[f64], z: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = means[i];
            for k in 0..=i {
                acc += chol[i * n + k] * z[k];
            }
            out[i] = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(standard_normal_cdf(-6.0) < 1e-6);
        assert!(standard_normal_cdf(6.0) > 1.0 - 1e-6);
        // location/scale version
        assert!((normal_cdf(10.0, 10.0, 2.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(5.0, 10.0, 2.0) < 0.01);
    }

    #[test]
    fn degenerate_sigma_is_a_step_function() {
        assert_eq!(normal_cdf(1.0, 2.0, 0.0), 0.0);
        assert_eq!(normal_cdf(3.0, 2.0, 0.0), 1.0);
        assert_eq!(normal_pdf(3.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let mut total = 0.0;
        let step = 0.01;
        let mut x = -8.0;
        while x < 8.0 {
            total += standard_normal_pdf(x) * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sample_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic example is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // Σ = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
        let cov = CovarianceMatrix::dense(2, vec![4.0, 2.0, 2.0, 3.0]);
        let l = cov.cholesky().unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2.0f64.sqrt()).abs() < 1e-12);
        // Reconstruct Σ = L Lᵀ.
        let recon00 = l[0] * l[0];
        let recon01 = l[0] * l[2];
        let recon11 = l[2] * l[2] + l[3] * l[3];
        assert!((recon00 - 4.0).abs() < 1e-12);
        assert!((recon01 - 2.0).abs() < 1e-12);
        assert!((recon11 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let cov = CovarianceMatrix::dense(2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(cov.cholesky().is_none());
    }

    #[test]
    fn diagonal_covariance_and_correlate() {
        let cov = CovarianceMatrix::diagonal(&[4.0, 9.0]);
        assert_eq!(cov.dim(), 2);
        assert_eq!(cov.variance(1), 9.0);
        let chol = cov.cholesky().unwrap();
        let sample = cov.correlate(&chol, &[10.0, 20.0], &[1.0, -1.0]);
        assert!((sample[0] - 12.0).abs() < 1e-12);
        assert!((sample[1] - 17.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_symmetric() {
        let mut cov = CovarianceMatrix::diagonal(&[1.0, 1.0]);
        cov.set(0, 1, 0.5);
        assert_eq!(cov.get(1, 0), 0.5);
    }
}
