//! The random-price extension of §7: when prices are only known as
//! distributions, the expected revenue of a strategy is approximated by a
//! second-order Taylor expansion of each triple's revenue contribution around
//! the mean price vector,
//!
//! ```text
//! E[g(z)] ≈ g(z̄) + ½ Σ_a ∂²g/∂z_a² · var(z_a) + Σ_{a<b} ∂²g/∂z_a∂z_b · cov(z_a, z_b)
//! ```
//!
//! (the first-order term vanishes because `E[z_a − z̄_a] = 0`). The Hessian is
//! evaluated numerically with central differences, which keeps the estimator
//! distribution-independent exactly as the paper argues. A Monte-Carlo
//! estimator over correlated Gaussian price draws provides the ground truth
//! the approximation is validated against in the experiments.

use crate::stats::CovarianceMatrix;
use crate::valuation::{GaussianValuation, Valuation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative step used for numeric second derivatives.
const DEFAULT_REL_STEP: f64 = 1e-3;

/// One scheduled recommendation whose revenue contribution depends on the
/// (random) prices of itself and of the same-class recommendations made to the
/// same user at earlier or equal times (its "competitors", `[z]_S` in §7).
#[derive(Debug, Clone)]
pub struct RandomPriceTriple {
    /// Index of this triple's price variable in the global price vector.
    pub own_var: usize,
    /// Indices of the competitors' price variables.
    pub competitor_vars: Vec<usize>,
    /// Rating factor `r̂ / r_max` of this triple.
    pub rating_factor: f64,
    /// Rating factors of the competitors (aligned with `competitor_vars`).
    pub competitor_rating_factors: Vec<f64>,
    /// Valuation distribution of (user, own item).
    pub valuation: GaussianValuation,
    /// Valuation distributions of the competitors.
    pub competitor_valuations: Vec<GaussianValuation>,
    /// Price-independent saturation discount `β^{M_S(u,i,t)}`.
    pub saturation_discount: f64,
}

impl RandomPriceTriple {
    /// Revenue contribution of this triple for a concrete price vector.
    ///
    /// `g(z) = p_own · q_own(p_own) · β^M · Π_j (1 − q_j(p_j))` with
    /// `q(p) = Pr[val ≥ p] · rating_factor`.
    pub fn revenue_given_prices(&self, prices: &[f64]) -> f64 {
        let own_price = prices[self.own_var];
        let own_q = (self.valuation.prob_at_least(own_price) * self.rating_factor).clamp(0.0, 1.0);
        let mut competition = 1.0;
        for (idx, &var) in self.competitor_vars.iter().enumerate() {
            let q = (self.competitor_valuations[idx].prob_at_least(prices[var])
                * self.competitor_rating_factors[idx])
                .clamp(0.0, 1.0);
            competition *= 1.0 - q;
        }
        own_price * own_q * self.saturation_discount * competition
    }

    /// All price-variable indices this triple's revenue depends on
    /// (own variable first).
    pub fn variables(&self) -> Vec<usize> {
        let mut vars = Vec::with_capacity(1 + self.competitor_vars.len());
        vars.push(self.own_var);
        vars.extend_from_slice(&self.competitor_vars);
        vars
    }
}

/// Second-order Taylor approximation of `E[f(X)]` for `X ~ (means, cov)`.
///
/// `rel_step` controls the relative finite-difference step (pass
/// [`f64::NAN`]-free positive values; `None` uses a sensible default).
pub fn taylor_expected_value<F: Fn(&[f64]) -> f64>(
    f: F,
    means: &[f64],
    cov: &CovarianceMatrix,
    rel_step: Option<f64>,
) -> f64 {
    assert_eq!(
        means.len(),
        cov.dim(),
        "mean vector and covariance must agree"
    );
    let n = means.len();
    let step = rel_step.unwrap_or(DEFAULT_REL_STEP);
    let f0 = f(means);
    let h: Vec<f64> = means.iter().map(|m| step * m.abs().max(1.0)).collect();
    let mut work = means.to_vec();
    let mut result = f0;

    // Diagonal second derivatives.
    for a in 0..n {
        let var = cov.variance(a);
        if var <= 0.0 {
            continue;
        }
        work[a] = means[a] + h[a];
        let plus = f(&work);
        work[a] = means[a] - h[a];
        let minus = f(&work);
        work[a] = means[a];
        let second = (plus - 2.0 * f0 + minus) / (h[a] * h[a]);
        result += 0.5 * second * var;
    }

    // Mixed second derivatives.
    for a in 0..n {
        for b in (a + 1)..n {
            let c = cov.get(a, b);
            if c == 0.0 {
                continue;
            }
            work[a] = means[a] + h[a];
            work[b] = means[b] + h[b];
            let pp = f(&work);
            work[b] = means[b] - h[b];
            let pm = f(&work);
            work[a] = means[a] - h[a];
            let mm = f(&work);
            work[b] = means[b] + h[b];
            let mp = f(&work);
            work[a] = means[a];
            work[b] = means[b];
            let mixed = (pp - pm - mp + mm) / (4.0 * h[a] * h[b]);
            result += mixed * c;
        }
    }
    result
}

/// Monte-Carlo estimate of `E[f(X)]` with `X` multivariate normal
/// `(means, cov)`, truncated below at zero (prices are non-negative).
///
/// Returns `None` if the covariance is not positive semi-definite.
pub fn monte_carlo_expected_value<F: Fn(&[f64]) -> f64>(
    f: F,
    means: &[f64],
    cov: &CovarianceMatrix,
    samples: usize,
    seed: u64,
) -> Option<f64> {
    assert_eq!(means.len(), cov.dim());
    let chol = cov.cholesky()?;
    let n = means.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0.0;
    let mut z = vec![0.0_f64; n];
    for _ in 0..samples.max(1) {
        for slot in z.iter_mut() {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            *slot = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
        let mut draw = cov.correlate(&chol, means, &z);
        for p in draw.iter_mut() {
            *p = p.max(0.0);
        }
        total += f(&draw);
    }
    Some(total / samples.max(1) as f64)
}

/// Expected total revenue of a collection of random-price triples via the
/// Taylor approximation, `RandRev(S) = Σ_z E[g_z]`.
///
/// Each triple's expansion only touches the coordinates it depends on, so the
/// cost is `O(Σ_z d_z²)` function evaluations with `d_z = 1 + #competitors`.
pub fn rand_rev_taylor(
    triples: &[RandomPriceTriple],
    means: &[f64],
    cov: &CovarianceMatrix,
) -> f64 {
    triples
        .iter()
        .map(|triple| {
            let vars = triple.variables();
            let sub_means: Vec<f64> = vars.iter().map(|&v| means[v]).collect();
            let mut sub_cov = CovarianceMatrix::diagonal(&vec![0.0; vars.len()]);
            for (ai, &a) in vars.iter().enumerate() {
                for (bi, &b) in vars.iter().enumerate() {
                    sub_cov.set(ai, bi, cov.get(a, b));
                }
            }
            let f = |sub_prices: &[f64]| {
                // Scatter the sub-vector back into a full-size price vector.
                let mut full = means.to_vec();
                for (idx, &v) in vars.iter().enumerate() {
                    full[v] = sub_prices[idx];
                }
                triple.revenue_given_prices(&full)
            };
            taylor_expected_value(f, &sub_means, &sub_cov, None)
        })
        .sum()
}

/// Monte-Carlo estimate of the expected total revenue of a collection of
/// random-price triples (shared price draws across triples, as in reality).
pub fn rand_rev_monte_carlo(
    triples: &[RandomPriceTriple],
    means: &[f64],
    cov: &CovarianceMatrix,
    samples: usize,
    seed: u64,
) -> Option<f64> {
    monte_carlo_expected_value(
        |prices| triples.iter().map(|z| z.revenue_given_prices(prices)).sum(),
        means,
        cov,
        samples,
        seed,
    )
}

/// The naive "plug in the mean price" heuristic the paper mentions as the
/// obvious alternative to the Taylor correction.
pub fn rand_rev_mean_price(triples: &[RandomPriceTriple], means: &[f64]) -> f64 {
    triples.iter().map(|z| z.revenue_given_prices(means)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_triple() -> RandomPriceTriple {
        RandomPriceTriple {
            own_var: 0,
            competitor_vars: vec![],
            rating_factor: 0.8,
            competitor_rating_factors: vec![],
            valuation: GaussianValuation {
                mean: 100.0,
                std: 25.0,
            },
            competitor_valuations: vec![],
            saturation_discount: 1.0,
        }
    }

    #[test]
    fn revenue_given_prices_basic_shape() {
        let z = single_triple();
        let at_mean = z.revenue_given_prices(&[100.0]);
        assert!((at_mean - 100.0 * 0.5 * 0.8).abs() < 1e-4);
        // Competitors reduce revenue.
        let with_comp = RandomPriceTriple {
            competitor_vars: vec![1],
            competitor_rating_factors: vec![1.0],
            competitor_valuations: vec![GaussianValuation {
                mean: 100.0,
                std: 25.0,
            }],
            ..single_triple()
        };
        let r = with_comp.revenue_given_prices(&[100.0, 100.0]);
        assert!((r - 100.0 * 0.5 * 0.8 * 0.5).abs() < 1e-4);
        assert_eq!(with_comp.variables(), vec![0, 1]);
    }

    #[test]
    fn taylor_is_exact_for_quadratics() {
        // f(x, y) = 3 + 2x + xy + y² has E[f] = 3 + 2μx + μxμy + cov(x,y) + μy² + var(y).
        let f = |v: &[f64]| 3.0 + 2.0 * v[0] + v[0] * v[1] + v[1] * v[1];
        let means = [1.0, 2.0];
        let mut cov = CovarianceMatrix::diagonal(&[0.5, 0.8]);
        cov.set(0, 1, 0.3);
        let expected = 3.0 + 2.0 + 2.0 + 0.3 + 4.0 + 0.8;
        let got = taylor_expected_value(f, &means, &cov, None);
        assert!(
            (got - expected).abs() < 1e-4,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn taylor_with_zero_variance_is_plain_evaluation() {
        let f = |v: &[f64]| v[0].powi(3) + 10.0;
        let cov = CovarianceMatrix::diagonal(&[0.0]);
        let got = taylor_expected_value(f, &[2.0], &cov, None);
        assert!((got - 18.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_matches_closed_form_for_linear() {
        // E[a·x + b·y] = a·μx + b·μy regardless of covariance.
        let f = |v: &[f64]| 2.0 * v[0] + 3.0 * v[1];
        let means = [10.0, 20.0];
        let mut cov = CovarianceMatrix::diagonal(&[4.0, 9.0]);
        cov.set(0, 1, 2.0);
        let mc = monte_carlo_expected_value(f, &means, &cov, 20_000, 3).unwrap();
        assert!((mc - 80.0).abs() < 0.5, "mc {mc}");
    }

    #[test]
    fn monte_carlo_rejects_indefinite_covariance() {
        let cov = CovarianceMatrix::dense(2, vec![1.0, 5.0, 5.0, 1.0]);
        assert!(monte_carlo_expected_value(|v| v[0], &[1.0, 1.0], &cov, 10, 0).is_none());
    }

    #[test]
    fn taylor_beats_mean_price_heuristic_against_monte_carlo() {
        // Price uncertainty on a single triple: the revenue curve is concave
        // around the valuation mean, so the mean-price heuristic overestimates,
        // while the Taylor correction moves towards the true expectation.
        let triples = vec![single_triple()];
        let means = [100.0];
        let cov = CovarianceMatrix::diagonal(&[400.0]); // std 20
        let truth = rand_rev_monte_carlo(&triples, &means, &cov, 200_000, 7).unwrap();
        let taylor = rand_rev_taylor(&triples, &means, &cov);
        let naive = rand_rev_mean_price(&triples, &means);
        assert!(
            (taylor - truth).abs() < (naive - truth).abs(),
            "taylor {taylor} should be closer to truth {truth} than naive {naive}"
        );
    }

    #[test]
    fn rand_rev_taylor_sums_over_triples() {
        let a = single_triple();
        let mut b = single_triple();
        b.own_var = 1;
        let means = [100.0, 90.0];
        let cov = CovarianceMatrix::diagonal(&[100.0, 100.0]);
        let sum = rand_rev_taylor(&[a.clone(), b.clone()], &means, &cov);
        let separate = rand_rev_taylor(&[a], &means, &cov) + rand_rev_taylor(&[b], &means, &cov);
        assert!((sum - separate).abs() < 1e-9);
    }
}
