//! Kernel density estimation with a Gaussian kernel and Silverman's
//! rule-of-thumb bandwidth — the method §6.1 of the paper uses to turn the
//! user-reported Epinions prices of an item into a price (and valuation)
//! distribution from which a weekly price series is sampled.

use crate::stats::{mean, normal_cdf, normal_pdf, std_dev};
use rand::Rng;

/// A one-dimensional Gaussian kernel density estimate over observed samples.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    samples: Vec<f64>,
    bandwidth: f64,
}

/// Silverman's rule-of-thumb bandwidth `h* = (4 σ̂⁵ / (3 n))^{1/5}`.
///
/// Returns a small positive fallback when the empirical standard deviation is
/// zero (all samples equal) so the estimate stays well-defined.
pub fn silverman_bandwidth(samples: &[f64]) -> f64 {
    let n = samples.len().max(1) as f64;
    let sigma = std_dev(samples);
    if sigma <= 0.0 {
        let scale = mean(samples).abs().max(1.0);
        return 1e-3 * scale;
    }
    (4.0 * sigma.powi(5) / (3.0 * n)).powf(0.2)
}

impl GaussianKde {
    /// Fits a KDE with Silverman's bandwidth. Panics on an empty sample set.
    pub fn fit(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "KDE needs at least one sample");
        GaussianKde {
            samples: samples.to_vec(),
            bandwidth: silverman_bandwidth(samples),
        }
    }

    /// Fits a KDE with an explicit bandwidth `h > 0`.
    pub fn with_bandwidth(samples: &[f64], bandwidth: f64) -> Self {
        assert!(!samples.is_empty(), "KDE needs at least one sample");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        GaussianKde {
            samples: samples.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth `h` in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The observed samples the estimate is built from.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean of the KDE mixture (equals the sample mean for a Gaussian kernel).
    pub fn mean(&self) -> f64 {
        mean(&self.samples)
    }

    /// Variance of the KDE mixture: sample second moment about the mean plus `h²`.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        let second: f64 =
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64;
        second + self.bandwidth * self.bandwidth
    }

    /// Estimated density `f̂(x) = (1 / n h) Σ κ((x − p_j) / h)`.
    pub fn density(&self, x: f64) -> f64 {
        let n = self.samples.len() as f64;
        self.samples
            .iter()
            .map(|&p| normal_pdf(x, p, self.bandwidth))
            .sum::<f64>()
            / n
    }

    /// Estimated cumulative distribution `F̂(x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let n = self.samples.len() as f64;
        self.samples
            .iter()
            .map(|&p| normal_cdf(x, p, self.bandwidth))
            .sum::<f64>()
            / n
    }

    /// Survival function `Pr[X ≥ x] = 1 − F̂(x)`, used for valuations.
    pub fn survival(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }

    /// Draws one sample from the KDE mixture: pick a kernel centre uniformly,
    /// then perturb it with `N(0, h²)` noise.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let idx = rng.gen_range(0..self.samples.len());
        let centre = self.samples[idx];
        // Box–Muller standard normal.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        centre + z * self.bandwidth
    }

    /// Draws `n` samples, clamped below at `min` (prices cannot go negative).
    pub fn sample_series<R: Rng>(&self, n: usize, min: f64, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng).max(min)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn silverman_matches_hand_computation() {
        let samples = [10.0, 12.0, 11.0, 13.0, 9.0];
        let sigma = std_dev(&samples);
        let expected = (4.0 * sigma.powi(5) / (3.0 * 5.0)).powf(0.2);
        assert!((silverman_bandwidth(&samples) - expected).abs() < 1e-12);
    }

    #[test]
    fn silverman_degenerate_samples_get_fallback() {
        let h = silverman_bandwidth(&[100.0, 100.0, 100.0]);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let kde = GaussianKde::fit(&[5.0, 7.0, 9.0, 6.5, 8.2]);
        let mut total = 0.0;
        let step = 0.01;
        let mut x = -20.0;
        while x < 40.0 {
            total += kde.density(x) * step;
            x += step;
        }
        assert!((total - 1.0).abs() < 1e-2);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let kde = GaussianKde::fit(&[20.0, 25.0, 30.0, 22.0]);
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64;
            let c = kde.cdf(x);
            assert!(c >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!(kde.cdf(-100.0) < 1e-6);
        assert!(kde.cdf(200.0) > 1.0 - 1e-6);
        assert!((kde.survival(25.0) + kde.cdf(25.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_moments() {
        let samples = [4.0, 6.0];
        let kde = GaussianKde::with_bandwidth(&samples, 0.5);
        assert!((kde.mean() - 5.0).abs() < 1e-12);
        // Second moment about the mean = 1, plus h² = 0.25.
        assert!((kde.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_the_mixture_mean() {
        let samples = [50.0, 55.0, 60.0, 52.0, 58.0];
        let kde = GaussianKde::fit(&samples);
        let mut rng = StdRng::seed_from_u64(11);
        let draws = kde.sample_series(4000, 0.0, &mut rng);
        let m = mean(&draws);
        assert!(
            (m - kde.mean()).abs() < 1.0,
            "sample mean {m} far from {}",
            kde.mean()
        );
        assert!(draws.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = GaussianKde::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn non_positive_bandwidth_panics() {
        let _ = GaussianKde::with_bandwidth(&[1.0], 0.0);
    }
}
