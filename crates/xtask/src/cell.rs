//! The instrumented [`LedgerCell`] and the worker-thread harness.
//!
//! [`InstrCell`] implements `revmax_core::LedgerCell` by routing every
//! operation — with its requested `Ordering` — through the ambient
//! [`Controller`]: on a registered worker thread the operation blocks until
//! the scheduler grants it (one schedule decision per shared-memory
//! transition); on the coordinating thread (ledger construction, final
//! invariant reads) it applies directly.
//!
//! Because `SharedCapacityLedgerIn<InstrCell>` is the *production ledger
//! type* at a different cell parameter, every scenario in
//! [`crate::scenarios`] executes the identical claim/charge/release code
//! the sharded drivers run — `cargo xtask check-ledger` model-checks the
//! real protocol, not a transcription of it.

use crate::model::{Controller, OpKind, OpReq, GRANT_CAS_SUCCESS};
use revmax_core::LedgerCell;
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

thread_local! {
    /// The ambient controller and (for workers) the scheduled thread id.
    static AMBIENT: RefCell<Option<(Arc<Controller>, Option<usize>)>> =
        const { RefCell::new(None) };
}

/// Sets the ambient controller for the current thread while `f` runs.
/// `tid` is `Some` on scheduled worker threads, `None` on the coordinator.
pub fn with_ambient<R>(ctrl: &Arc<Controller>, tid: Option<usize>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            AMBIENT.with(|a| *a.borrow_mut() = None);
        }
    }
    AMBIENT.with(|a| *a.borrow_mut() = Some((Arc::clone(ctrl), tid)));
    let _guard = Guard;
    f()
}

fn submit(req: OpReq) -> u64 {
    let (ctrl, tid) = AMBIENT.with(|a| {
        a.borrow()
            .as_ref()
            .map(|(c, t)| (Arc::clone(c), *t))
            .expect("instrumented op outside a model-checker scenario")
    });
    match tid {
        Some(tid) => ctrl.perform(tid, req),
        None => ctrl.perform_direct(req),
    }
}

/// The instrumented ledger cell: every op is a scheduler transition.
#[derive(Debug)]
pub struct InstrCell {
    id: usize,
}

impl LedgerCell for InstrCell {
    fn new(value: u32) -> Self {
        let id = AMBIENT.with(|a| {
            a.borrow()
                .as_ref()
                .map(|(c, _)| c.register_cell(value))
                .expect("InstrCell created outside a model-checker scenario")
        });
        InstrCell { id }
    }

    fn load(&self, order: Ordering) -> u32 {
        submit(OpReq {
            loc: self.id,
            kind: OpKind::Load(order),
        }) as u32
    }

    fn fetch_add(&self, delta: u32, order: Ordering) -> u32 {
        submit(OpReq {
            loc: self.id,
            kind: OpKind::FetchAdd(delta, order),
        }) as u32
    }

    fn fetch_sub(&self, delta: u32, order: Ordering) -> u32 {
        submit(OpReq {
            loc: self.id,
            kind: OpKind::FetchSub(delta, order),
        }) as u32
    }

    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        let grant = submit(OpReq {
            loc: self.id,
            kind: OpKind::Cas {
                current,
                new,
                success,
                failure,
            },
        });
        let value = grant as u32;
        if grant & GRANT_CAS_SUCCESS != 0 {
            Ok(value)
        } else {
            Err(value)
        }
    }
}

/// A race-checked plain (non-atomic) variable: the model's stand-in for
/// unsynchronised shared state such as a published held-slot.
#[derive(Debug)]
pub struct PlainVar {
    id: usize,
}

impl PlainVar {
    /// Registers a plain variable with the ambient controller.
    pub fn new(initial: u32) -> Self {
        let id = AMBIENT.with(|a| {
            a.borrow()
                .as_ref()
                .map(|(c, _)| c.register_plain(initial))
                .expect("PlainVar created outside a model-checker scenario")
        });
        PlainVar { id }
    }

    /// Non-atomic read (flagged if it races a concurrent write).
    pub fn read(&self) -> u32 {
        submit(OpReq {
            loc: self.id,
            kind: OpKind::PlainRead,
        }) as u32
    }

    /// Non-atomic write (flagged if it races any concurrent access).
    pub fn write(&self, value: u32) {
        submit(OpReq {
            loc: self.id,
            kind: OpKind::PlainWrite(value),
        });
    }
}

/// Runs `bodies` as scheduled worker threads under `ctrl` and drives the
/// scheduler to completion; returns each body's result (`u64::MAX` for a
/// body that panicked — the panic is also flagged as a violation).
pub fn run_threads<'scope>(
    ctrl: &Arc<Controller>,
    bodies: Vec<Box<dyn FnOnce() -> u64 + Send + 'scope>>,
) -> Vec<u64> {
    std::thread::scope(|s| {
        let handles: Vec<_> = bodies
            .into_iter()
            .enumerate()
            .map(|(tid, body)| {
                let ctrl = Arc::clone(ctrl);
                s.spawn(move || {
                    // Settle the scheduler even if the body panics.
                    struct Finisher(Arc<Controller>, usize);
                    impl Drop for Finisher {
                        fn drop(&mut self) {
                            self.0.finish(self.1);
                        }
                    }
                    let finisher = Finisher(Arc::clone(&ctrl), tid);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        with_ambient(&ctrl, Some(tid), body)
                    }));
                    drop(finisher);
                    match result {
                        Ok(r) => r,
                        Err(e) => {
                            let msg = e
                                .downcast_ref::<&str>()
                                .copied()
                                .or_else(|| e.downcast_ref::<String>().map(String::as_str))
                                .unwrap_or("non-string panic payload");
                            ctrl.flag(format!("worker t{tid} panicked: {msg}"));
                            u64::MAX
                        }
                    }
                })
            })
            .collect();
        ctrl.schedule_loop();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(u64::MAX))
            .collect()
    })
}
