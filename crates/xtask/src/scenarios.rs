//! The `cargo xtask check-ledger` scenario suite.
//!
//! Every scenario instantiates the **production** ledger type
//! (`SharedCapacityLedgerIn`) at the instrumented cell and runs real ledger
//! / `revmax_algorithms::protocol` code under the schedule explorer:
//!
//! * **pass scenarios** assert a safety invariant over *every* schedule
//!   (DFS to exhaustion) or a large seeded sample (random mode);
//! * **violation scenarios** are detector-sanity checks: a deliberately
//!   broken protocol (unsynchronised held-slot publication, release
//!   without claim) that the checker must flag — if it cannot, the gate
//!   fails, because a detector that cannot detect proves nothing;
//! * **mutant scenarios** re-run the ordering-sensitive pass scenarios with
//!   every `Ordering` demoted to `Relaxed` (the seeded mutant of the
//!   sensitivity regression): the checker must flag the weakened ledger,
//!   proving the acquire/release reasoning in `docs/concurrency.md` is
//!   load-bearing rather than decorative.

use crate::cell::{run_threads, with_ambient, InstrCell, PlainVar};
use crate::model::{explore_dfs, explore_random, Controller, Exploration};
use revmax_algorithms::protocol;
use revmax_core::{Instance, InstanceBuilder, ItemId, SharedCapacityLedgerIn, UserId};
use std::sync::{Arc, Mutex};

/// DFS execution budget per scenario; pass scenarios must exhaust their
/// schedule space strictly below it.
const DFS_BUDGET: usize = 500_000;
/// Random-schedule iterations for the fuzz scenario.
const FUZZ_ITERATIONS: usize = 400;

type Ledger = SharedCapacityLedgerIn<InstrCell>;

/// A tiny instance with the given per-item capacities; `exempt` lists
/// `(item, user)` pairs exempt from capacity accounting.
fn make_instance(caps: &[u32], exempt: &[(u32, u32)]) -> Instance {
    let users = 8;
    let mut b = InstanceBuilder::new(users, caps.len() as u32, 1);
    b.display_limit(1);
    for (i, &cap) in caps.iter().enumerate() {
        b.capacity(i as u32, cap)
            .constant_price(i as u32, 1.0)
            .candidate(i as u32 % users, i as u32, &[0.5], 0.0);
    }
    for &(item, user) in exempt {
        b.exempt_user(item, user);
    }
    b.build().expect("scenario instance is valid")
}

/// Builds the instrumented ledger and registers per-item capacities with
/// the controller (cells are registered in item order).
fn make_ledger(ctrl: &Arc<Controller>, inst: &Instance) -> Ledger {
    let ledger: Ledger = SharedCapacityLedgerIn::new(inst);
    for i in 0..inst.num_items() {
        ctrl.set_cap(i as usize, inst.capacity(ItemId(i)));
    }
    ledger
}

/// A tiny instance with explicit per-item candidate lists: `items[i] =
/// (capacity, candidate users)` — the scarcity-window scenarios need items
/// whose demand exceeds capacity, which [`make_instance`]'s one-candidate-
/// per-item shape cannot express.
fn make_window_instance(items: &[(u32, &[u32])]) -> Instance {
    let users = 8;
    let mut b = InstanceBuilder::new(users, items.len() as u32, 1);
    b.display_limit(1);
    for (i, &(cap, cands)) in items.iter().enumerate() {
        b.capacity(i as u32, cap).constant_price(i as u32, 1.0);
        for &user in cands {
            b.candidate(user, i as u32, &[0.5], 0.0);
        }
    }
    b.build().expect("scenario instance is valid")
}

// ---------------------------------------------------------------------------
// Scenario bodies
// ---------------------------------------------------------------------------

/// Two threads race one capacity unit; exactly one claim is ever granted.
fn claim_contention(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let results = run_threads(
            ctrl,
            vec![
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(0)) as u64),
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(1)) as u64),
            ],
        );
        let granted: u64 = results.iter().sum();
        let used = ledger.used(ItemId(0));
        if granted != 1 || used != 1 {
            ctrl.flag(format!(
                "claim contention: {granted} grants, used {used} (expected exactly 1)"
            ));
        }
    });
}

/// Three threads race two capacity units; exactly two claims are granted.
fn claim_contention_3t(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[2], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let results = run_threads(
            ctrl,
            vec![
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(0)) as u64),
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(1)) as u64),
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(2)) as u64),
            ],
        );
        let granted: u64 = results.iter().sum();
        let used = ledger.used(ItemId(0));
        if granted != 2 || used != 2 {
            ctrl.flag(format!(
                "3-thread claim contention: {granted} grants, used {used} (expected exactly 2)"
            ));
        }
    });
}

/// Claim-then-release cycles settle back to zero and never underflow
/// (underflow is flagged by the model itself).
fn claim_release(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let body = |user: u32| {
            let ledger = &ledger;
            move || {
                if ledger.try_claim_for(ItemId(0), UserId(user)) {
                    ledger.release(ItemId(0));
                    1u64
                } else {
                    0
                }
            }
        };
        run_threads(ctrl, vec![Box::new(body(0)), Box::new(body(1))]);
        let used = ledger.used(ItemId(0));
        if used != 0 {
            ctrl.flag(format!("claim/release cycle left used = {used}"));
        }
    });
}

/// Exempt pairs are always granted, never consume capacity, and never
/// block the one real capacity unit.
fn exempt_claims(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[(0, 7)]);
        let ledger = make_ledger(ctrl, &inst);
        let results = run_threads(
            ctrl,
            vec![
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(0)) as u64),
                Box::new(|| {
                    let exempt_granted = ledger.try_claim_for(ItemId(0), UserId(7));
                    let regular_granted = ledger.try_claim_for(ItemId(0), UserId(1));
                    (exempt_granted as u64) << 1 | regular_granted as u64
                }),
            ],
        );
        if results[1] & 2 == 0 {
            ctrl.flag("exempt claim was denied".into());
        }
        let regular = results[0] + (results[1] & 1);
        let used = ledger.used(ItemId(0));
        if regular != 1 || used != 1 {
            ctrl.flag(format!(
                "exempt mix: {regular} non-exempt grants, used {used} (expected exactly 1)"
            ));
        }
    });
}

/// The claim-protocol seam the sharded drivers use: concurrent
/// `claim_blocked` → `commit_claim` commits at most `cap` claims, and a
/// denied commit is reported to its caller (the speculative-conflict path).
fn protocol_commit(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let body = |user: u32| {
            let ledger = &ledger;
            move || {
                let mut counted = false;
                if protocol::claim_blocked(ledger, counted, ItemId(0), UserId(user)) {
                    return 0u64; // gated before committing
                }
                let granted = protocol::commit_claim(ledger, &mut counted, ItemId(0), UserId(user));
                if !counted {
                    return u64::MAX; // commit must always mark the pair
                }
                if granted {
                    1
                } else {
                    2 // speculative conflict: commit denied
                }
            }
        };
        let results = run_threads(ctrl, vec![Box::new(body(0)), Box::new(body(1))]);
        if results.contains(&u64::MAX) {
            ctrl.flag("commit_claim left a pair uncounted".into());
        }
        let granted = results.iter().filter(|&&r| r == 1).count();
        let used = ledger.used(ItemId(0));
        if granted > 1 || used > 1 || used as usize != granted {
            ctrl.flag(format!(
                "protocol commit: {granted} grants, used {used} (cap 1)"
            ));
        }
    });
}

/// Message-passing visibility: a thread that observes item B full must also
/// observe the charge of item A that happened-before it. Passes with the
/// real orderings; the `Relaxed` mutant must be flagged here.
fn visibility_chain(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1, 1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let results = run_threads(
            ctrl,
            vec![
                Box::new(|| {
                    ledger.charge(ItemId(0), UserId(0));
                    ledger.charge(ItemId(1), UserId(0));
                    0u64
                }),
                Box::new(|| {
                    if ledger.is_full(ItemId(1)) {
                        2 | (ledger.used(ItemId(0)) >= 1) as u64
                    } else {
                        0
                    }
                }),
            ],
        );
        if results[1] == 2 {
            ctrl.flag("visibility chain: item 1 observed full but the charge of item 0 that happened-before it is not visible".into());
        }
    });
}

/// Claim-gated publication: a plain held-slot written only by the winner of
/// the item's single capacity unit is race-free, and the published value is
/// the winner's.
fn held_slot_gated(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let slot = PlainVar::new(0);
        let body = |user: u32| {
            let ledger = &ledger;
            let slot = &slot;
            move || {
                if ledger.try_claim_for(ItemId(0), UserId(user)) {
                    slot.write(user + 1);
                    1u64
                } else {
                    0
                }
            }
        };
        let results = run_threads(ctrl, vec![Box::new(body(0)), Box::new(body(1))]);
        let winners: u64 = results.iter().sum();
        let published = slot.read();
        if winners != 1 || published == 0 || published > 2 {
            ctrl.flag(format!(
                "gated held-slot: {winners} winners, published {published}"
            ));
        }
    });
}

/// Publication through the ledger: data plain-written before a charge is
/// visible (and race-free) to a thread that observed the charge. Passes
/// with the real orderings; the `Relaxed` mutant must be flagged here.
fn publication_gate(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let data = PlainVar::new(0);
        let results = run_threads(
            ctrl,
            vec![
                Box::new(|| {
                    data.write(42);
                    ledger.charge(ItemId(0), UserId(0));
                    0u64
                }),
                Box::new(|| {
                    if ledger.used(ItemId(0)) >= 1 {
                        data.read() as u64
                    } else {
                        42 // did not observe the charge: vacuously fine
                    }
                }),
            ],
        );
        if results[1] != 42 {
            ctrl.flag(format!(
                "publication gate: observed charge but read data {}",
                results[1]
            ));
        }
    });
}

/// Scarcity window: a speculative grant on a scarce item being admitted by
/// the coordinator races an abundant-item fast commit on another shard.
/// The fast path is non-binding on the admission (different cells), and
/// `commit_spec` only ever moves `committed_used` toward its final value —
/// so every schedule ends with the admitted unit committed, the fast
/// commit granted, and both demands retired.
fn window_commit_races_scarce_admit(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        // item 0: cap 2, demand 3 — scarce. item 1: cap 1, demand 1 — abundant.
        let inst = make_window_instance(&[(2, &[0, 1, 2]), (1, &[3])]);
        let ledger = make_ledger(ctrl, &inst);
        // Setup (pre-schedule): shard 0's proposal for (item 0, user 0)
        // claimed speculatively and parked. Capacity is untouched, so the
        // grant is certain.
        if !protocol::speculative_claim(&ledger, ItemId(0), UserId(0)) {
            ctrl.flag("setup speculative claim denied on an empty item".into());
        }
        let results = run_threads(
            ctrl,
            vec![
                // Shard 1 free-runs its abundant-item move concurrently.
                Box::new(|| {
                    let mut counted = false;
                    if protocol::claim_blocked_committed(&ledger, counted, ItemId(1), UserId(3)) {
                        return 9; // committed-full on an empty item: impossible
                    }
                    if ledger.is_scarce(ItemId(1)) {
                        return 8; // demand 1 <= cap 1: abundant by construction
                    }
                    protocol::fast_commit_claim(&ledger, &mut counted, ItemId(1), UserId(3)) as u64
                }),
                // The coordinator admits the parked proposal.
                Box::new(|| {
                    protocol::admit_granted(&ledger, ItemId(0), UserId(0));
                    0u64
                }),
            ],
        );
        if results[0] != 1 {
            ctrl.flag(format!(
                "abundant fast commit returned {} racing a scarce admit (expected grant)",
                results[0]
            ));
        }
        let (cu0, spec0, d0) = (
            ledger.committed_used(ItemId(0)),
            ledger.speculative(ItemId(0)),
            ledger.demand(ItemId(0)),
        );
        let (used1, d1) = (ledger.used(ItemId(1)), ledger.demand(ItemId(1)));
        if cu0 != 1 || spec0 != 0 || d0 != 2 || used1 != 1 || d1 != 0 {
            ctrl.flag(format!(
                "post-admit state: item0 committed {cu0}/spec {spec0}/demand {d0}, \
                 item1 used {used1}/demand {d1}"
            ));
        }
    });
}

/// Scarcity window: two shards race one speculative unit of a scarce item;
/// exactly one claim is granted. The barrier-quiescent coordinator (ambient
/// after join) then admits in sequential order — when the sequentially
/// earlier proposal lost the race, the rollback path runs: steal the later
/// shard's speculative unit (claim, then release on reject), re-claim for
/// the winner, reject the loser.
fn speculative_claim_rollback(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        // One item, cap 1, demand 2 — scarce from the start.
        let inst = make_window_instance(&[(1, &[1, 2])]);
        let ledger = make_ledger(ctrl, &inst);
        let results = run_threads(
            ctrl,
            vec![
                Box::new(|| protocol::speculative_claim(&ledger, ItemId(0), UserId(1)) as u64),
                Box::new(|| protocol::speculative_claim(&ledger, ItemId(0), UserId(2)) as u64),
            ],
        );
        let (g1, g2) = (results[0] == 1, results[1] == 1);
        if g1 as u32 + g2 as u32 != 1 {
            ctrl.flag(format!(
                "speculative race: grants ({g1}, {g2}), expected exactly one"
            ));
            return;
        }
        // Coordinator resolution at the barrier. User 1's proposal is
        // sequentially first (same value, smaller candidate id).
        if g1 {
            protocol::admit_granted(&ledger, ItemId(0), UserId(1));
            // User 2 parked ungranted: no unit, no victim left — reject.
            if protocol::admit_claim(&ledger, ItemId(0), UserId(2)) {
                ctrl.flag("rejected proposal re-claimed a full item".into());
            } else {
                protocol::reject_claim(&ledger, ItemId(0), UserId(2));
            }
        } else {
            // The later shard holds the unit: steal it back for user 1.
            if protocol::admit_claim(&ledger, ItemId(0), UserId(1)) {
                ctrl.flag("admit_claim granted while a speculative unit held the capacity".into());
            } else {
                protocol::steal_speculative(&ledger, ItemId(0));
                if !protocol::admit_claim(&ledger, ItemId(0), UserId(1)) {
                    ctrl.flag("admit_claim denied after stealing the speculative unit".into());
                }
            }
            protocol::reject_claim(&ledger, ItemId(0), UserId(2));
        }
        let (cu, spec, d) = (
            ledger.committed_used(ItemId(0)),
            ledger.speculative(ItemId(0)),
            ledger.demand(ItemId(0)),
        );
        if cu != 1 || spec != 0 || d != 0 {
            ctrl.flag(format!(
                "rollback settle: committed {cu}, speculative {spec}, demand {d} \
                 (expected 1/0/0)"
            ));
        }
    });
}

/// Scarcity window: an item crosses into the scarce window (a concurrent
/// charge consumes its slack) while a shard holds an uncommitted fast-path
/// intent. The shard's denied fast commit must observe the migration — the
/// re-check sees the item scarce, the pair stays uncounted, and the move
/// parks for arbitration instead of committing.
///
/// No capacity is registered with the controller: in the schedules where
/// the fast commit wins *before* the charge lands, `used` legitimately
/// exceeds the planner-facing capacity (charges model ambient
/// consumption, not planner claims), and a registered cap would
/// false-flag them.
fn window_migration_visibility(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        // One item, cap 1, one candidate — abundant until the charge lands.
        let inst = make_window_instance(&[(1, &[0])]);
        let ledger: Ledger = SharedCapacityLedgerIn::new(&inst);
        let results = run_threads(
            ctrl,
            vec![
                // The shard: abundance check, then the fast-path commit.
                Box::new(|| {
                    let mut counted = false;
                    if ledger.is_scarce(ItemId(0)) {
                        return 3; // migrated before the check: shard parks, nothing to verify
                    }
                    if protocol::fast_commit_claim(&ledger, &mut counted, ItemId(0), UserId(0)) {
                        return 0; // committed before the charge consumed the slack
                    }
                    // Denied: the charge landed between check and commit.
                    if counted {
                        return 6; // a denied commit must leave the pair uncounted
                    }
                    if !ledger.is_scarce(ItemId(0)) {
                        return 7; // the re-check failed to observe the migration
                    }
                    // Correct re-route: claim speculatively and park. The
                    // unit is gone, so the park is ungranted.
                    protocol::speculative_claim(&ledger, ItemId(0), UserId(0)) as u64 + 1
                }),
                // Ambient consumption migrates the item into the window.
                Box::new(|| {
                    ledger.charge(ItemId(0), UserId(5));
                    0u64
                }),
            ],
        );
        match results[0] {
            0 => {
                // Fast commit won the race; the charge landed afterwards.
                let (used, d) = (ledger.used(ItemId(0)), ledger.demand(ItemId(0)));
                if used != 2 || d != 0 {
                    ctrl.flag(format!("fast-commit-first: used {used}, demand {d}"));
                }
            }
            1 => {
                // Parked ungranted. Coordinator: no unit to admit, no
                // speculative victim — reject.
                if protocol::admit_claim(&ledger, ItemId(0), UserId(0)) {
                    ctrl.flag("admit_claim granted a unit the charge consumed".into());
                } else {
                    protocol::reject_claim(&ledger, ItemId(0), UserId(0));
                }
                let (used, spec, d) = (
                    ledger.used(ItemId(0)),
                    ledger.speculative(ItemId(0)),
                    ledger.demand(ItemId(0)),
                );
                if used != 1 || spec != 0 || d != 0 {
                    ctrl.flag(format!(
                        "post-reject: used {used}, speculative {spec}, demand {d}"
                    ));
                }
            }
            2 => {
                // A speculative grant after a denial is impossible here:
                // the denial proves used == cap, and nothing releases.
                ctrl.flag("speculative claim granted after the capacity was exhausted".into());
            }
            3 => {
                let used = ledger.used(ItemId(0));
                if used != 1 {
                    ctrl.flag(format!("scarce-before-check: used {used}, expected 1"));
                }
            }
            r => ctrl.flag(format!("migration visibility: shard invariant {r} broken")),
        }
    });
}

/// DETECTOR SANITY (expected violation): the seeded window-migration
/// mutant. The buggy shard skips the window re-check after its fast
/// commit is denied and parks the move as *granted* — claiming a
/// speculative unit it never obtained. The coordinator's `admit_granted`
/// then decrements a zero `spec` cell, which the model flags as an
/// underflow (and the debug assertion inside the ledger panics, which the
/// harness also flags).
fn window_migration_defect(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        // Item 0 as in the visibility scenario; item 1 is the park
        // mailbox the buggy shard publishes through (a charge as a ready
        // flag, the speculative executor's publication pattern). No
        // controller caps, as above.
        let inst = make_window_instance(&[(1, &[0]), (2, &[1])]);
        let ledger: Ledger = SharedCapacityLedgerIn::new(&inst);
        run_threads(
            ctrl,
            vec![
                // The buggy shard.
                Box::new(|| {
                    let mut counted = false;
                    if ledger.is_scarce(ItemId(0)) {
                        return 3;
                    }
                    if protocol::fast_commit_claim(&ledger, &mut counted, ItemId(0), UserId(0)) {
                        return 0;
                    }
                    // BUG: no re-check, no speculative claim — park the
                    // denied move as if its unit were granted.
                    ledger.charge(ItemId(1), UserId(1));
                    1
                }),
                // Ambient consumption migrates item 0 into the window.
                Box::new(|| {
                    ledger.charge(ItemId(0), UserId(5));
                    0u64
                }),
                // The coordinator: admits any parked-granted proposal.
                Box::new(|| {
                    if ledger.used(ItemId(1)) >= 1 {
                        protocol::admit_granted(&ledger, ItemId(0), UserId(0));
                    }
                    0u64
                }),
            ],
        );
    });
}

/// DETECTOR SANITY (expected violation): both shards publish their held
/// move into the same plain slot without arbitration — a data race the
/// checker must find.
fn held_slot_racy(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[2], &[]);
        let ledger = make_ledger(ctrl, &inst);
        let slot = PlainVar::new(0);
        let body = |user: u32| {
            let ledger = &ledger;
            let slot = &slot;
            move || {
                slot.write(user + 1);
                ledger.charge(ItemId(0), UserId(user));
                0u64
            }
        };
        run_threads(ctrl, vec![Box::new(body(0)), Box::new(body(1))]);
    });
}

/// DETECTOR SANITY (expected violation): a release without a claim
/// underflows the counter; the model must flag it.
fn release_underflow(ctrl: &Arc<Controller>) {
    with_ambient(ctrl, None, || {
        let inst = make_instance(&[1], &[]);
        let ledger = make_ledger(ctrl, &inst);
        run_threads(
            ctrl,
            vec![
                Box::new(|| {
                    ledger.release(ItemId(0));
                    0u64
                }),
                Box::new(|| ledger.try_claim_for(ItemId(0), UserId(1)) as u64),
            ],
        );
    });
}

/// Random-schedule fuzz over larger thread/item counts: mixed
/// claim/charge/release-own programs; final counts must match the
/// exemption-aware tally of what each thread actually did.
fn fuzz_mixed(ctrl: &Arc<Controller>, program_seed: u64) {
    with_ambient(ctrl, None, || {
        let caps = [1u32, 2, 3];
        let inst = make_instance(&caps, &[(1, 7)]);
        let ledger = make_ledger(ctrl, &inst);
        // tallies[item] = (claims granted, charges by non-exempt, releases)
        let tallies: Mutex<[[u64; 3]; 3]> = Mutex::new([[0; 3]; 3]);
        let mut bodies: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = Vec::new();
        for tid in 0..4u64 {
            let ledger = &ledger;
            let tallies = &tallies;
            bodies.push(Box::new(move || {
                let mut rng = program_seed ^ (tid.wrapping_mul(0xA076_1D64_78BD_642F));
                let mut step = move || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (rng >> 33) as u32
                };
                let mut owned = [0u32; 3];
                let mut local = [[0u64; 3]; 3];
                for _ in 0..5 {
                    let item = (step() % 3) as usize;
                    // User 7 is exempt on item 1; everyone else is regular.
                    let user = if step() % 4 == 0 { 7 } else { tid as u32 };
                    match step() % 3 {
                        0 => {
                            if ledger.try_claim_for(ItemId(item as u32), UserId(user)) {
                                let exempt = item == 1 && user == 7;
                                if !exempt {
                                    owned[item] += 1;
                                    local[item][0] += 1;
                                }
                            }
                        }
                        1 => {
                            ledger.charge(ItemId(item as u32), UserId(user));
                            let exempt = item == 1 && user == 7;
                            if !exempt {
                                local[item][1] += 1;
                            }
                        }
                        _ => {
                            if owned[item] > 0 {
                                owned[item] -= 1;
                                local[item][2] += 1;
                                ledger.release(ItemId(item as u32));
                            }
                        }
                    }
                }
                let mut t = tallies.lock().unwrap_or_else(|e| e.into_inner());
                for i in 0..3 {
                    for k in 0..3 {
                        t[i][k] += local[i][k];
                    }
                }
                0u64
            }));
        }
        run_threads(ctrl, bodies);
        let t = tallies.lock().unwrap_or_else(|e| e.into_inner());
        for (i, row) in t.iter().enumerate() {
            let expected = row[0] + row[1] - row[2];
            let used = ledger.used(ItemId(i as u32)) as u64;
            if used != expected {
                ctrl.flag(format!(
                    "fuzz tally mismatch on item {i}: used {used}, expected {expected} \
                     (claims {}, charges {}, releases {})",
                    row[0], row[1], row[2]
                ));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// The suite
// ---------------------------------------------------------------------------

/// What the explorer is expected to conclude about a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expect {
    /// Every explored schedule upholds the invariants.
    Pass,
    /// At least one schedule violates them (detector sanity).
    Violation,
}

/// One entry of the check-ledger suite.
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Scheduled thread count.
    pub threads: usize,
    /// Expected verdict.
    pub expect: Expect,
    /// Run with every ordering demoted to `Relaxed` (the seeded mutant);
    /// such scenarios must be flagged, proving detector sensitivity.
    pub demote: bool,
    /// The body (one full execution under the prepared controller).
    pub body: &'static (dyn Fn(&Arc<Controller>) + Sync),
}

/// The full DFS suite, including the mutant sensitivity runs.
pub fn dfs_suite() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "claim_contention",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &claim_contention,
        },
        Scenario {
            name: "claim_contention_3t",
            threads: 3,
            expect: Expect::Pass,
            demote: false,
            body: &claim_contention_3t,
        },
        Scenario {
            name: "claim_release",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &claim_release,
        },
        Scenario {
            name: "exempt_claims",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &exempt_claims,
        },
        Scenario {
            name: "protocol_commit",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &protocol_commit,
        },
        Scenario {
            name: "visibility_chain",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &visibility_chain,
        },
        Scenario {
            name: "publication_gate",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &publication_gate,
        },
        Scenario {
            name: "held_slot_gated",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &held_slot_gated,
        },
        Scenario {
            name: "window_commit_races_scarce_admit",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &window_commit_races_scarce_admit,
        },
        Scenario {
            name: "speculative_claim_rollback",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &speculative_claim_rollback,
        },
        Scenario {
            name: "window_migration_visibility",
            threads: 2,
            expect: Expect::Pass,
            demote: false,
            body: &window_migration_visibility,
        },
        Scenario {
            name: "window_migration_defect (detector sanity)",
            threads: 3,
            expect: Expect::Violation,
            demote: false,
            body: &window_migration_defect,
        },
        Scenario {
            name: "held_slot_racy (detector sanity)",
            threads: 2,
            expect: Expect::Violation,
            demote: false,
            body: &held_slot_racy,
        },
        Scenario {
            name: "release_underflow (detector sanity)",
            threads: 2,
            expect: Expect::Violation,
            demote: false,
            body: &release_underflow,
        },
        Scenario {
            name: "visibility_chain [Relaxed mutant]",
            threads: 2,
            expect: Expect::Violation,
            demote: true,
            body: &visibility_chain,
        },
        Scenario {
            name: "publication_gate [Relaxed mutant]",
            threads: 2,
            expect: Expect::Violation,
            demote: true,
            body: &publication_gate,
        },
    ]
}

/// Runs one scenario to its verdict. Returns `Err(report)` on gate failure.
pub fn run_scenario(s: &Scenario) -> Result<Exploration, String> {
    let exploration = explore_dfs(s.threads, s.demote, DFS_BUDGET, s.body);
    match (s.expect, &exploration.violation) {
        (Expect::Pass, None) if exploration.exhaustive => Ok(exploration),
        (Expect::Pass, None) => Err(format!(
            "{}: schedule space not exhausted within {} executions — shrink the scenario",
            s.name, exploration.executions
        )),
        (Expect::Pass, Some((violations, trace))) => Err(format!(
            "{}: violated after {} executions:\n  {}\n  schedule:\n    {}",
            s.name,
            exploration.executions,
            violations.join("\n  "),
            trace.join("\n    ")
        )),
        (Expect::Violation, Some(_)) => Ok(exploration),
        (Expect::Violation, None) => Err(format!(
            "{}: detector failed to flag the seeded defect in {} executions{}",
            s.name,
            exploration.executions,
            if exploration.exhaustive {
                " (exhaustive)"
            } else {
                ""
            }
        )),
    }
}

/// Runs the seeded random-schedule fuzz stage. Returns `Err` on violation.
pub fn run_fuzz(seed: u64) -> Result<usize, String> {
    let mut total = 0;
    for program in 0..8u64 {
        let program_seed = seed.wrapping_add(program.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let body = move |ctrl: &Arc<Controller>| fuzz_mixed(ctrl, program_seed);
        let exploration = explore_random(4, false, seed ^ program, FUZZ_ITERATIONS, &body);
        total += exploration.executions;
        if let Some((violations, trace)) = exploration.violation {
            return Err(format!(
                "fuzz program {program}: violated:\n  {}\n  schedule:\n    {}",
                violations.join("\n  "),
                trace.join("\n    ")
            ));
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sensitivity regression: demoting every ledger ordering to
    /// `Relaxed` must be flagged by the checker. A detector that accepts
    /// the weakened ledger proves nothing about the real one.
    #[test]
    fn relaxed_mutant_is_flagged() {
        for body in [
            &visibility_chain as &(dyn Fn(&Arc<Controller>) + Sync),
            &publication_gate,
        ] {
            let exploration = explore_dfs(2, true, DFS_BUDGET, body);
            assert!(
                exploration.violation.is_some(),
                "the Relaxed-demoted ledger must be flagged"
            );
        }
    }

    /// The real orderings pass the same scenarios exhaustively.
    #[test]
    fn real_orderings_pass_exhaustively() {
        for body in [
            &visibility_chain as &(dyn Fn(&Arc<Controller>) + Sync),
            &publication_gate,
            &claim_contention,
            &claim_release,
            &window_commit_races_scarce_admit,
            &speculative_claim_rollback,
            &window_migration_visibility,
        ] {
            let exploration = explore_dfs(2, false, DFS_BUDGET, body);
            assert!(exploration.violation.is_none(), "real orderings must pass");
            assert!(exploration.exhaustive, "2-thread scenarios must exhaust");
        }
    }

    /// Detector sanity: seeded defects (race, underflow) are found.
    #[test]
    fn seeded_defects_are_found() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let found = [
            (&held_slot_racy as &(dyn Fn(&Arc<Controller>) + Sync), 2),
            (&release_underflow, 2),
            (&window_migration_defect, 3),
        ]
        .map(|(body, threads)| {
            explore_dfs(threads, false, DFS_BUDGET, body)
                .violation
                .is_some()
        });
        std::panic::set_hook(prev);
        assert_eq!(found, [true, true, true], "seeded defect not found");
    }

    /// The full gating suite agrees with `cargo xtask check-ledger`.
    #[test]
    fn dfs_suite_passes() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let failures: Vec<String> = dfs_suite()
            .iter()
            .filter_map(|s| run_scenario(s).err())
            .collect();
        std::panic::set_hook(prev);
        assert!(failures.is_empty(), "{}", failures.join("\n"));
    }
}
