//! The schedule-exploring concurrency model checker.
//!
//! `cargo xtask check-ledger` runs the **real** `SharedCapacityLedgerIn`
//! code (and the `revmax_algorithms::protocol` claim seam) with the cell
//! type swapped from `AtomicCell` to [`crate::cell::InstrCell`]. Every
//! shared-memory operation the ledger performs then blocks in a
//! [`Controller`] until the scheduler grants it, which makes thread
//! interleavings a *decision sequence* the checker can enumerate:
//!
//! * **DFS mode** exhaustively explores every schedule (and, for loads,
//!   every value the memory model allows the load to return) of a small
//!   scenario — 2–3 threads, a handful of operations each;
//! * **random mode** drives larger thread/item counts through seeded
//!   pseudo-random schedules.
//!
//! # The memory model
//!
//! Sequential consistency would hide exactly the bugs this checker exists
//! to find, so the controller keeps an acquire/release-aware model in the
//! style of C++11 (vector clocks + per-cell store histories):
//!
//! * every atomic cell carries its full **modification order** — the list
//!   of stores, each stamped with the storing thread's vector clock
//!   (`stamp`, for happens-before tests) and a **message clock** (`msg`,
//!   what an acquire-load of that store synchronises with; release stores
//!   publish their thread clock, RMWs additionally continue the release
//!   sequence of the store they displaced);
//! * a **load** may read any store in the modification order that is not
//!   *hidden* — a store is hidden if a later store already happens-before
//!   the loading thread — and not older than the thread's per-cell
//!   coherence floor (no thread ever reads backwards). Each eligible store
//!   is a separate DFS branch. `Acquire` loads join the store's message
//!   clock; `Relaxed` loads join nothing — which is precisely how a
//!   demoted-ordering mutant becomes observable;
//! * an **RMW** (`fetch_add`/`fetch_sub`/`compare_exchange`) always reads
//!   the latest store in the modification order (C++ guarantees RMW
//!   atomicity regardless of ordering);
//! * **plain accesses** (the model's stand-in for non-atomic shared state,
//!   e.g. a published held-slot) are checked for data races FastTrack-style:
//!   two conflicting accesses not ordered by happens-before flag a race.
//!
//! `SeqCst` is approximated as `AcqRel` (strictly weaker, so the checker
//! may report a spurious violation on SC-dependent protocols but never
//! misses an AcqRel-expressible one; the ledger uses nothing stronger than
//! `AcqRel`).
//!
//! # Built-in safety invariants
//!
//! Independent of scenario-level checks, the controller itself flags:
//!
//! * **capacity overrun** — a successful `compare_exchange` whose new value
//!   exceeds the cell's registered capacity (`try_claim` is the only CAS
//!   user in the ledger, so this is exactly "claims never exceed capacity");
//! * **release underflow** — a `fetch_sub` displacing a zero value;
//! * **data race** — conflicting unsynchronised plain accesses.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Maximum scheduled operations in one execution (runaway-loop backstop).
const MAX_OPS_PER_EXECUTION: usize = 10_000;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over the scenario's threads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VClock(Vec<u32>);

impl VClock {
    fn bottom(n: usize) -> Self {
        VClock(vec![0; n])
    }

    fn tick(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether `self` happens-before-or-equals `other` (component-wise ≤).
    fn leq(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }
}

// ---------------------------------------------------------------------------
// Operation requests
// ---------------------------------------------------------------------------

/// One shared-memory operation, as submitted by an instrumented cell or
/// plain variable.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// Atomic load with the requested ordering.
    Load(Ordering),
    /// Atomic `fetch_add(delta)`.
    FetchAdd(u32, Ordering),
    /// Atomic `fetch_sub(delta)`.
    FetchSub(u32, Ordering),
    /// Atomic strong compare-exchange.
    Cas {
        /// Expected current value.
        current: u32,
        /// Replacement value stored on success.
        new: u32,
        /// Success ordering.
        success: Ordering,
        /// Failure ordering.
        failure: Ordering,
    },
    /// Non-atomic read of a plain variable (race-checked).
    PlainRead,
    /// Non-atomic write of a plain variable (race-checked).
    PlainWrite(u32),
}

/// An operation request: which location, what operation.
#[derive(Debug, Clone)]
pub struct OpReq {
    /// Atomic-cell id for atomic ops, plain-variable id for plain ops.
    pub loc: usize,
    /// The operation.
    pub kind: OpKind,
}

/// Grant word handed back to the blocked thread: low 32 bits carry the
/// loaded/previous value, bit 32 carries the CAS success flag.
pub const GRANT_CAS_SUCCESS: u64 = 1 << 32;

// ---------------------------------------------------------------------------
// Memory state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Store {
    value: u32,
    /// The storing thread's clock at the store (happens-before stamp).
    stamp: VClock,
    /// What an acquire-load of this store joins (release/message clock).
    msg: VClock,
}

#[derive(Debug, Default)]
struct CellState {
    stores: Vec<Store>,
}

#[derive(Debug, Default)]
struct PlainState {
    value: u32,
    write_stamp: Option<(usize, VClock)>,
    /// Per-thread clock of the thread's last read (None = never read).
    read_stamps: Vec<Option<VClock>>,
}

#[derive(Debug, Default)]
struct Memory {
    nthreads: usize,
    cells: Vec<CellState>,
    plains: Vec<PlainState>,
    /// Per-thread vector clocks.
    clocks: Vec<VClock>,
    /// Per-thread, per-cell coherence floor (min readable store index).
    floors: Vec<Vec<usize>>,
}

impl Memory {
    fn reset(&mut self, nthreads: usize) {
        self.nthreads = nthreads;
        self.cells.clear();
        self.plains.clear();
        self.clocks = (0..nthreads).map(|_| VClock::bottom(nthreads)).collect();
        self.floors = vec![Vec::new(); nthreads];
    }

    fn register_cell(&mut self, initial: u32) -> usize {
        let id = self.cells.len();
        self.cells.push(CellState {
            stores: vec![Store {
                value: initial,
                stamp: VClock::bottom(self.nthreads),
                msg: VClock::bottom(self.nthreads),
            }],
        });
        for f in &mut self.floors {
            f.resize(self.cells.len(), 0);
        }
        id
    }

    fn register_plain(&mut self, initial: u32) -> usize {
        let id = self.plains.len();
        self.plains.push(PlainState {
            value: initial,
            write_stamp: None,
            read_stamps: vec![None; self.nthreads],
        });
        id
    }

    /// Store indices a load by `tid` on `cell` may legally return: everything
    /// from the newest happens-before store (older stores are hidden) up to
    /// the end of the modification order, clipped to the coherence floor.
    fn eligible(&self, tid: usize, cell: usize) -> Vec<usize> {
        let stores = &self.cells[cell].stores;
        let clock = &self.clocks[tid];
        let mut min = self.floors[tid][cell];
        for (i, s) in stores.iter().enumerate() {
            if i > min && s.stamp.leq(clock) {
                min = i;
            }
        }
        (min..stores.len()).collect()
    }
}

fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// How the scheduler chooses among the enabled options at a decision point.
#[derive(Debug)]
enum Decider {
    /// DFS replay: follow `cursors`; record the option count per depth in
    /// `counts` (new depths append a cursor of 0).
    Dfs {
        cursors: Vec<usize>,
        counts: Vec<usize>,
        depth: usize,
    },
    /// Seeded pseudo-random walk (splitmix64).
    Random { state: u64 },
}

impl Decider {
    fn decide(&mut self, options: usize) -> usize {
        match self {
            Decider::Dfs {
                cursors,
                counts,
                depth,
            } => {
                if *depth == cursors.len() {
                    cursors.push(0);
                }
                if *depth == counts.len() {
                    counts.push(options);
                } else {
                    counts[*depth] = options;
                }
                let pick = cursors[*depth];
                *depth += 1;
                debug_assert!(pick < options, "DFS cursor out of range");
                pick.min(options - 1)
            }
            Decider::Random { state } => {
                // splitmix64 step
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % options as u64) as usize
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    nthreads: usize,
    pending: Vec<Option<OpReq>>,
    grant: Vec<Option<u64>>,
    finished: Vec<bool>,
    mem: Memory,
    /// Per atomic cell: registered capacity (claims past it are violations).
    caps: Vec<Option<u32>>,
    /// Demote every requested ordering to `Relaxed` (the seeded mutant).
    demote: bool,
    decider: Decider,
    violations: Vec<String>,
    trace: Vec<String>,
    ops_executed: usize,
}

impl Inner {
    fn all_settled(&self) -> bool {
        (0..self.nthreads).all(|t| self.finished[t] || self.pending[t].is_some())
    }

    fn order(&self, requested: Ordering) -> Ordering {
        if self.demote {
            Ordering::Relaxed
        } else {
            requested
        }
    }

    /// Applies one granted operation to the memory model; returns the grant
    /// word. `choice` selects among the eligible stores for loads.
    fn apply(&mut self, tid: usize, req: &OpReq, choice: usize) -> u64 {
        self.ops_executed += 1;
        if self.ops_executed > MAX_OPS_PER_EXECUTION {
            self.violations
                .push("execution exceeded the per-run operation budget".into());
        }
        self.mem.clocks[tid].tick(tid);
        match req.kind {
            OpKind::Load(order) => {
                let order = self.order(order);
                let eligible = self.mem.eligible(tid, req.loc);
                let idx = eligible[choice.min(eligible.len() - 1)];
                let store = self.mem.cells[req.loc].stores[idx].clone();
                if acquires(order) {
                    self.mem.clocks[tid].join(&store.msg);
                }
                self.mem.floors[tid][req.loc] = self.mem.floors[tid][req.loc].max(idx);
                self.trace.push(format!(
                    "t{tid} load c{} [{order:?}] -> {} (store #{idx})",
                    req.loc, store.value
                ));
                store.value as u64
            }
            OpKind::FetchAdd(delta, order) | OpKind::FetchSub(delta, order) => {
                let sub = matches!(req.kind, OpKind::FetchSub(..));
                let order = self.order(order);
                let prev = self.rmw_read(tid, req.loc, order);
                let new = if sub {
                    if prev == 0 {
                        self.violations.push(format!(
                            "release underflow: t{tid} fetch_sub on c{} read 0",
                            req.loc
                        ));
                    }
                    prev.wrapping_sub(delta)
                } else {
                    prev.wrapping_add(delta)
                };
                self.rmw_write(tid, req.loc, new, order);
                self.trace.push(format!(
                    "t{tid} {} c{} [{order:?}] {prev} -> {new}",
                    if sub { "fetch_sub" } else { "fetch_add" },
                    req.loc
                ));
                prev as u64
            }
            OpKind::Cas {
                current,
                new,
                success,
                failure,
            } => {
                let success = self.order(success);
                let failure = self.order(failure);
                let last = self.mem.cells[req.loc]
                    .stores
                    .last()
                    .expect("cell has an initial store")
                    .value;
                if last == current {
                    let prev = self.rmw_read(tid, req.loc, success);
                    debug_assert_eq!(prev, current);
                    if let Some(cap) = self.caps[req.loc] {
                        if new > cap {
                            self.violations.push(format!(
                                "capacity overrun: t{tid} CAS on c{} stored {new} > cap {cap}",
                                req.loc
                            ));
                        }
                    }
                    self.rmw_write(tid, req.loc, new, success);
                    self.trace.push(format!(
                        "t{tid} cas c{} [{success:?}] {current} -> {new} (ok)",
                        req.loc
                    ));
                    current as u64 | GRANT_CAS_SUCCESS
                } else {
                    // Failed CAS is a load of the latest store.
                    if acquires(failure) {
                        let msg = self.mem.cells[req.loc]
                            .stores
                            .last()
                            .expect("cell has an initial store")
                            .msg
                            .clone();
                        self.mem.clocks[tid].join(&msg);
                    }
                    let idx = self.mem.cells[req.loc].stores.len() - 1;
                    self.mem.floors[tid][req.loc] = self.mem.floors[tid][req.loc].max(idx);
                    self.trace.push(format!(
                        "t{tid} cas c{} [{failure:?}] expected {current}, found {last} (fail)",
                        req.loc
                    ));
                    last as u64
                }
            }
            OpKind::PlainRead => {
                let clock = self.mem.clocks[tid].clone();
                let plain = &mut self.mem.plains[req.loc];
                if let Some((wt, ws)) = &plain.write_stamp {
                    if !ws.leq(&clock) {
                        self.violations.push(format!(
                            "data race: t{tid} read of v{} unordered with t{wt}'s write",
                            req.loc
                        ));
                    }
                }
                plain.read_stamps[tid] = Some(clock);
                self.trace
                    .push(format!("t{tid} plain-read v{} -> {}", req.loc, plain.value));
                plain.value as u64
            }
            OpKind::PlainWrite(value) => {
                let clock = self.mem.clocks[tid].clone();
                let plain = &mut self.mem.plains[req.loc];
                if let Some((wt, ws)) = &plain.write_stamp {
                    if *wt != tid && !ws.leq(&clock) {
                        self.violations.push(format!(
                            "data race: t{tid} write of v{} unordered with t{wt}'s write",
                            req.loc
                        ));
                    }
                }
                for (rt, rs) in plain.read_stamps.iter().enumerate() {
                    if rt == tid {
                        continue;
                    }
                    if let Some(rs) = rs {
                        if !rs.leq(&clock) {
                            self.violations.push(format!(
                                "data race: t{tid} write of v{} unordered with t{rt}'s read",
                                req.loc
                            ));
                        }
                    }
                }
                plain.value = value;
                plain.write_stamp = Some((tid, clock));
                self.trace
                    .push(format!("t{tid} plain-write v{} = {value}", req.loc));
                value as u64
            }
        }
    }

    /// RMW read side: always the latest store; acquire side joins its
    /// message clock (RMWs see the latest value regardless of ordering).
    fn rmw_read(&mut self, tid: usize, cell: usize, order: Ordering) -> u32 {
        let store = self.mem.cells[cell]
            .stores
            .last()
            .expect("cell has an initial store")
            .clone();
        if acquires(order) {
            self.mem.clocks[tid].join(&store.msg);
        }
        store.value
    }

    /// RMW write side: appends to the modification order, continuing the
    /// displaced store's release sequence.
    fn rmw_write(&mut self, tid: usize, cell: usize, value: u32, order: Ordering) {
        let prev_msg = self.mem.cells[cell]
            .stores
            .last()
            .expect("cell has an initial store")
            .msg
            .clone();
        let stamp = self.mem.clocks[tid].clone();
        let mut msg = prev_msg;
        if releases(order) {
            msg.join(&stamp);
        }
        let stores = &mut self.mem.cells[cell].stores;
        stores.push(Store { value, stamp, msg });
        let idx = stores.len() - 1;
        self.mem.floors[tid][cell] = self.mem.floors[tid][cell].max(idx);
    }
}

/// The schedule controller: serialises every instrumented operation and
/// drives the memory model. One controller is reused across executions
/// (`reset` between runs).
pub struct Controller {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Controller {
    /// A fresh controller (call [`Controller::reset_dfs`] or
    /// [`Controller::reset_random`] before each execution).
    pub fn new() -> Arc<Controller> {
        Arc::new(Controller {
            inner: Mutex::new(Inner {
                nthreads: 0,
                pending: Vec::new(),
                grant: Vec::new(),
                finished: Vec::new(),
                mem: Memory::default(),
                caps: Vec::new(),
                demote: false,
                decider: Decider::Random { state: 0 },
                violations: Vec::new(),
                trace: Vec::new(),
                ops_executed: 0,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Prepares the controller for one execution of `nthreads` scheduled
    /// threads, replaying `cursors` as the DFS decision prefix.
    pub fn reset_dfs(&self, nthreads: usize, cursors: Vec<usize>, demote: bool) {
        let mut g = self.lock();
        g.decider = Decider::Dfs {
            cursors,
            counts: Vec::new(),
            depth: 0,
        };
        Self::reset_common(&mut g, nthreads, demote);
    }

    /// Prepares the controller for one seeded random-schedule execution.
    pub fn reset_random(&self, nthreads: usize, seed: u64, demote: bool) {
        let mut g = self.lock();
        g.decider = Decider::Random {
            state: seed ^ 0xD6E8_FEB8_6659_FD93,
        };
        Self::reset_common(&mut g, nthreads, demote);
    }

    fn reset_common(g: &mut Inner, nthreads: usize, demote: bool) {
        g.nthreads = nthreads;
        g.pending = (0..nthreads).map(|_| None).collect();
        g.grant = (0..nthreads).map(|_| None).collect();
        g.finished = vec![false; nthreads];
        g.mem.reset(nthreads);
        g.caps.clear();
        g.demote = demote;
        g.violations.clear();
        g.trace.clear();
        g.ops_executed = 0;
    }

    /// Registers a fresh atomic cell; returns its id.
    pub fn register_cell(&self, initial: u32) -> usize {
        let mut g = self.lock();
        let id = g.mem.register_cell(initial);
        g.caps.push(None);
        id
    }

    /// Registers a fresh plain (race-checked) variable; returns its id.
    pub fn register_plain(&self, initial: u32) -> usize {
        self.lock().mem.register_plain(initial)
    }

    /// Declares the capacity of an atomic cell: any successful CAS storing a
    /// value above it is flagged (claims never exceed capacity).
    pub fn set_cap(&self, cell: usize, cap: u32) {
        self.lock().caps[cell] = Some(cap);
    }

    /// Submits an operation for thread `tid` and blocks until granted.
    pub fn perform(&self, tid: usize, req: OpReq) -> u64 {
        let mut g = self.lock();
        debug_assert!(g.pending[tid].is_none(), "thread submitted twice");
        g.pending[tid] = Some(req);
        self.cond.notify_all();
        loop {
            if let Some(result) = g.grant[tid].take() {
                return result;
            }
            g = self.cond.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Performs an operation directly, outside the schedule — only sound on
    /// the coordinating thread *before* workers start or *after* they have
    /// all finished (every op reads the latest store). This is exactly the
    /// standing of the concurrent executor's coordinator: its admissions,
    /// steals, and rejections run at the arbitration barrier with every
    /// shard parked.
    pub fn perform_direct(&self, req: OpReq) -> u64 {
        let mut g = self.lock();
        match req.kind {
            OpKind::Load(_) => {
                g.mem.cells[req.loc]
                    .stores
                    .last()
                    .expect("cell has an initial store")
                    .value as u64
            }
            OpKind::PlainRead => g.mem.plains[req.loc].value as u64,
            OpKind::PlainWrite(v) => {
                g.mem.plains[req.loc].value = v;
                v as u64
            }
            OpKind::FetchAdd(delta, _) | OpKind::FetchSub(delta, _) => {
                let sub = matches!(req.kind, OpKind::FetchSub(..));
                let prev = g.mem.cells[req.loc]
                    .stores
                    .last()
                    .expect("cell has an initial store")
                    .value;
                if sub && prev == 0 {
                    g.violations.push(format!(
                        "release underflow: ambient fetch_sub on c{} read 0",
                        req.loc
                    ));
                }
                let value = if sub {
                    prev.wrapping_sub(delta)
                } else {
                    prev.wrapping_add(delta)
                };
                let stamp = VClock::bottom(g.nthreads.max(1));
                let msg = stamp.clone();
                g.mem.cells[req.loc]
                    .stores
                    .push(Store { value, stamp, msg });
                prev as u64
            }
            // Ambient RMWs model the coordinator resolving parked proposals
            // at the arbitration barrier: every scheduled thread is
            // quiescent, so reading the latest store is the real semantics.
            OpKind::Cas { current, new, .. } => {
                let last = g.mem.cells[req.loc]
                    .stores
                    .last()
                    .expect("cell has an initial store")
                    .value;
                if last == current {
                    if let Some(cap) = g.caps[req.loc] {
                        if new > cap {
                            g.violations.push(format!(
                                "capacity overrun: ambient CAS on c{} stored {new} > cap {cap}",
                                req.loc
                            ));
                        }
                    }
                    let stamp = VClock::bottom(g.nthreads.max(1));
                    let msg = stamp.clone();
                    g.mem.cells[req.loc].stores.push(Store {
                        value: new,
                        stamp,
                        msg,
                    });
                    current as u64 | GRANT_CAS_SUCCESS
                } else {
                    last as u64
                }
            }
        }
    }

    /// Marks a scheduled thread as finished.
    pub fn finish(&self, tid: usize) {
        let mut g = self.lock();
        g.finished[tid] = true;
        self.cond.notify_all();
    }

    /// Runs the scheduler until every scheduled thread has finished. Call on
    /// the coordinating thread after spawning the workers.
    pub fn schedule_loop(&self) {
        let mut g = self.lock();
        loop {
            while !g.all_settled() {
                g = self.cond.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            let runnable: Vec<usize> = (0..g.nthreads)
                .filter(|&t| g.pending[t].is_some())
                .collect();
            if runnable.is_empty() {
                return;
            }
            // Enumerate the enabled options: one per runnable thread, times
            // one per eligible store for loads (value nondeterminism).
            let mut options: Vec<(usize, usize)> = Vec::new();
            for &t in &runnable {
                let req = g.pending[t].as_ref().expect("runnable implies pending");
                let nchoices = match req.kind {
                    OpKind::Load(_) => g.mem.eligible(t, req.loc).len(),
                    _ => 1,
                };
                for c in 0..nchoices {
                    options.push((t, c));
                }
            }
            let pick = g.decider.decide(options.len());
            let (t, choice) = options[pick];
            let req = g.pending[t].take().expect("picked thread is pending");
            let result = g.apply(t, &req, choice);
            g.grant[t] = Some(result);
            self.cond.notify_all();
        }
    }

    /// Records a scenario-level violation (final-invariant failures).
    pub fn flag(&self, message: String) {
        self.lock().violations.push(message);
    }

    /// The violations recorded during the current execution.
    pub fn violations(&self) -> Vec<String> {
        self.lock().violations.clone()
    }

    /// The operation trace of the current execution (for failure reports).
    pub fn trace(&self) -> Vec<String> {
        self.lock().trace.clone()
    }

    /// DFS bookkeeping after an execution: the decision cursors and the
    /// option count discovered at each depth.
    pub fn dfs_state(&self) -> (Vec<usize>, Vec<usize>) {
        let g = self.lock();
        match &g.decider {
            Decider::Dfs {
                cursors, counts, ..
            } => (cursors.clone(), counts.clone()),
            Decider::Random { .. } => (Vec::new(), Vec::new()),
        }
    }
}

// ---------------------------------------------------------------------------
// Exploration drivers
// ---------------------------------------------------------------------------

/// Outcome of exploring one scenario.
#[derive(Debug)]
pub struct Exploration {
    /// Executions performed.
    pub executions: usize,
    /// First violating execution, if any: (violations, schedule trace).
    pub violation: Option<(Vec<String>, Vec<String>)>,
    /// Whether the exploration covered the full schedule space (DFS ran to
    /// exhaustion) rather than stopping at a budget or first violation.
    pub exhaustive: bool,
}

/// One execution of a scenario body under a prepared controller. The body
/// builds its ledger/variables (with the controller ambient), spawns its
/// workers, runs the scheduler, and applies its final invariant checks.
pub type ScenarioBody = dyn Fn(&Arc<Controller>) + Sync;

/// Exhaustive DFS over every schedule (and load-value choice) of `body`.
/// Stops at the first violation, or after `max_executions` (in which case
/// `exhaustive` is false and the caller decides whether that is acceptable).
pub fn explore_dfs(
    nthreads: usize,
    demote: bool,
    max_executions: usize,
    body: &ScenarioBody,
) -> Exploration {
    let ctrl = Controller::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        ctrl.reset_dfs(nthreads, stack.clone(), demote);
        body(&ctrl);
        executions += 1;
        let violations = ctrl.violations();
        if !violations.is_empty() {
            return Exploration {
                executions,
                violation: Some((violations, ctrl.trace())),
                exhaustive: false,
            };
        }
        if executions >= max_executions {
            return Exploration {
                executions,
                violation: None,
                exhaustive: false,
            };
        }
        // Advance the DFS stack to the next unexplored decision sequence.
        let (cursors, counts) = ctrl.dfs_state();
        stack = cursors;
        loop {
            match stack.len() {
                0 => {
                    return Exploration {
                        executions,
                        violation: None,
                        exhaustive: true,
                    }
                }
                depth => {
                    let last = depth - 1;
                    stack[last] += 1;
                    if stack[last] < counts[last] {
                        break;
                    }
                    stack.pop();
                }
            }
        }
    }
}

/// Seeded random-schedule fuzzing: `iterations` executions with schedules
/// (and load-value choices) drawn from `seed`.
pub fn explore_random(
    nthreads: usize,
    demote: bool,
    seed: u64,
    iterations: usize,
    body: &ScenarioBody,
) -> Exploration {
    let ctrl = Controller::new();
    for i in 0..iterations {
        ctrl.reset_random(nthreads, seed.wrapping_add(i as u64), demote);
        body(&ctrl);
        let violations = ctrl.violations();
        if !violations.is_empty() {
            return Exploration {
                executions: i + 1,
                violation: Some((violations, ctrl.trace())),
                exhaustive: false,
            };
        }
    }
    Exploration {
        executions: iterations,
        violation: None,
        exhaustive: false,
    }
}
