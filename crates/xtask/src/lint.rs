//! `cargo xtask lint` — the repo-invariant linter.
//!
//! Five mechanical rules over the lexed source model (see [`crate::lex`]);
//! each encodes an invariant the workspace documents elsewhere, so drift
//! between code and contract fails CI instead of rotting silently:
//!
//! 1. **Atomics confinement** — atomic types, `sync::atomic` paths, and the
//!    five atomic `Ordering::` variants appear only in the capacity ledger
//!    (`crates/core/src/revenue/ledger.rs`), the analysis toolchain itself,
//!    and the vendored shims. All cross-thread protocol lives behind the
//!    ledger's `LedgerCell` surface, where `cargo xtask check-ledger` can
//!    model-check it.
//! 2. **Ordering contract coverage** — every ledger function that names an
//!    atomic ordering is documented (function and ordering both appear as
//!    code spans) in `docs/concurrency.md`, and both the ledger and
//!    ARCHITECTURE.md link that contract.
//! 3. **Deprecation discipline** — `#[allow(deprecated)]` appears only on
//!    compat shims (the annotated item mentions a workspace item that is
//!    itself declared `#[deprecated]`) or in test code.
//! 4. **No stray panics** — non-test library code of `core`, `algorithms`,
//!    and `serve` contains no bare `.unwrap()` and no `panic!` (the
//!    documented-invariant style is `.expect("why this cannot fail")`).
//! 5. **Env-knob registry** — every `REVMAX_*` literal in non-test sources
//!    is listed in `docs/env.md` and vice versa, and environment reads go
//!    through `revmax_core::env` (no direct `std::env::var` outside it and
//!    the vendored shims).

use crate::lex::{self, SourceModel};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A lexed workspace file.
struct File {
    /// Path relative to the workspace root, with `/` separators.
    rel: String,
    /// Raw source text.
    raw: String,
    /// Lexed model (blanked code + string literals).
    model: SourceModel,
    /// `#[cfg(test)]` byte ranges within the blanked code.
    test_regions: Vec<std::ops::Range<usize>>,
}

impl File {
    fn is_integration_test(&self) -> bool {
        self.rel.contains("/tests/") || self.rel.contains("/benches/")
    }

    fn in_test_code(&self, offset: usize) -> bool {
        self.is_integration_test() || lex::in_regions(&self.test_regions, offset)
    }

    fn at(&self, offset: usize) -> String {
        format!("{}:{}", self.rel, lex::line_of(&self.model.code, offset))
    }
}

/// Runs every rule; prints violations and returns the gate's exit code.
pub fn run() -> ExitCode {
    let root = workspace_root();
    let files = load_files(&root);
    let mut violations = Vec::new();

    atomics_confinement(&files, &mut violations);
    ordering_contract(&root, &files, &mut violations);
    deprecation_discipline(&files, &mut violations);
    no_stray_panics(&files, &mut violations);
    env_registry(&root, &files, &mut violations);

    if violations.is_empty() {
        println!(
            "lint: {} files checked, all repo invariants hold",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("lint: {v}");
        }
        println!("lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root (xtask lives at `<root>/crates/xtask`).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Lexes every workspace `.rs` file (crates, the facade, examples, vendor).
fn load_files(root: &Path) -> Vec<File> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "examples", "vendor"] {
        collect_rs(&root.join(top), &mut paths);
    }
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let raw =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
            let rel = p
                .strip_prefix(root)
                .expect("collected under the root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let model = lex::lex(&raw);
            let test_regions = lex::test_regions(&model.code);
            File {
                rel,
                raw,
                model,
                test_regions,
            }
        })
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: atomics confinement
// ---------------------------------------------------------------------------

const LEDGER: &str = "crates/core/src/revenue/ledger.rs";

const ATOMIC_TOKENS: &[&str] = &[
    "sync::atomic",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn atomics_allowed(rel: &str) -> bool {
    rel == LEDGER || rel.starts_with("crates/xtask/") || rel.starts_with("vendor/")
}

fn atomics_confinement(files: &[File], violations: &mut Vec<String>) {
    for f in files {
        if atomics_allowed(&f.rel) {
            continue;
        }
        for token in ATOMIC_TOKENS {
            for at in lex::token_offsets(&f.model.code, token) {
                violations.push(format!(
                    "atomics-confinement: {}: `{token}` outside the capacity ledger \
                     (all atomics live in {LEDGER}; see docs/concurrency.md)",
                    f.at(at)
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: ordering contract coverage
// ---------------------------------------------------------------------------

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn ordering_contract(root: &Path, files: &[File], violations: &mut Vec<String>) {
    let Some(ledger) = files.iter().find(|f| f.rel == LEDGER) else {
        violations.push(format!("ordering-contract: {LEDGER} not found"));
        return;
    };
    let doc_path = root.join("docs/concurrency.md");
    let doc = match std::fs::read_to_string(&doc_path) {
        Ok(d) => d,
        Err(_) => {
            violations.push(
                "ordering-contract: docs/concurrency.md is missing (the ledger's \
                 memory-ordering contract)"
                    .into(),
            );
            return;
        }
    };

    if !ledger.raw.contains("docs/concurrency.md") {
        violations.push(format!(
            "ordering-contract: {LEDGER} does not link docs/concurrency.md"
        ));
    }
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap_or_default();
    if !arch.contains("docs/concurrency.md") {
        violations
            .push("ordering-contract: ARCHITECTURE.md does not link docs/concurrency.md".into());
    }

    let code = &ledger.model.code;
    let fn_offsets = lex::token_offsets(code, "fn");
    for at in lex::token_offsets(code, "Ordering::") {
        let variant = lex::ident_at(code, at + "Ordering::".len());
        if !ORDERING_VARIANTS.contains(&variant) {
            continue;
        }
        let enclosing = fn_offsets
            .iter()
            .rev()
            .find(|&&f| f < at)
            .map(|&f| {
                let mut p = f + 2;
                let bytes = code.as_bytes();
                while p < bytes.len() && bytes[p].is_ascii_whitespace() {
                    p += 1;
                }
                lex::ident_at(code, p)
            })
            .unwrap_or("");
        for span in [variant, enclosing] {
            if !span.is_empty() && !doc.contains(&format!("`{span}`")) {
                violations.push(format!(
                    "ordering-contract: {}: `{span}` (at an `Ordering::{variant}` use) \
                     is not covered in docs/concurrency.md",
                    ledger.at(at)
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: deprecation discipline
// ---------------------------------------------------------------------------

const ITEM_KEYWORDS: &[&str] = &[
    "pub", "crate", "in", "fn", "struct", "enum", "trait", "type", "mod", "const", "static", "use",
    "unsafe", "async", "extern", "impl", "dyn", "super", "self",
];

/// Names of items declared `#[deprecated]` anywhere in the workspace.
fn deprecated_names(files: &[File]) -> Vec<String> {
    let mut names = Vec::new();
    for f in files {
        let code = &f.model.code;
        for at in lex::token_offsets(code, "#[deprecated") {
            // Skip past this attribute (bracket-matched), any stacked
            // attributes, then take the first non-keyword identifier of the
            // item (its name, for fn/struct/enum/type; good enough for the
            // shapes the workspace uses).
            let bytes = code.as_bytes();
            let mut p = at + 1; // at '['
            let mut depth = 0usize;
            while p < bytes.len() {
                match bytes[p] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            p += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                p += 1;
            }
            loop {
                while p < bytes.len() && bytes[p].is_ascii_whitespace() {
                    p += 1;
                }
                if p < bytes.len() && bytes[p] == b'#' {
                    let mut d = 0usize;
                    while p < bytes.len() {
                        match bytes[p] {
                            b'[' => d += 1,
                            b']' => {
                                d -= 1;
                                if d == 0 {
                                    p += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        p += 1;
                    }
                } else {
                    break;
                }
            }
            let snippet_end = (p + 240).min(code.len());
            let mut q = p;
            while q < snippet_end {
                let b = bytes[q];
                if b.is_ascii_alphabetic() || b == b'_' {
                    let ident = lex::ident_at(code, q);
                    if !ITEM_KEYWORDS.contains(&ident) {
                        names.push(ident.to_string());
                        break;
                    }
                    q += ident.len();
                } else {
                    q += 1;
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

fn deprecation_discipline(files: &[File], violations: &mut Vec<String>) {
    let names = deprecated_names(files);
    for f in files {
        let code = &f.model.code;
        for at in lex::token_offsets(code, "#[allow(deprecated)]") {
            if f.in_test_code(at) {
                continue;
            }
            let window = &code[at..(at + 500).min(code.len())];
            let shims_deprecated_item = names.iter().any(|n| window.contains(n.as_str()));
            if !shims_deprecated_item {
                violations.push(format!(
                    "deprecation-discipline: {}: #[allow(deprecated)] on an item that \
                     mentions no `#[deprecated]` workspace item — allowed only on compat \
                     shims and in tests",
                    f.at(at)
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: no stray panics in library code
// ---------------------------------------------------------------------------

fn library_scope(rel: &str) -> bool {
    [
        "crates/core/src/",
        "crates/algorithms/src/",
        "crates/serve/src/",
        "crates/http/src/",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
}

fn no_stray_panics(files: &[File], violations: &mut Vec<String>) {
    for f in files {
        if !library_scope(&f.rel) {
            continue;
        }
        for (token, advice) in [
            (
                ".unwrap()",
                "use .expect(\"documented invariant\") or handle the None/Err",
            ),
            (
                "panic!",
                "return an error or use .expect with the invariant",
            ),
        ] {
            for at in lex::token_offsets(&f.model.code, token) {
                if f.in_test_code(at) {
                    continue;
                }
                violations.push(format!(
                    "no-stray-panics: {}: `{token}` in non-test library code — {advice}",
                    f.at(at)
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: env-knob registry
// ---------------------------------------------------------------------------

const ENV_IMPL: &str = "crates/core/src/env.rs";

/// Extracts `REVMAX_*` names from text.
fn revmax_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find("REVMAX_") {
        let at = from + rel;
        let mut end = at + "REVMAX_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if end > at + "REVMAX_".len() {
            let name = text[at..end].trim_end_matches('_');
            // REVMAX_TEST_* is the documented namespace for test-local
            // variables; it is convention, not a knob, so it stays out of
            // the registry in both directions.
            if !name.starts_with("REVMAX_TEST") {
                out.push(name.to_string());
            }
        }
        from = end;
    }
    out
}

fn env_registry(root: &Path, files: &[File], violations: &mut Vec<String>) {
    let doc = match std::fs::read_to_string(root.join("docs/env.md")) {
        Ok(d) => d,
        Err(_) => {
            violations
                .push("env-registry: docs/env.md is missing (the REVMAX_* knob registry)".into());
            return;
        }
    };
    let mut registered = revmax_names(&doc);
    registered.sort();
    registered.dedup();

    let mut used: Vec<(String, String)> = Vec::new(); // (name, where)
    for f in files {
        if f.is_integration_test() {
            continue;
        }
        // Line ranges of test regions, to scope the string scan.
        let test_lines: Vec<(usize, usize)> = f
            .test_regions
            .iter()
            .map(|r| {
                (
                    lex::line_of(&f.model.code, r.start),
                    lex::line_of(&f.model.code, r.end),
                )
            })
            .collect();
        for (line, text) in &f.model.strings {
            if test_lines.iter().any(|&(s, e)| (s..=e).contains(line)) {
                continue;
            }
            for name in revmax_names(text) {
                used.push((name, format!("{}:{line}", f.rel)));
            }
        }
        // Direct std::env reads bypass the registry's parsing contract.
        if f.rel == ENV_IMPL || f.rel.starts_with("vendor/") {
            continue;
        }
        for token in ["std::env::var(", "std::env::var_os("] {
            for at in lex::token_offsets(&f.model.code, token) {
                violations.push(format!(
                    "env-registry: {}: direct `{token}..)` — read knobs through \
                     `revmax_core::env` (see docs/env.md)",
                    f.at(at)
                ));
            }
        }
    }

    for (name, at) in &used {
        if !registered.contains(name) {
            violations.push(format!(
                "env-registry: {at}: `{name}` is not listed in docs/env.md"
            ));
        }
    }
    for name in &registered {
        if !used.iter().any(|(n, _)| n == name) {
            violations.push(format!(
                "env-registry: docs/env.md lists `{name}` but no source references it"
            ));
        }
    }
}
