//! `cargo xtask` — the REVMAX analysis toolchain.
//!
//! Dependency-free (per the vendor policy) workspace tooling, wired as a
//! cargo alias in `.cargo/config.toml`:
//!
//! * `cargo xtask lint` — repo-invariant linter: a source-model pass over
//!   every workspace `.rs` file enforcing atomics confinement, the
//!   memory-ordering contract doc, deprecation discipline, panic-free
//!   library code, and the `REVMAX_*` env-knob registry (see
//!   `docs/env.md`).
//! * `cargo xtask check-ledger` — ledger model checker: exhaustive DFS
//!   schedule exploration of the shared capacity ledger's
//!   claim/charge/release protocol under an acquire/release-aware memory
//!   model, detector-sanity scenarios, a `Relaxed`-demotion mutant
//!   sensitivity gate, and seeded random-schedule fuzzing.
//! * `cargo xtask fuzz-http` — seeded byte-mutation fuzzing of the HTTP
//!   front end's untrusted-input parsers (`revmax_http::request` and the
//!   shared JSON codec); `--seed <n>` replays one seed, `--iterations <n>`
//!   scales the per-seed input count.
//!
//! Both commands exit non-zero on failure and run as gating CI jobs; see
//! ARCHITECTURE.md § "Analysis toolchain".

mod cell;
mod lex;
mod lint;
mod model;
mod scenarios;

use std::process::ExitCode;

/// Seed for the random-schedule fuzz stage; override with
/// `--fuzz-seed <n>` to reproduce a CI failure locally.
const DEFAULT_FUZZ_SEED: u64 = 0x5EED_1E46_E4C0_FFEE;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  lint                     repo-invariant linter (atomics confinement,");
    eprintln!("                           ordering contract, deprecation discipline,");
    eprintln!("                           panic-free library code, env-knob registry)");
    eprintln!("  check-ledger             ledger model checker (exhaustive 2-3 thread");
    eprintln!("                           schedules, mutant sensitivity, seeded fuzz)");
    eprintln!("    --fuzz-seed <n>        override the random-schedule fuzz seed");
    eprintln!("  fuzz-http                seeded byte-mutation fuzzing of the HTTP head");
    eprintln!("                           parser and the JSON codec");
    eprintln!("    --seed <n>             fuzz a single seed (default: a fixed trio)");
    eprintln!("    --iterations <n>       mutated inputs per parser per seed");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(),
        Some("check-ledger") => {
            let mut seed = DEFAULT_FUZZ_SEED;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--fuzz-seed" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            check_ledger(seed)
        }
        Some("fuzz-http") => {
            let mut seed = None;
            let mut iterations = revmax_http::fuzz::DEFAULT_ITERATIONS;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => seed = Some(v),
                        None => return usage(),
                    },
                    "--iterations" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => iterations = v,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            fuzz_http(seed, iterations)
        }
        _ => usage(),
    }
}

/// Default seed trio for `fuzz-http` when `--seed` is not given — fixed so
/// CI runs are reproducible.
const FUZZ_HTTP_SEEDS: [u64; 3] = [1, 2, 0xC0FFEE];

/// Runs the seeded parser fuzz gate: every mutated input must parse or be
/// rejected with a structured error; a panic aborts the process (non-zero
/// exit), which is exactly the failure CI should see.
fn fuzz_http(seed: Option<u64>, iterations: usize) -> ExitCode {
    let seeds: Vec<u64> = match seed {
        Some(s) => vec![s],
        None => FUZZ_HTTP_SEEDS.to_vec(),
    };
    println!("fuzz-http: {iterations} mutated inputs per parser per seed");
    for seed in seeds {
        let http = revmax_http::fuzz::fuzz_http_parser(seed, iterations);
        println!(
            "  ok   http head parser   seed {seed:#x}: {} accepted / {} rejected",
            http.accepted, http.rejected
        );
        let json = revmax_http::fuzz::fuzz_json_codec(seed, iterations);
        println!(
            "  ok   json codec         seed {seed:#x}: {} accepted / {} rejected",
            json.accepted, json.rejected
        );
    }
    println!("fuzz-http: all inputs parsed or rejected cleanly");
    ExitCode::SUCCESS
}

/// Runs the full check-ledger gate: DFS suite (pass, detector-sanity, and
/// mutant scenarios), then the seeded random fuzz.
fn check_ledger(fuzz_seed: u64) -> ExitCode {
    println!("check-ledger: exploring shared-ledger schedules");
    // Worker panics are expected in detector-sanity scenarios (the ledger's
    // own debug assertions fire under exploration); they are caught and
    // flagged as violations, so the default hook's backtrace is pure noise.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failed = false;
    for scenario in scenarios::dfs_suite() {
        match scenarios::run_scenario(&scenario) {
            Ok(exploration) => {
                println!(
                    "  ok   {:<40} {} schedules{}{}",
                    scenario.name,
                    exploration.executions,
                    if exploration.exhaustive {
                        " (exhaustive)"
                    } else {
                        ""
                    },
                    match scenario.expect {
                        scenarios::Expect::Violation => ", defect flagged as required",
                        scenarios::Expect::Pass => "",
                    },
                );
            }
            Err(report) => {
                failed = true;
                println!("  FAIL {report}");
            }
        }
    }
    match scenarios::run_fuzz(fuzz_seed) {
        Ok(executions) => println!(
            "  ok   {:<40} {executions} schedules (seed {fuzz_seed:#x})",
            "fuzz_mixed (random)"
        ),
        Err(report) => {
            failed = true;
            println!("  FAIL fuzz_mixed (seed {fuzz_seed:#x}): {report}");
        }
    }
    std::panic::set_hook(default_hook);
    if failed {
        println!("check-ledger: FAILED");
        ExitCode::FAILURE
    } else {
        println!("check-ledger: all scenarios passed");
        ExitCode::SUCCESS
    }
}
