//! `cargo xtask` — the REVMAX analysis toolchain.
//!
//! Dependency-free (per the vendor policy) workspace tooling, wired as a
//! cargo alias in `.cargo/config.toml`:
//!
//! * `cargo xtask lint` — repo-invariant linter: a source-model pass over
//!   every workspace `.rs` file enforcing atomics confinement, the
//!   memory-ordering contract doc, deprecation discipline, panic-free
//!   library code, and the `REVMAX_*` env-knob registry (see
//!   `docs/env.md`).
//! * `cargo xtask check-ledger` — ledger model checker: exhaustive DFS
//!   schedule exploration of the shared capacity ledger's
//!   claim/charge/release protocol under an acquire/release-aware memory
//!   model, detector-sanity scenarios, a `Relaxed`-demotion mutant
//!   sensitivity gate, and seeded random-schedule fuzzing.
//!
//! Both commands exit non-zero on failure and run as gating CI jobs; see
//! ARCHITECTURE.md § "Analysis toolchain".

mod cell;
mod lex;
mod lint;
mod model;
mod scenarios;

use std::process::ExitCode;

/// Seed for the random-schedule fuzz stage; override with
/// `--fuzz-seed <n>` to reproduce a CI failure locally.
const DEFAULT_FUZZ_SEED: u64 = 0x5EED_1E46_E4C0_FFEE;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask <command>");
    eprintln!();
    eprintln!("commands:");
    eprintln!("  lint                     repo-invariant linter (atomics confinement,");
    eprintln!("                           ordering contract, deprecation discipline,");
    eprintln!("                           panic-free library code, env-knob registry)");
    eprintln!("  check-ledger             ledger model checker (exhaustive 2-3 thread");
    eprintln!("                           schedules, mutant sensitivity, seeded fuzz)");
    eprintln!("    --fuzz-seed <n>        override the random-schedule fuzz seed");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(),
        Some("check-ledger") => {
            let mut seed = DEFAULT_FUZZ_SEED;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--fuzz-seed" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => seed = v,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            check_ledger(seed)
        }
        _ => usage(),
    }
}

/// Runs the full check-ledger gate: DFS suite (pass, detector-sanity, and
/// mutant scenarios), then the seeded random fuzz.
fn check_ledger(fuzz_seed: u64) -> ExitCode {
    println!("check-ledger: exploring shared-ledger schedules");
    // Worker panics are expected in detector-sanity scenarios (the ledger's
    // own debug assertions fire under exploration); they are caught and
    // flagged as violations, so the default hook's backtrace is pure noise.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failed = false;
    for scenario in scenarios::dfs_suite() {
        match scenarios::run_scenario(&scenario) {
            Ok(exploration) => {
                println!(
                    "  ok   {:<40} {} schedules{}{}",
                    scenario.name,
                    exploration.executions,
                    if exploration.exhaustive {
                        " (exhaustive)"
                    } else {
                        ""
                    },
                    match scenario.expect {
                        scenarios::Expect::Violation => ", defect flagged as required",
                        scenarios::Expect::Pass => "",
                    },
                );
            }
            Err(report) => {
                failed = true;
                println!("  FAIL {report}");
            }
        }
    }
    match scenarios::run_fuzz(fuzz_seed) {
        Ok(executions) => println!(
            "  ok   {:<40} {executions} schedules (seed {fuzz_seed:#x})",
            "fuzz_mixed (random)"
        ),
        Err(report) => {
            failed = true;
            println!("  FAIL fuzz_mixed (seed {fuzz_seed:#x}): {report}");
        }
    }
    std::panic::set_hook(default_hook);
    if failed {
        println!("check-ledger: FAILED");
        ExitCode::FAILURE
    } else {
        println!("check-ledger: all scenarios passed");
        ExitCode::SUCCESS
    }
}
