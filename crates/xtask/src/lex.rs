//! A source-model lexer for the repo-invariant linter.
//!
//! `cargo xtask lint` reasons about *code tokens*, not raw text: a forbidden
//! token inside a comment, doc example, or string literal is not a
//! violation. This module produces that model — a **blanked** copy of each
//! source file in which comments and literal contents are replaced by
//! spaces (byte offsets and line numbers preserved), plus the extracted
//! string literals (for the `REVMAX_*` registry check) and the file's
//! `#[cfg(test)]` regions (lint rules scoped to non-test code).
//!
//! The lexer handles line/block comments (nested), string and raw-string
//! literals (any `#` depth, with `b`/`c` prefixes), char literals, and
//! lifetimes; that is the full set of Rust constructs that can embed
//! token-lookalike text.

/// The lexed model of one source file.
pub struct SourceModel {
    /// The source with comments and literal contents blanked to spaces
    /// (newlines kept, so offsets and line numbers match the original).
    pub code: String,
    /// String-literal contents: `(1-based line of the opening quote, text)`.
    pub strings: Vec<(usize, String)>,
}

/// Lexes a source file into its model.
pub fn lex(src: &str) -> SourceModel {
    let b = src.as_bytes();
    let mut code = Vec::with_capacity(b.len());
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `byte` through, tracking lines.
    macro_rules! keep {
        ($byte:expr) => {{
            let byte = $byte;
            if byte == b'\n' {
                line += 1;
            }
            code.push(byte);
        }};
    }
    // Blanks `byte` (newlines survive so line numbers stay aligned).
    macro_rules! blank {
        ($byte:expr) => {{
            let byte = $byte;
            if byte == b'\n' {
                line += 1;
                code.push(b'\n');
            } else {
                code.push(b' ');
            }
        }};
    }

    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    blank!(b[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        blank!(b[i]);
                        blank!(b[i + 1]);
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        blank!(b[i]);
                        blank!(b[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank!(b[i]);
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let mut text = Vec::new();
                keep!(b'"');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            text.push(b[i]);
                            text.push(b[i + 1]);
                            blank!(b[i]);
                            blank!(b[i + 1]);
                            i += 2;
                        }
                        b'"' => {
                            keep!(b'"');
                            i += 1;
                            break;
                        }
                        c => {
                            text.push(c);
                            blank!(c);
                            i += 1;
                        }
                    }
                }
                strings.push((start_line, String::from_utf8_lossy(&text).into_owned()));
            }
            b'r' | b'b' | b'c' if is_literal_prefix(b, i) => {
                // Raw string r"..." / r#"..."# (optionally b/c-prefixed), or
                // byte string b"...": delegate by shape.
                let mut j = i;
                let mut raw = false;
                while j < b.len() && matches!(b[j], b'r' | b'b' | b'c') {
                    if b[j] == b'r' {
                        raw = true;
                    }
                    keep!(b[j]);
                    j += 1;
                }
                let mut hashes = 0usize;
                while raw && j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    keep!(b'#');
                    j += 1;
                }
                debug_assert!(j < b.len() && b[j] == b'"');
                let start_line = line;
                keep!(b'"');
                j += 1;
                let mut text = Vec::new();
                'raw: while j < b.len() {
                    if b[j] == b'"' && (!raw || closes_raw(b, j, hashes)) {
                        keep!(b'"');
                        j += 1;
                        for _ in 0..hashes {
                            keep!(b'#');
                            j += 1;
                        }
                        break 'raw;
                    }
                    if !raw && b[j] == b'\\' && j + 1 < b.len() {
                        text.push(b[j]);
                        text.push(b[j + 1]);
                        blank!(b[j]);
                        blank!(b[j + 1]);
                        j += 2;
                        continue;
                    }
                    text.push(b[j]);
                    blank!(b[j]);
                    j += 1;
                }
                strings.push((start_line, String::from_utf8_lossy(&text).into_owned()));
                i = j;
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes with a
                // quote after one (possibly escaped) character; a lifetime
                // never does.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    keep!(b'\'');
                    blank!(b[i + 1]);
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        blank!(b[i]);
                        i += 1;
                    }
                    if i < b.len() {
                        keep!(b'\'');
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    keep!(b'\'');
                    blank!(b[i + 1]);
                    keep!(b'\'');
                    i += 3;
                } else {
                    // Lifetime: keep as code.
                    keep!(b'\'');
                    i += 1;
                }
            }
            c => {
                keep!(c);
                i += 1;
            }
        }
    }

    SourceModel {
        code: String::from_utf8_lossy(&code).into_owned(),
        strings,
    }
}

/// Whether the `r`/`b`/`c` run starting at `i` prefixes a string literal
/// (and is not just an identifier beginning with those letters).
fn is_literal_prefix(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    let mut raw = false;
    while j < b.len() && matches!(b[j], b'r' | b'b' | b'c') {
        if b[j] == b'r' {
            raw = true;
        }
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    while raw && j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Whether the quote at `j` closes a raw string with `hashes` trailing `#`s.
fn closes_raw(b: &[u8], j: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| b.get(j + k) == Some(&b'#'))
}

/// 1-based line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Byte ranges of `#[cfg(test)] mod … { … }` blocks in blanked code.
pub fn test_regions(code: &str) -> Vec<std::ops::Range<usize>> {
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find("#[cfg(test)]") {
        let attr = from + rel;
        from = attr + "#[cfg(test)]".len();
        // Only a following `mod` introduces a region; `#[cfg(test)] use …`
        // guards a single import and excludes nothing.
        let Some(brace_rel) = code[from..].find('{') else {
            break;
        };
        let brace = from + brace_rel;
        if !code[from..brace].contains("mod") {
            continue;
        }
        let mut depth = 0usize;
        let mut end = code.len();
        for (k, c) in code[brace..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = brace + k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push(attr..end);
        from = end;
    }
    regions
}

/// Whether `offset` falls inside any of `regions`.
pub fn in_regions(regions: &[std::ops::Range<usize>], offset: usize) -> bool {
    regions.iter().any(|r| r.contains(&offset))
}

/// Every occurrence of `token` in `code` at a token boundary (the
/// surrounding bytes are not identifier characters), as byte offsets.
pub fn token_offsets(code: &str, token: &str) -> Vec<usize> {
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let at = from + rel;
        from = at + 1;
        // A match starting or ending mid-identifier (e.g. `set_var` when
        // searching for `var`) is not a token occurrence; the boundary
        // check only applies where the token edge is an identifier char.
        let first = token.as_bytes()[0];
        let last = token.as_bytes()[token.len() - 1];
        let before_ok = !is_ident(first) || at == 0 || !is_ident(bytes[at - 1]);
        let after = bytes.get(at + token.len()).copied();
        let after_ok = !is_ident(last) || !after.is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

/// The identifier starting at `offset` (empty if none).
pub fn ident_at(code: &str, offset: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = offset;
    while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
        end += 1;
    }
    &code[offset..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings_but_keeps_lines() {
        let src = "let a = 1; // Ordering::SeqCst\nlet s = \"AtomicU32\";\n";
        let m = lex(src);
        assert_eq!(m.code.len(), src.len());
        assert!(!m.code.contains("SeqCst"));
        assert!(!m.code.contains("AtomicU32"));
        assert_eq!(m.strings, vec![(2, "AtomicU32".to_string())]);
        assert_eq!(line_of(m.code.as_str(), m.code.find("let s").unwrap()), 2);
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let r = r#\"panic!(\"#; }";
        let m = lex(src);
        assert!(m.code.contains("fn f<'a>"));
        assert!(!m.code.contains("panic!"));
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].1, "panic!(");
    }

    #[test]
    fn finds_test_regions() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let m = lex(src);
        let regions = test_regions(&m.code);
        assert_eq!(regions.len(), 1);
        let unwrap_at = m.code.find(".unwrap").unwrap();
        assert!(in_regions(&regions, unwrap_at));
        assert!(!in_regions(&regions, m.code.find("fn c").unwrap()));
    }

    #[test]
    fn token_offsets_respect_boundaries() {
        let code = "std::env::set_var(x); std::env::var(x); x.unwrap_or(); x.unwrap();";
        assert_eq!(token_offsets(code, "std::env::var(").len(), 1);
        assert_eq!(token_offsets(code, ".unwrap()").len(), 1);
    }
}
