//! # revmax-core
//!
//! Core model of **REVMAX** — the revenue-maximizing dynamic recommendation
//! framework of *"Show Me the Money: Dynamic Recommendations for Revenue
//! Maximization"* (Lu, Chen, Li, Lakshmanan; PVLDB 7(14), 2014).
//!
//! This crate contains everything the optimization problem is defined over:
//!
//! * [`Instance`] — users, items, item classes, the time horizon, exogenous
//!   prices `p(i, t)`, capacities `q_i`, saturation factors `β_i`, and the
//!   sparse primitive adoption probabilities `q(u, i, t)`;
//! * [`Strategy`] — a set of (user, item, time) [`Triple`]s together with
//!   validation of the display and capacity constraints;
//! * [`mod@revenue`] — the dynamic revenue model: memory, saturation and
//!   competition effects (Definition 1), the expected revenue `Rev(S)`
//!   (Definition 2), marginal revenue (Definition 3), and the incremental
//!   evaluator ([`IncrementalRevenue`]) that the greedy algorithms in
//!   `revmax-algorithms` are built on;
//! * [`effective`] — the relaxed objective of R-REVMAX with the capacity
//!   constraint pushed into the *effective* dynamic adoption probability
//!   (Definition 4), plus an exact Poisson-binomial capacity oracle;
//! * [`reductions`] — the executable form of the NP-hardness reduction from
//!   Restricted Timetable Design (Theorem 1), used in tests;
//! * [`events`] — realized [`AdoptionEvent`]s and the residual-instance
//!   construction ([`residual_instance`]) that conditions an instance on a
//!   realized prefix, the model layer behind dynamic replanning
//!   (`revmax_serve::PlanSession`);
//! * [`mod@env`] — the shared `REVMAX_*` environment-knob parsing used by every
//!   `from_env` constructor and bench emitter in the workspace;
//! * [`mod@json`] / [`wire`] — the dependency-free JSON reader/writer
//!   (extracted from the original [`Strategy`] codec) and the wire codecs
//!   for [`Instance`], [`Strategy`], and [`AdoptionEvent`] behind the
//!   `revmax-http` protocol surface.
//!
//! The optimization algorithms themselves (Global/Sequential/Randomized
//! greedy, the baselines, the local-search approximation, the Max-DCS special
//! case) live in the `revmax-algorithms` crate; data generation and the
//! substrate recommender/pricing models live in `revmax-data`,
//! `revmax-recsys`, and `revmax-pricing`.
//!
//! ## Quick example
//!
//! ```
//! use revmax_core::{InstanceBuilder, IncrementalRevenue, Triple};
//!
//! // One user, one item, two days; the price drops on day 2.
//! let mut b = InstanceBuilder::new(1, 1, 2);
//! b.display_limit(1)
//!     .beta(0, 0.1)
//!     .prices(0, &[1.0, 0.95])
//!     .candidate(0, 0, &[0.5, 0.6], 0.0);
//! let inst = b.build().unwrap();
//!
//! let mut eval = IncrementalRevenue::new(&inst);
//! let day2 = Triple::new(0, 0, 2);
//! assert!(eval.marginal_revenue(day2) > 0.0);
//! eval.insert(day2);
//! // Recommending again on day 1 would now *lose* revenue (saturation +
//! // competition with the day-2 recommendation) — the objective is
//! // non-monotone.
//! assert!(eval.marginal_revenue(Triple::new(0, 0, 1)) < 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod effective;
pub mod env;
pub mod error;
pub mod events;
pub mod ids;
pub mod instance;
pub mod json;
pub mod reductions;
pub mod revenue;
pub mod strategy;
pub mod wire;

pub use effective::{
    effective_probabilities, effective_revenue, CapacityOracle, ExactPoissonBinomial,
};
pub use error::{BuildError, ConstraintViolation, StrategyParseError};
pub use events::{
    realized_revenue, residual_advance, residual_instance, residual_instance_with,
    residual_of_validated, residual_of_validated_with, shift_strategy, validate_events,
    AdoptionEvent, AdoptionOutcome, EventError, ResidualMode,
};
pub use ids::{CandidateId, ClassId, ItemId, TimeStep, Triple, UserId};
pub use instance::{BetaProfile, Instance, InstanceBuilder, UserShard};
pub use json::{JsonError, JsonValue};
pub use revenue::{
    dynamic_probabilities, dynamic_probability_of, marginal_revenue, revenue, AggregateMode,
    AtomicCell, CapacityLedger, EngineSnapshot, HashIncrementalRevenue, IncrementalRevenue,
    KernelId, LedgerCell, ResidualDelta, RevenueEngine, SharedCapacityLedger,
    SharedCapacityLedgerIn,
};
pub use strategy::Strategy;
pub use wire::WireError;
