//! The original hash-based incremental evaluator, kept as a correctness
//! reference and as the measured baseline of the flat-arena engine's perf
//! trajectory (see `crates/bench`).
//!
//! Every marginal-revenue evaluation goes through a
//! `HashMap<(u32, u32), Vec<Entry>>` group lookup, a `HashSet<(u32, u32)>`
//! capacity set, and repeated `powf` calls — exactly the overhead the
//! flat-arena [`super::IncrementalRevenue`] removes. Do not use this engine in
//! new code; select it explicitly (e.g. `EngineKind::Hash` in
//! `revmax-algorithms`) only to measure or cross-check.

use super::engine::RevenueEngine;
use super::ledger::CapacityLedger;
use crate::ids::{CandidateId, ClassId, TimeStep, Triple, UserId};
use crate::instance::Instance;
use crate::strategy::Strategy;
use std::collections::{HashMap, HashSet};

/// One selected triple inside a (user, class) group of the incremental state.
#[derive(Debug, Clone, Copy)]
struct Entry {
    t: u32,
    item: u32,
    q_prim: f64,
    /// Current dynamic adoption probability under the strategy built so far.
    q_dyn: f64,
    price: f64,
    /// Saturation factor used for incremental updates (1.0 when the evaluator
    /// is configured to ignore saturation, as in the GlobalNo baseline).
    beta: f64,
}

/// The pre-refactor incremental evaluator (hash-based group index).
///
/// Semantically identical to [`super::IncrementalRevenue`]; slower on the hot
/// path. See the module docs.
#[derive(Debug, Clone)]
pub struct HashIncrementalRevenue<'a> {
    inst: &'a Instance,
    groups: HashMap<(u32, u32), Vec<Entry>>,
    revenue: f64,
    strategy: Strategy,
    /// Per (user, time) number of recommendations, for the display constraint.
    display_count: Vec<u16>,
    /// Per item, the distinct users reached so far against the capacity.
    ledger: CapacityLedger,
    /// (item, user) pairs already counted in the ledger.
    item_user_seen: HashSet<(u32, u32)>,
    /// When true, selection values treat every saturation factor as 1
    /// (the `GlobalNo` ablation).
    ignore_saturation: bool,
}

impl<'a> HashIncrementalRevenue<'a> {
    /// Creates an empty evaluator for an instance.
    pub fn new(inst: &'a Instance) -> Self {
        Self::with_options(inst, false)
    }

    /// Creates an evaluator that optionally ignores saturation when computing
    /// selection values (used by the GlobalNo baseline of §6.1).
    pub fn with_options(inst: &'a Instance, ignore_saturation: bool) -> Self {
        HashIncrementalRevenue {
            inst,
            groups: HashMap::new(),
            revenue: 0.0,
            strategy: Strategy::new(),
            display_count: vec![0; inst.num_users() as usize * inst.horizon() as usize],
            ledger: CapacityLedger::new(inst),
            item_user_seen: HashSet::new(),
            ignore_saturation,
        }
    }

    /// The instance this evaluator is bound to.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Expected revenue of the strategy built so far (under the evaluator's
    /// saturation setting).
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// The strategy built so far.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Consumes the evaluator and returns the built strategy.
    pub fn into_strategy(self) -> Strategy {
        self.strategy
    }

    /// Number of triples selected so far.
    pub fn len(&self) -> usize {
        self.strategy.len()
    }

    /// Whether no triple has been selected yet.
    pub fn is_empty(&self) -> bool {
        self.strategy.is_empty()
    }

    /// Size of the (user, class) group of a triple — the quantity the
    /// lazy-forward flags of G-Greedy are compared against (`|set(u, C(i))|`).
    pub fn group_size(&self, user: UserId, class: ClassId) -> usize {
        self.groups.get(&(user.0, class.0)).map_or(0, |g| g.len())
    }

    /// Whether adding the triple would violate the display or capacity constraint.
    pub fn would_violate(&self, z: Triple) -> bool {
        let k = self.inst.display_limit();
        let slot = z.user.index() * self.inst.horizon() as usize + z.t.index();
        if self.display_count[slot] as u32 >= k {
            return true;
        }
        if !self.item_user_seen.contains(&(z.item.0, z.user.0))
            && self.ledger.is_full_for(z.item, z.user)
        {
            return true;
        }
        false
    }

    /// Whether adding the triple would violate only the display constraint
    /// (validity notion of the relaxed problem R-REVMAX).
    pub fn would_violate_display(&self, z: Triple) -> bool {
        let k = self.inst.display_limit();
        let slot = z.user.index() * self.inst.horizon() as usize + z.t.index();
        self.display_count[slot] as u32 >= k
    }

    /// Marginal revenue `Rev(S ∪ {z}) − Rev(S)` of a triple not yet selected.
    ///
    /// Returns 0 for triples already in the strategy.
    pub fn marginal_revenue(&self, z: Triple) -> f64 {
        if self.strategy.contains(z) {
            return 0.0;
        }
        let (gain, loss) = self.gain_and_loss(z);
        gain + loss
    }

    /// The dynamic adoption probability the triple would obtain if added now.
    pub fn prospective_probability(&self, z: Triple) -> f64 {
        self.prospective(z).0
    }

    /// Current dynamic adoption probability of a triple already in the strategy.
    pub fn dynamic_probability(&self, z: Triple) -> Option<f64> {
        let class = self.inst.class_of(z.item);
        let group = self.groups.get(&(z.user.0, class.0))?;
        group
            .iter()
            .find(|e| e.t == z.t.value() && e.item == z.item.0)
            .map(|e| e.q_dyn)
    }

    /// Adds a triple to the strategy and returns its realised marginal revenue.
    ///
    /// The caller is responsible for constraint checks (see
    /// [`HashIncrementalRevenue::would_violate`]); this method only updates state.
    pub fn insert(&mut self, z: Triple) -> f64 {
        if self.strategy.contains(z) {
            return 0.0;
        }
        let (gain, loss) = self.gain_and_loss(z);
        let q_prim = self.inst.prob_of(z);
        let q_new = self.prospective(z).0;
        let class = self.inst.class_of(z.item);
        let group = self.groups.entry((z.user.0, class.0)).or_default();
        // Discount existing same-class entries at the same or later times.
        for e in group.iter_mut() {
            if e.t > z.t.value() {
                let factor = (1.0 - q_prim) * e.beta.powf(1.0 / (e.t - z.t.value()) as f64);
                e.q_dyn *= factor;
            } else if e.t == z.t.value() {
                e.q_dyn *= 1.0 - q_prim;
            }
        }
        let beta = if self.ignore_saturation {
            1.0
        } else {
            self.inst.beta(z.item)
        };
        group.push(Entry {
            t: z.t.value(),
            item: z.item.0,
            q_prim,
            q_dyn: q_new,
            price: self.inst.price(z.item, z.t),
            beta,
        });
        self.revenue += gain + loss;
        // Constraint bookkeeping.
        let slot = z.user.index() * self.inst.horizon() as usize + z.t.index();
        self.display_count[slot] += 1;
        if self.item_user_seen.insert((z.item.0, z.user.0)) {
            self.ledger.charge(z.item, z.user);
        }
        self.strategy.insert(z);
        gain + loss
    }

    /// (prospective dynamic probability of z, memory of z) given the current strategy.
    fn prospective(&self, z: Triple) -> (f64, f64) {
        let q_prim = self.inst.prob_of(z);
        let beta = if self.ignore_saturation {
            1.0
        } else {
            self.inst.beta(z.item)
        };
        let class = self.inst.class_of(z.item);
        let mut memory = 0.0_f64;
        let mut comp = 1.0_f64;
        if let Some(group) = self.groups.get(&(z.user.0, class.0)) {
            for e in group {
                if e.t < z.t.value() {
                    memory += 1.0 / (z.t.value() - e.t) as f64;
                    comp *= 1.0 - e.q_prim;
                } else if e.t == z.t.value() && e.item != z.item.0 {
                    comp *= 1.0 - e.q_prim;
                }
            }
        }
        (q_prim * beta.powf(memory) * comp, memory)
    }

    /// Gain (revenue of z itself) and loss (revenue change on already selected
    /// same-class triples of the same user at the same or later times).
    fn gain_and_loss(&self, z: Triple) -> (f64, f64) {
        let q_prim = self.inst.prob_of(z);
        let (q_new, _memory) = self.prospective(z);
        let gain = self.inst.price(z.item, z.t) * q_new;
        let class = self.inst.class_of(z.item);
        let mut loss = 0.0_f64;
        if let Some(group) = self.groups.get(&(z.user.0, class.0)) {
            for e in group {
                if e.t > z.t.value() {
                    let factor = (1.0 - q_prim) * e.beta.powf(1.0 / (e.t - z.t.value()) as f64);
                    loss += e.price * e.q_dyn * (factor - 1.0);
                } else if e.t == z.t.value() && e.item != z.item.0 {
                    loss += e.price * e.q_dyn * (-q_prim);
                }
            }
        }
        (gain, loss)
    }
}

impl<'a> RevenueEngine<'a> for HashIncrementalRevenue<'a> {
    fn with_options(inst: &'a Instance, ignore_saturation: bool) -> Self {
        HashIncrementalRevenue::with_options(inst, ignore_saturation)
    }

    fn instance(&self) -> &'a Instance {
        self.inst
    }

    fn revenue(&self) -> f64 {
        self.revenue
    }

    fn len(&self) -> usize {
        self.strategy.len()
    }

    fn group_size_cand(&self, cand: CandidateId) -> usize {
        let user = self.inst.candidate_user(cand);
        self.group_size(user, self.inst.candidate_class(cand))
    }

    fn would_violate_cand(&self, cand: CandidateId, t: TimeStep) -> bool {
        let user = self.inst.candidate_user(cand);
        let item = self.inst.candidate_item(cand);
        self.would_violate(Triple { user, item, t })
    }

    fn would_violate_display_cand(&self, cand: CandidateId, t: TimeStep) -> bool {
        let user = self.inst.candidate_user(cand);
        let item = self.inst.candidate_item(cand);
        self.would_violate_display(Triple { user, item, t })
    }

    fn marginal_revenue_cand(&self, cand: CandidateId, t: TimeStep) -> f64 {
        let user = self.inst.candidate_user(cand);
        let item = self.inst.candidate_item(cand);
        self.marginal_revenue(Triple { user, item, t })
    }

    fn insert_cand(&mut self, cand: CandidateId, t: TimeStep) -> f64 {
        let user = self.inst.candidate_user(cand);
        let item = self.inst.candidate_item(cand);
        self.insert(Triple { user, item, t })
    }

    fn into_strategy(self) -> Strategy {
        self.strategy
    }
}
