//! Build-time kernel compilation for the flat-arena engine.
//!
//! Every marginal query used to re-decide, per evaluation, facts that were
//! already known when the engine was constructed: is the candidate's class
//! uniform-β or mixed? Are saturation aggregates enabled? Is β degenerate
//! (0 or 1, including the `GlobalNo` ablation that treats every β as 1)?
//! This module hoists those decisions into a **classification pass** run by
//! `IncrementalRevenue::with_parts`: each (user, class) group is assigned one
//! [`KernelId`] out of a small closed set, stored as a byte in the engine's
//! SoA layout next to the group's packed parameters (`agg_start`, `agg_hi`,
//! candidate count). The hot path then dispatches through one flat `match`
//! on the kernel byte — no per-query profile, knob, or exemption branching.
//!
//! # Variants
//!
//! | kernel | class shape | marginal path |
//! |---|---|---|
//! | [`KernelId::MixedWalk`] | mixed β | exact slab walk (per-entry β rows) |
//! | [`KernelId::UniformWalk`] | uniform β, gated off | exact slab walk |
//! | [`KernelId::UniformAgg`] | uniform β ∈ (0, 1) | aggregate fold, β-root table row |
//! | [`KernelId::UnitAgg`] | β = 1 (or `GlobalNo`) | aggregate fold, constant factor `1 − q` |
//! | [`KernelId::ZeroAgg`] | β = 0 | aggregate fold, zero factor |
//!
//! The degenerate kernels compute bit-identically to [`KernelId::UniformAgg`]
//! (their β-root table rows hold exactly 1.0 / 0.0), they just skip the table
//! reads. Exempt-capacity checks are compiled the same way: when the instance
//! carries exemptions, a per-candidate exempt bit is packed at construction so
//! the capacity check on the hot path is two flat loads instead of a binary
//! search over the item's exempt-user set.
//!
//! # The `Auto` depth gate
//!
//! [`AggregateMode::Auto`] (the default) engages the aggregate kernels only
//! when they are expected to pay for their maintenance: each insertion into an
//! aggregate group updates a `2 · (T − t)` block *in addition to* the slab,
//! which is pure overhead when groups stay shallow. PR 5 measured ~0.97× on
//! warm-replan residuals (horizons shrink towards 1, groups hold at most a
//! couple of entries) against ~1.03–1.06× on full-horizon instances. The
//! crossover is gated per group at compile time on the two depth signals known
//! up front: the residual horizon and the group's candidate count (an upper
//! bound driver for how many entries the group can accumulate). Because a
//! replan constructs a fresh engine per residual (`warm_start` →
//! `with_parts`), the gate is re-derived on every `residual_advance` as the
//! horizon shrinks — exactly the "walk when shallow" fallback the 0.97× row
//! was missing. [`AggregateMode::On`] forces the aggregate kernels wherever a
//! class shape permits them; [`AggregateMode::Off`] compiles every group to a
//! walk kernel. All modes select among bit-compatible paths (parity to 1e-9
//! is asserted by the kernel-parity suites), so the mode is a performance
//! knob, never a behaviour knob.

use crate::instance::BetaProfile;

/// Aggregate-engagement mode of the flat engine's kernel compiler (the
/// engine-level counterpart of `PlannerConfig::aggregates`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregateMode {
    /// Depth-gated: aggregate kernels engage only for groups expected to grow
    /// deep enough to amortise block maintenance (see the module docs).
    #[default]
    Auto,
    /// Aggregate kernels wherever the class shape permits them.
    On,
    /// Walk kernels everywhere.
    Off,
}

impl AggregateMode {
    /// Whether this mode can engage aggregate kernels at all.
    #[inline]
    pub fn allows_aggregates(self) -> bool {
        !matches!(self, AggregateMode::Off)
    }
}

/// Compiled per-group marginal kernel (stored as one byte per group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum KernelId {
    /// Mixed-β class: exact slab walk with per-entry β-root rows.
    MixedWalk = 0,
    /// Uniform-β class compiled to the walk (aggregates off or depth-gated).
    UniformWalk = 1,
    /// Uniform β ∈ (0, 1): aggregate fold over the group's `pros`/`wsum`
    /// block, β-root factors from the probe candidate's table row.
    UniformAgg = 2,
    /// β = 1 (also the `GlobalNo` ablation): aggregate fold with the constant
    /// factor `1 − q` — no β-root table reads.
    UnitAgg = 3,
    /// β = 0: aggregate fold with a zero factor — later-step losses collapse
    /// to a plain sum of the `wsum` suffix.
    ZeroAgg = 4,
}

impl KernelId {
    /// Whether the kernel answers marginals from the group's aggregate block
    /// (and therefore requires the block to be maintained on insertion).
    #[inline]
    pub fn uses_aggregates(self) -> bool {
        matches!(
            self,
            KernelId::UniformAgg | KernelId::UnitAgg | KernelId::ZeroAgg
        )
    }

    /// The kernel byte as stored in the engine's per-group SoA slot.
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a kernel byte written by [`KernelId::as_u8`].
    #[inline]
    pub(crate) fn from_u8(byte: u8) -> KernelId {
        match byte {
            1 => KernelId::UniformWalk,
            2 => KernelId::UniformAgg,
            3 => KernelId::UnitAgg,
            4 => KernelId::ZeroAgg,
            _ => KernelId::MixedWalk,
        }
    }
}

/// Class shape relevant to kernel selection, derived once per class from its
/// [`BetaProfile`] (bit-exact β comparison at `Instance` build time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum ClassShape {
    /// Items of the class carry different βs.
    Mixed = 0,
    /// One shared β strictly between 0 and 1.
    Uniform = 1,
    /// Shared β = 1, or the engine ignores saturation (`GlobalNo`).
    Unit = 2,
    /// Shared β = 0.
    Zero = 3,
}

impl ClassShape {
    /// Classifies one class under the engine's saturation setting.
    pub(crate) fn of(profile: BetaProfile, ignore_saturation: bool) -> ClassShape {
        if ignore_saturation {
            return ClassShape::Unit;
        }
        match profile {
            BetaProfile::Mixed => ClassShape::Mixed,
            BetaProfile::Uniform(b) if b >= 1.0 => ClassShape::Unit,
            BetaProfile::Uniform(b) if b <= 0.0 => ClassShape::Zero,
            BetaProfile::Uniform(_) => ClassShape::Uniform,
        }
    }

    /// The shape byte as stored in the engine's per-group SoA slot.
    #[inline]
    pub(crate) fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a shape byte written by [`ClassShape::as_u8`].
    #[inline]
    pub(crate) fn from_u8(byte: u8) -> ClassShape {
        match byte {
            1 => ClassShape::Uniform,
            2 => ClassShape::Unit,
            3 => ClassShape::Zero,
            _ => ClassShape::Mixed,
        }
    }

    /// The aggregate kernel this shape compiles to when aggregates engage.
    #[inline]
    fn agg_kernel(self) -> KernelId {
        match self {
            ClassShape::Unit => KernelId::UnitAgg,
            ClassShape::Zero => KernelId::ZeroAgg,
            _ => KernelId::UniformAgg,
        }
    }
}

/// Minimum residual horizon for the `Auto` gate to engage aggregate kernels.
/// Below this, block maintenance can no longer amortise over the loss folds
/// it saves (the PR 5 warm-replan rows measured the crossover ~0.97× at
/// shallow horizons).
pub const AUTO_AGG_MIN_HORIZON: u32 = 4;

/// Minimum candidates in a group for the `Auto` gate: a group reachable by a
/// single candidate holds at most one entry per time step, so the walk never
/// scans more entries than the aggregate fold would touch.
pub const AUTO_AGG_MIN_CANDS: u32 = 2;

/// Selects the effective kernel of one group from its class shape, the
/// engine's aggregate mode, and the depth signals of the `Auto` gate.
pub(crate) fn effective_kernel(
    shape: ClassShape,
    mode: AggregateMode,
    horizon: u32,
    group_cands: u32,
) -> KernelId {
    if shape == ClassShape::Mixed {
        return KernelId::MixedWalk;
    }
    match mode {
        AggregateMode::Off => KernelId::UniformWalk,
        AggregateMode::On => shape.agg_kernel(),
        AggregateMode::Auto => {
            if horizon >= AUTO_AGG_MIN_HORIZON && group_cands >= AUTO_AGG_MIN_CANDS {
                shape.agg_kernel()
            } else {
                KernelId::UniformWalk
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classification() {
        assert_eq!(ClassShape::of(BetaProfile::Mixed, false), ClassShape::Mixed);
        assert_eq!(
            ClassShape::of(BetaProfile::Uniform(0.5), false),
            ClassShape::Uniform
        );
        assert_eq!(
            ClassShape::of(BetaProfile::Uniform(1.0), false),
            ClassShape::Unit
        );
        assert_eq!(
            ClassShape::of(BetaProfile::Uniform(0.0), false),
            ClassShape::Zero
        );
        // GlobalNo treats every class as β = 1, even mixed ones.
        assert_eq!(ClassShape::of(BetaProfile::Mixed, true), ClassShape::Unit);
    }

    #[test]
    fn shape_and_kernel_bytes_round_trip() {
        for shape in [
            ClassShape::Mixed,
            ClassShape::Uniform,
            ClassShape::Unit,
            ClassShape::Zero,
        ] {
            assert_eq!(ClassShape::from_u8(shape.as_u8()), shape);
        }
        for kernel in [
            KernelId::MixedWalk,
            KernelId::UniformWalk,
            KernelId::UniformAgg,
            KernelId::UnitAgg,
            KernelId::ZeroAgg,
        ] {
            assert_eq!(KernelId::from_u8(kernel.as_u8()), kernel);
        }
    }

    #[test]
    fn mixed_classes_never_compile_to_aggregates() {
        for mode in [AggregateMode::Auto, AggregateMode::On, AggregateMode::Off] {
            assert_eq!(
                effective_kernel(ClassShape::Mixed, mode, 7, 10),
                KernelId::MixedWalk
            );
        }
    }

    #[test]
    fn auto_gate_walks_shallow_groups() {
        // Deep enough on both axes: aggregate kernel.
        assert_eq!(
            effective_kernel(ClassShape::Uniform, AggregateMode::Auto, 7, 4),
            KernelId::UniformAgg
        );
        // Shallow horizon (warm-replan tail): walk.
        assert_eq!(
            effective_kernel(
                ClassShape::Uniform,
                AggregateMode::Auto,
                AUTO_AGG_MIN_HORIZON - 1,
                4
            ),
            KernelId::UniformWalk
        );
        // Single-candidate group: walk.
        assert_eq!(
            effective_kernel(ClassShape::Uniform, AggregateMode::Auto, 7, 1),
            KernelId::UniformWalk
        );
        // `On` overrides the gate on both axes.
        assert_eq!(
            effective_kernel(ClassShape::Uniform, AggregateMode::On, 1, 1),
            KernelId::UniformAgg
        );
        // `Off` compiles to the walk even for deep groups.
        assert_eq!(
            effective_kernel(ClassShape::Zero, AggregateMode::Off, 7, 10),
            KernelId::UniformWalk
        );
    }

    #[test]
    fn degenerate_shapes_compile_to_degenerate_kernels() {
        assert_eq!(
            effective_kernel(ClassShape::Unit, AggregateMode::On, 7, 4),
            KernelId::UnitAgg
        );
        assert_eq!(
            effective_kernel(ClassShape::Zero, AggregateMode::Auto, 7, 4),
            KernelId::ZeroAgg
        );
        assert!(KernelId::UnitAgg.uses_aggregates());
        assert!(KernelId::ZeroAgg.uses_aggregates());
        assert!(!KernelId::UniformWalk.uses_aggregates());
    }
}
