//! The dynamic revenue model of the paper: memory, saturation, competition,
//! dynamic adoption probabilities (Definition 1), the revenue function
//! `Rev(S)` (Definition 2), marginal revenue (Definition 3), and an
//! incremental evaluator used by all greedy algorithms.
//!
//! # Model recap
//!
//! For a strategy `S` and a triple `(u, i, t) ∈ S`:
//!
//! * the *memory* of user `u` on item `i` at time `t` is
//!   `M_S(u, i, t) = Σ_{j ∈ C(i)} Σ_{τ < t} X_S(u, j, τ) / (t − τ)` (Eq. 1);
//! * the *dynamic adoption probability* is
//!   `q_S(u, i, t) = q(u, i, t) · β_i^{M_S(u,i,t)} · Π_{(u,j,t) ∈ S, j ≠ i, C(j)=C(i)} (1 − q(u,j,t))
//!    · Π_{(u,j,τ) ∈ S, τ < t, C(j)=C(i)} (1 − q(u,j,τ))` (Eq. 2);
//! * the expected revenue is `Rev(S) = Σ_{(u,i,t) ∈ S} p(i, t) · q_S(u, i, t)` (Eq. 3).
//!
//! The marginal revenue of a triple `z = (u, i, t)` w.r.t. `S` (Definition 3)
//! is the gain `p(i,t) · q_{S∪{z}}(z)` minus the revenue lost on triples of the
//! same user and class at later times (their memory grows and they pick up an
//! extra `(1 − q(z))` competition factor). We additionally account for the
//! symmetric competition discount on same-class triples at the *same* time
//! step, which Definition 1 induces but Definition 3 elides; this keeps
//! `Rev(S ∪ {z}) − Rev(S)` exactly equal to the value the greedy algorithms
//! optimise.
//!
//! # Submodularity caveat (Theorem 2)
//!
//! The paper's Theorem 2 claims the revenue function is submodular —
//! `Rev(S ∪ {z}) − Rev(S) ≥ Rev(S′ ∪ {z}) − Rev(S′)` for `S ⊆ S′` — and uses
//! it to justify the lazy-forward optimisation of §5.1 (a cached marginal is
//! an upper bound on the current one, so a fresh-flagged heap root is safe to
//! take). The *exact* marginal implemented here violates that inequality on
//! roughly **13% of random instances** (measured over the seeded generators in
//! `crates/core/tests/properties.rs`, for smooth betas and display limit 1
//! alike). The mechanism: the loss side of the marginal re-discounts already
//! selected same-class triples at later times, and those triples are *already
//! more discounted* under the larger strategy `S′` — so the absolute loss can
//! shrink as the strategy grows, making the later marginal larger. The gain
//! side (the prospective probability `q_{S∪{z}}(z)`) *is* monotonically
//! non-increasing, which is the piece of Theorem 2 that does hold and the
//! invariant the property suite asserts (`prospective_probability_is_non_increasing`).
//!
//! Consequences for the algorithms:
//!
//! * lazy forward is treated as a **heuristic**, validated empirically: the
//!   `lazy == eager` equivalence tests in `crates/algorithms` assert that
//!   both settings select identical strategies on every tested instance;
//! * the `1 − 1/e` style greedy guarantee does not follow from theory for
//!   the exact objective; the experiments reproduce the paper's *empirical*
//!   quality ranking instead;
//! * anything that replays selection order (the sharded planners, the
//!   indexed decrease-key heap) must reproduce the sequential pop order
//!   bit-for-bit rather than re-derive it from submodularity arguments.
//!
//! The consolidated write-up — exact marginal definition, the measured
//! violation rate, how lazy-forward is validated, and the related PR-4
//! greedy-non-monotonicity caveat under capacity exemptions — lives in
//! `docs/submodularity.md` at the repository root.

use crate::ids::{ClassId, Triple, UserId};
use crate::instance::Instance;
use crate::strategy::Strategy;
use std::collections::HashMap;

pub mod engine;
pub mod flat;
pub mod hash;
pub mod kernels;
pub mod ledger;
pub mod warm;

pub use engine::RevenueEngine;
pub use flat::IncrementalRevenue;
pub use hash::HashIncrementalRevenue;
pub use kernels::{AggregateMode, KernelId};
pub use ledger::{
    AtomicCell, CapacityLedger, LedgerCell, SharedCapacityLedger, SharedCapacityLedgerIn,
};
pub use warm::{EngineSnapshot, ResidualDelta};

/// Computes the expected total revenue `Rev(S)` of a strategy from scratch.
///
/// This is the reference implementation used to cross-check the incremental
/// evaluators; it runs in `O(Σ_g |g|²)` over the (user, class) groups `g` of `S`.
pub fn revenue(inst: &Instance, strategy: &Strategy) -> f64 {
    dynamic_probabilities(inst, strategy)
        .into_iter()
        .map(|(triple, q)| inst.price(triple.item, triple.t) * q)
        .sum()
}

/// Computes the dynamic adoption probability `q_S(u, i, t)` of every triple in
/// the strategy, from scratch.
pub fn dynamic_probabilities(inst: &Instance, strategy: &Strategy) -> Vec<(Triple, f64)> {
    let mut groups: HashMap<(UserId, ClassId), Vec<Triple>> = HashMap::new();
    for triple in strategy.iter() {
        let class = inst.class_of(triple.item);
        groups.entry((triple.user, class)).or_default().push(triple);
    }
    let mut out = Vec::with_capacity(strategy.len());
    for ((_user, _class), mut triples) in groups {
        triples.sort_by_key(|z| (z.t, z.item));
        for (idx, &z) in triples.iter().enumerate() {
            let q_prim = inst.prob_of(z);
            let beta = inst.beta(z.item);
            let mut memory = 0.0_f64;
            let mut comp = 1.0_f64;
            for (jdx, &other) in triples.iter().enumerate() {
                if jdx == idx {
                    continue;
                }
                if other.t.value() < z.t.value() {
                    memory += 1.0 / (z.t.value() - other.t.value()) as f64;
                    comp *= 1.0 - inst.prob_of(other);
                } else if other.t.value() == z.t.value() && other.item != z.item {
                    comp *= 1.0 - inst.prob_of(other);
                }
            }
            let q_dyn = q_prim * beta.powf(memory) * comp;
            out.push((z, q_dyn));
        }
    }
    out
}

/// The dynamic adoption probability of a single triple `z ∈ S` (0 if `z ∉ S`),
/// computed from scratch. Convenience wrapper over [`dynamic_probabilities`].
pub fn dynamic_probability_of(inst: &Instance, strategy: &Strategy, z: Triple) -> f64 {
    if !strategy.contains(z) {
        return 0.0;
    }
    dynamic_probabilities(inst, strategy)
        .into_iter()
        .find(|(t, _)| *t == z)
        .map(|(_, q)| q)
        .unwrap_or(0.0)
}

/// Marginal revenue `Rev(S ∪ {z}) − Rev(S)` computed from scratch.
///
/// Prefer [`IncrementalRevenue::marginal_revenue`] inside algorithms; this
/// function exists for tests and small-instance exact methods.
pub fn marginal_revenue(inst: &Instance, strategy: &Strategy, z: Triple) -> f64 {
    if strategy.contains(z) {
        return 0.0;
    }
    let mut with = strategy.clone();
    with.insert(z);
    revenue(inst, &with) - revenue(inst, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    /// The non-monotonicity instance from the proof of Theorem 2 / Example 4.
    fn example4_instance() -> Instance {
        let mut b = InstanceBuilder::new(1, 1, 2);
        b.display_limit(1)
            .capacity(0, 2)
            .beta(0, 0.1)
            .prices(0, &[1.0, 0.95])
            .candidate(0, 0, &[0.5, 0.6], 0.0);
        b.build().unwrap()
    }

    #[test]
    fn example4_revenue_values_match_paper() {
        let inst = example4_instance();
        let s_late: Strategy = vec![Triple::new(0, 0, 2)].into_iter().collect();
        let s_both: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)]
            .into_iter()
            .collect();
        assert!((revenue(&inst, &s_late) - 0.57).abs() < 1e-12);
        assert!((revenue(&inst, &s_both) - 0.5285).abs() < 1e-12);
        // Non-monotone: the larger strategy earns less.
        assert!(revenue(&inst, &s_both) < revenue(&inst, &s_late));
    }

    #[test]
    fn example1_dynamic_probabilities_match_paper() {
        // S = {(u,i,1),(u,j,2),(u,i,3)}, C(i)=C(j), all primitive probs a, beta shared.
        let a = 0.3;
        let beta = 0.7;
        let mut b = InstanceBuilder::new(1, 2, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .beta(0, beta)
            .beta(1, beta)
            .constant_price(0, 1.0)
            .constant_price(1, 1.0)
            .candidate(0, 0, &[a, a, a], 0.0)
            .candidate(0, 1, &[a, a, a], 0.0);
        let inst = b.build().unwrap();
        let s: Strategy = vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 1, 2),
            Triple::new(0, 0, 3),
        ]
        .into_iter()
        .collect();
        let probs: HashMap<Triple, f64> = dynamic_probabilities(&inst, &s).into_iter().collect();
        assert!((probs[&Triple::new(0, 0, 1)] - a).abs() < 1e-12);
        let expected_t2 = (1.0 - a) * a * beta.powf(1.0);
        assert!((probs[&Triple::new(0, 1, 2)] - expected_t2).abs() < 1e-12);
        let expected_t3 = (1.0 - a) * (1.0 - a) * a * beta.powf(1.0 + 0.5);
        assert!((probs[&Triple::new(0, 0, 3)] - expected_t3).abs() < 1e-12);
    }

    #[test]
    fn same_time_competition_discounts_both_items() {
        // Two items of the same class recommended at the same time step: each
        // gets a (1 - q_other) factor.
        let mut b = InstanceBuilder::new(1, 2, 1);
        b.display_limit(2)
            .item_class(0, 0)
            .item_class(1, 0)
            .constant_price(0, 10.0)
            .constant_price(1, 10.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(0, 1, &[0.4], 0.0);
        let inst = b.build().unwrap();
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 1, 1)]
            .into_iter()
            .collect();
        let probs: HashMap<Triple, f64> = dynamic_probabilities(&inst, &s).into_iter().collect();
        assert!((probs[&Triple::new(0, 0, 1)] - 0.5 * 0.6).abs() < 1e-12);
        assert!((probs[&Triple::new(0, 1, 1)] - 0.4 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_classes_do_not_interact() {
        let mut b = InstanceBuilder::new(1, 2, 2);
        b.display_limit(2)
            .item_class(0, 0)
            .item_class(1, 1)
            .beta(0, 0.2)
            .beta(1, 0.2)
            .constant_price(0, 10.0)
            .constant_price(1, 10.0)
            .candidate(0, 0, &[0.5, 0.5], 0.0)
            .candidate(0, 1, &[0.4, 0.4], 0.0);
        let inst = b.build().unwrap();
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 1, 2)]
            .into_iter()
            .collect();
        let probs: HashMap<Triple, f64> = dynamic_probabilities(&inst, &s).into_iter().collect();
        // No cross-class memory or competition.
        assert!((probs[&Triple::new(0, 0, 1)] - 0.5).abs() < 1e-12);
        assert!((probs[&Triple::new(0, 1, 2)] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_scratch_on_example4() {
        let inst = example4_instance();
        let mut inc = IncrementalRevenue::new(&inst);
        let m1 = inc.insert(Triple::new(0, 0, 2));
        assert!((m1 - 0.57).abs() < 1e-12);
        let z = Triple::new(0, 0, 1);
        let m2 = inc.marginal_revenue(z);
        // Adding the early recommendation *loses* money: 0.5285 - 0.57 < 0.
        assert!((m2 - (0.5285 - 0.57)).abs() < 1e-12);
        inc.insert(z);
        assert!((inc.revenue() - 0.5285).abs() < 1e-12);
        assert!((inc.revenue() - revenue(&inst, inc.strategy())).abs() < 1e-12);
    }

    #[test]
    fn incremental_constraint_tracking() {
        let mut b = InstanceBuilder::new(2, 2, 2);
        b.display_limit(1)
            .capacity(0, 1)
            .constant_price(0, 5.0)
            .constant_price(1, 5.0);
        for u in 0..2 {
            b.candidate(u, 0, &[0.5, 0.5], 0.0);
            b.candidate(u, 1, &[0.5, 0.5], 0.0);
        }
        let inst = b.build().unwrap();
        let mut inc = IncrementalRevenue::new(&inst);
        let z = Triple::new(0, 0, 1);
        assert!(!inc.would_violate(z));
        inc.insert(z);
        // Display: user 0 already has an item at t1.
        assert!(inc.would_violate(Triple::new(0, 1, 1)));
        assert!(!inc.would_violate_display(Triple::new(0, 1, 2)));
        // Capacity: item 0 has capacity 1, user 1 would be a second distinct user.
        assert!(inc.would_violate(Triple::new(1, 0, 1)));
        // Repeat to the same user does not consume extra capacity.
        assert!(!inc.would_violate(Triple::new(0, 0, 2)));
    }

    #[test]
    fn ignore_saturation_option_behaves_like_beta_one() {
        let inst = example4_instance();
        let no_sat_inst = inst.without_saturation();
        let mut inc_ignore = IncrementalRevenue::with_options(&inst, true);
        let mut inc_beta1 = IncrementalRevenue::new(&no_sat_inst);
        for z in [Triple::new(0, 0, 2), Triple::new(0, 0, 1)] {
            let a = inc_ignore.insert(z);
            let b = inc_beta1.insert(z);
            assert!((a - b).abs() < 1e-12);
        }
        assert!((inc_ignore.revenue() - inc_beta1.revenue()).abs() < 1e-12);
        // And the true revenue of the same strategy is lower (saturation bites).
        let true_rev = revenue(&inst, inc_ignore.strategy());
        assert!(true_rev < inc_ignore.revenue());
    }

    #[test]
    fn marginal_revenue_scratch_agrees_with_incremental() {
        let mut b = InstanceBuilder::new(2, 3, 3);
        b.display_limit(2)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.3)
            .beta(1, 0.6)
            .beta(2, 0.9)
            .prices(0, &[10.0, 9.0, 8.0])
            .prices(1, &[4.0, 5.0, 6.0])
            .prices(2, &[7.0, 7.0, 7.0])
            .candidate(0, 0, &[0.2, 0.3, 0.4], 0.0)
            .candidate(0, 1, &[0.5, 0.1, 0.2], 0.0)
            .candidate(0, 2, &[0.3, 0.3, 0.3], 0.0)
            .candidate(1, 0, &[0.6, 0.5, 0.4], 0.0)
            .candidate(1, 2, &[0.2, 0.2, 0.9], 0.0);
        let inst = b.build().unwrap();
        let picks = vec![
            Triple::new(0, 0, 2),
            Triple::new(0, 1, 1),
            Triple::new(1, 2, 3),
            Triple::new(0, 1, 3),
            Triple::new(1, 0, 1),
            Triple::new(0, 2, 2),
            Triple::new(0, 0, 3),
        ];
        let mut inc = IncrementalRevenue::new(&inst);
        let mut s = Strategy::new();
        for z in picks {
            let scratch = marginal_revenue(&inst, &s, z);
            let incr = inc.marginal_revenue(z);
            assert!(
                (scratch - incr).abs() < 1e-10,
                "marginal mismatch for {z}: scratch={scratch} incremental={incr}"
            );
            let realised = inc.insert(z);
            assert!((realised - scratch).abs() < 1e-10);
            s.insert(z);
            assert!((inc.revenue() - revenue(&inst, &s)).abs() < 1e-10);
            assert!(
                inc.dynamic_probability(z).is_some(),
                "inserted triple must be queryable"
            );
        }
        assert_eq!(
            inc.group_size(UserId(0), inst.class_of(crate::ids::ItemId(0))),
            4
        );
    }

    #[test]
    fn dynamic_probability_of_missing_triple_is_zero() {
        let inst = example4_instance();
        let s = Strategy::new();
        assert_eq!(dynamic_probability_of(&inst, &s, Triple::new(0, 0, 1)), 0.0);
    }

    #[test]
    fn zero_beta_kills_repeats_entirely() {
        let mut b = InstanceBuilder::new(1, 1, 2);
        b.display_limit(1)
            .capacity(0, 1)
            .beta(0, 0.0)
            .constant_price(0, 10.0)
            .candidate(0, 0, &[0.5, 0.5], 0.0);
        let inst = b.build().unwrap();
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)]
            .into_iter()
            .collect();
        let probs: HashMap<Triple, f64> = dynamic_probabilities(&inst, &s).into_iter().collect();
        // Full saturation: the repeat has zero probability (0^positive memory).
        assert_eq!(probs[&Triple::new(0, 0, 2)], 0.0);
        // The first recommendation is unaffected (0^0 = 1).
        assert!((probs[&Triple::new(0, 0, 1)] - 0.5).abs() < 1e-12);
    }
}
