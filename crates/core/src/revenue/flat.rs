//! The flat-arena incremental revenue engine.
//!
//! This is the default [`IncrementalRevenue`] evaluator behind every greedy
//! algorithm. It re-implements the (user, class) group bookkeeping of the
//! original hash-based evaluator (kept in [`super::hash`]) with dense,
//! index-based structures so the hot path performs **zero hashing and zero
//! transcendental calls beyond a single `exp`**:
//!
//! * groups are numbered densely up front: candidates are CSR-sorted by user,
//!   so one stamped scan assigns every candidate its (user, class) group slot
//!   (`cand_group`), replacing the `HashMap<(u32, u32), Vec<Entry>>` lookup;
//! * group entries live in contiguous per-group slabs inside one arena `Vec`
//!   (`group_start` / `group_len` / `group_cap`, doubling by relocation), so
//!   the hot walks are plain slice scans with no per-group allocation and no
//!   pointer chasing;
//! * capacity tracking uses a per-candidate `Vec<bool>` — every legal
//!   (user, item) pair *is* a `CandidateId`, so the `HashSet<(u32, u32)>` of
//!   the original evaluator is unnecessary;
//! * saturation powers are table-driven: `ln β_i` per item turns
//!   `β^M` into one `exp`, and a per-item table of `β_i^{1/d}` for
//!   `d ∈ 1..T` turns the per-entry discount `β^{1/(t−τ)}` into a lookup;
//! * selection membership is a flat bitmap over (candidate, time) slots, so
//!   the hot path never touches the `Strategy`'s hash index.
//!
//! Non-candidate triples (probability 0 everywhere) are accepted through the
//! triple-based compatibility API and handled on a cold path so the engine
//! stays exactly equivalent to the from-scratch evaluator for any strategy.
//!
//! # The saturation-aggregate fast path (uniform-β classes)
//!
//! A marginal evaluation needs three quantities from the (user, class) group
//! of the probed triple `(u, i, t)`:
//!
//! * the memory `Σ_{τ < t} count(τ) / (t − τ)`,
//! * the competition product `Π_{τ ≤ t} Π_{e at τ} (1 − q_e)`, and
//! * the loss on later selections `Σ_{τ > t} (Σ_{e at τ} p_e · q_dyn(e)) ·
//!   ((1 − q) · β_e^{1/(τ − t)} − 1)` (plus the same-time `−q` term).
//!
//! The first two depend only on per-time-step *aggregates* of the group. The
//! third mixes a per-entry factor `β_e^{1/(τ − t)}` into the sum — but when
//! every item of the class shares one `β` (detected at build time as
//! [`BetaProfile::Uniform`](crate::instance::BetaProfile), bit-exact
//! equality), that factor is common per `τ` and factors out. Two per-(group,
//! τ) accumulators then close under insertion:
//!
//! > `pros(τ) = β^{M(τ)} · Π_{e at τ' ≤ τ} (1 − q_e)` — the *prospective
//! > potential*: an insertion at `τ0` multiplies `pros(τ)` by
//! > `(1 − q) · β^{1/(τ − τ0)}` for `τ > τ0` and by `(1 − q)` at `τ0` — the
//! > memory growth `β^{1/d}` is a **table lookup**, so queries need no `exp`;
//! >
//! > `wsum(τ) = Σ_{e at τ} p_e · q_dyn(e)` — updated by the *same* factors
//! > the slab walk applies to each entry's `q_dyn`, so it tracks the sum to
//! > the ulp.
//!
//! Both live in a lazily allocated per-group block of `2 · T` floats. A
//! marginal at `t` is then `price · q_prim · pros(t)` plus a loss fold over
//! the `wsum` suffix — `O(T − t)` table-driven flops, **no walk over the
//! selected triples and no transcendental calls** (the slab walk pays one
//! `exp` whenever the group has earlier same-class entries, plus one fused
//! pass over all of them). Classes with mixed betas, and engines with
//! aggregates disabled ([`IncrementalRevenue::set_aggregates`]), keep the
//! exact slab walk; the parity suites assert both paths agree to 1e-9 (the
//! arithmetic differs only in association order — `β^{Σ 1/d}` becomes
//! `Π β^{1/d}`). The slab itself stays authoritative either way — insertions
//! still update every entry's `q_dyn`, so `dynamic_probability` and the
//! revenue fold are identical in both modes.

use super::engine::RevenueEngine;
use super::kernels::{effective_kernel, AggregateMode, ClassShape, KernelId};
use super::ledger::CapacityLedger;
use super::warm::{EngineSnapshot, FlatBuffers, ResidualDelta, SatTables};
use crate::ids::{CandidateId, ClassId, TimeStep, Triple, UserId};
use crate::instance::{Instance, UserShard};
use crate::strategy::Strategy;
use std::sync::Arc;

const NONE: u32 = u32::MAX;

/// `agg_start` sentinel: the group's class qualifies for the aggregate fast
/// path but no block has been allocated yet (the group is empty).
const AGG_UNALLOCATED: u32 = u32::MAX;
/// `agg_start` sentinel: the group's class has mixed betas — the group always
/// uses the exact slab walk.
const AGG_INELIGIBLE: u32 = u32::MAX - 1;

/// One selected triple stored in the group arena.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ArenaEntry {
    t: u32,
    item: u32,
    /// Row of the saturation tables (0 = saturation-free).
    pow_row: u32,
    q_prim: f64,
    /// Current dynamic adoption probability under the strategy built so far.
    q_dyn: f64,
    price: f64,
}

/// Incremental evaluator of the revenue function and the REVMAX constraints.
///
/// Greedy algorithms grow a strategy one triple at a time; this structure
/// maintains, per (user, class) group, the selected triples and their current
/// dynamic adoption probabilities so that marginal revenues and insertions
/// cost `O(|set(u, C(i))|)` — with no hashing, no allocation, and table-driven
/// saturation powers (see the module docs).
#[derive(Debug, Clone)]
pub struct IncrementalRevenue<'a> {
    inst: &'a Instance,
    /// The user/candidate range this evaluator's dynamic state covers. The
    /// default constructors use the full range; shard views localise every
    /// per-candidate and per-user vector to the shard, so memory per shard
    /// worker is `O(shard)` rather than `O(instance)`.
    shard: UserShard,
    /// When true, selection values treat every saturation factor as 1
    /// (the `GlobalNo` ablation). The *reported* revenue then over-estimates
    /// the true value; re-evaluate the final strategy with [`super::revenue`].
    ignore_saturation: bool,

    // --- static tables, built once per evaluator (or recycled across the
    // --- residual replans of one session, see `super::warm`) ---
    /// Saturation power tables (`ln β`, `β^{1/d}`, `1/d`). Shared behind an
    /// `Arc` so a warm-started engine reuses the previous replan's tables;
    /// bit-identical to a fresh build, so warm vs cold never changes a plan.
    tables: Arc<SatTables>,
    /// Dense (user, class) group slot per candidate (shard-local index).
    cand_group: Vec<u32>,
    /// Warm-start pool to return the recycled buffers to on
    /// [`IncrementalRevenue::into_strategy`] (`None` for cold engines).
    recycle: Option<EngineSnapshot>,

    // --- dynamic state ---
    /// Start of each group's contiguous slab in `arena`, or `NONE` if the
    /// group has never been touched.
    group_start: Vec<u32>,
    /// Number of entries per group.
    group_len: Vec<u32>,
    /// Reserved slab capacity per group (doubled by relocation when full).
    group_cap: Vec<u32>,
    /// Slab pool: every group owns the contiguous range
    /// `group_start..group_start + group_cap`; at most half the pool is dead
    /// (abandoned by relocation), so memory stays `O(|S|)`.
    arena: Vec<ArenaEntry>,
    /// Selection bitmap over `local_cand * horizon + (t − 1)` slots.
    selected: Vec<bool>,
    revenue: f64,
    strategy: Strategy,
    /// Per (shard-local user, time) number of recommendations, for the
    /// display constraint.
    display_count: Vec<u16>,
    /// Per item, the distinct users reached so far against the capacity
    /// `q_i`. For shard views this counts only the shard's own claims; the
    /// shard-partitioned planners arbitrate the *global* capacity through a
    /// [`super::ledger::SharedCapacityLedger`] instead of this field.
    ledger: CapacityLedger,
    /// Per shard-local candidate: whether its (item, user) pair was counted
    /// in the ledger.
    cand_counted: Vec<bool>,
    /// (item, user) pairs of inserted *non-candidate* triples (cold path).
    extra_seen: Vec<(u32, u32)>,
    /// Groups created on demand for non-candidate (user, class) pairs the
    /// static numbering has no slot for (cold path, linear-scanned).
    extra_groups: Vec<(u32, u32, u32)>,

    // --- compiled kernels + saturation-aggregate fast path (see the module
    // --- docs and `super::kernels`) ---
    /// Aggregate-engagement mode (`PlannerConfig::aggregates` routes here);
    /// changing it recompiles the per-group kernels while the strategy is
    /// empty, and mid-run only the one-way fallback to the walks is honoured.
    mode: AggregateMode,
    /// Whether aggregate blocks are maintained on insertion (false once the
    /// mode drops to [`AggregateMode::Off`]).
    agg_enabled: bool,
    /// Per group: the compiled [`KernelId`] byte the marginal hot path
    /// dispatches on — classification happens at construction and on
    /// [`IncrementalRevenue::set_aggregate_mode`], never per query.
    kernel: Vec<u8>,
    /// Per group: the [`ClassShape`] byte of its class (kernel recompilation
    /// input).
    group_shape: Vec<u8>,
    /// Per group: number of candidates addressing it (depth signal of the
    /// `Auto` gate).
    group_cands: Vec<u32>,
    /// Per shard-local candidate: compiled exempt-capacity bit. Empty unless
    /// the instance carries exemptions; when populated, the hot capacity
    /// check is two flat loads instead of a binary search per query.
    cand_exempt: Vec<bool>,
    /// Per group: start of its `2 · T` aggregate block in `agg`, or one of
    /// the [`AGG_UNALLOCATED`] / [`AGG_INELIGIBLE`] sentinels.
    agg_start: Vec<u32>,
    /// Aggregate block arena: per allocated group `T` prospective potentials
    /// (`β^M · Π (1 − q)`) and `T` sums of `p · q_dyn`, indexed by time.
    agg: Vec<f64>,
    /// Per group: one past the largest occupied time index (0 = empty).
    /// Bounds the loss fold — `wsum` is identically 0 beyond it, so queries
    /// probing at or past the group's last selection skip the fold entirely
    /// (the chronological SL-Greedy scans always do).
    agg_hi: Vec<u32>,
}

impl<'a> IncrementalRevenue<'a> {
    /// Creates an empty evaluator for an instance.
    pub fn new(inst: &'a Instance) -> Self {
        Self::with_options(inst, false)
    }

    /// Creates an evaluator that optionally ignores saturation when computing
    /// selection values (used by the GlobalNo baseline of §6.1).
    pub fn with_options(inst: &'a Instance, ignore_saturation: bool) -> Self {
        Self::for_user_shard(inst, ignore_saturation, inst.full_shard())
    }

    /// Creates an evaluator whose dynamic state covers only the users (and
    /// CSR-contiguous candidates) of `shard`.
    ///
    /// Candidate and user ids stay *global* — the shard view translates them
    /// internally — so greedy drivers can address a shard engine with the
    /// same ids they would pass to a full one. Feeding a triple or candidate
    /// outside the shard is a logic error (checked by `debug_assert`).
    pub fn for_user_shard(inst: &'a Instance, ignore_saturation: bool, shard: UserShard) -> Self {
        Self::with_parts(
            inst,
            ignore_saturation,
            shard,
            Arc::new(SatTables::build(inst)),
            FlatBuffers::default(),
            None,
        )
    }

    /// Warm-started construction for a residual replan: reuses the
    /// saturation tables and buffer sets pooled in `residual`'s
    /// [`EngineSnapshot`] instead of rebuilding them (one `powf` per item
    /// per time distance saved, zero fresh allocation when the pool is
    /// primed). Recycled state holds bit-identical table values and cleared
    /// buffers, so a warm engine is indistinguishable from a cold one.
    ///
    /// Falls back to a cold table build — publishing the result for the next
    /// replan — when the pool is empty or was taken from a different item
    /// universe.
    pub fn warm_start_shard(
        inst: &'a Instance,
        ignore_saturation: bool,
        shard: UserShard,
        residual: &ResidualDelta,
    ) -> Self {
        let snapshot = residual.snapshot();
        let tables = snapshot.tables_for(inst).unwrap_or_else(|| {
            let tables = Arc::new(SatTables::build(inst));
            snapshot.publish_tables(&tables);
            tables
        });
        Self::with_parts(
            inst,
            ignore_saturation,
            shard,
            tables,
            snapshot.take_buffers_for(shard.user_start()),
            Some(snapshot.clone()),
        )
    }

    fn with_parts(
        inst: &'a Instance,
        ignore_saturation: bool,
        shard: UserShard,
        tables: Arc<SatTables>,
        buffers: FlatBuffers,
        recycle: Option<EngineSnapshot>,
    ) -> Self {
        let horizon = inst.horizon() as usize;
        let num_cand = shard.num_candidates();
        let FlatBuffers {
            mut cand_group,
            mut group_start,
            mut group_len,
            mut group_cap,
            mut arena,
            mut selected,
            mut display_count,
            mut cand_counted,
            mut agg_start,
            mut agg,
            mut agg_hi,
            mut kernel,
            mut group_shape,
            mut group_cands,
            mut cand_exempt,
        } = buffers;

        // Group numbering: candidates are CSR-contiguous per user, so one
        // stamped scan over each shard user's candidates assigns dense group
        // slots without hashing. Stamps avoid clearing the per-class scratch
        // rows. Every shard candidate is assigned, so the recycled buffer
        // needs resizing only, not clearing. The same pass records each
        // group's class shape and candidate count — the inputs of the kernel
        // compilation pass (see `super::kernels`) run right after.
        let num_classes = inst.num_classes() as usize;
        let class_shape: Vec<ClassShape> = (0..num_classes)
            .map(|c| {
                ClassShape::of(
                    inst.beta_profile(crate::ids::ClassId(c as u32)),
                    ignore_saturation,
                )
            })
            .collect();
        let mut class_stamp = vec![NONE; num_classes];
        let mut class_group = vec![0u32; num_classes];
        cand_group.resize(num_cand, 0);
        agg_start.clear();
        agg_hi.clear();
        kernel.clear();
        group_shape.clear();
        group_cands.clear();
        let mut num_groups: u32 = 0;
        for user in shard.user_start()..shard.user_end() {
            for cand in inst.candidates_of_user(UserId(user)) {
                let class = inst.candidate_class(cand).index();
                if class_stamp[class] != user {
                    class_stamp[class] = user;
                    class_group[class] = num_groups;
                    num_groups += 1;
                    group_shape.push(class_shape[class].as_u8());
                    group_cands.push(0);
                    kernel.push(KernelId::MixedWalk.as_u8());
                    agg_start.push(AGG_INELIGIBLE);
                    agg_hi.push(0);
                }
                let g = class_group[class];
                group_cands[g as usize] += 1;
                cand_group[(cand.0 - shard.cand_start()) as usize] = g;
            }
        }

        // Compiled exempt-capacity bits: populated only when the instance
        // carries exemptions (residual replans), so ordinary instances pay
        // nothing.
        cand_exempt.clear();
        if inst.has_exemptions() {
            cand_exempt.resize(num_cand, false);
            for (local, slot) in cand_exempt.iter_mut().enumerate() {
                let cand = CandidateId(shard.cand_start() + local as u32);
                *slot = inst.is_exempt(inst.candidate_item(cand), inst.candidate_user(cand));
            }
        }

        group_start.clear();
        group_start.resize(num_groups as usize, NONE);
        group_len.clear();
        group_len.resize(num_groups as usize, 0);
        group_cap.clear();
        group_cap.resize(num_groups as usize, 0);
        arena.clear();
        selected.clear();
        selected.resize(num_cand * horizon, false);
        display_count.clear();
        display_count.resize(shard.num_users() * horizon, 0);
        cand_counted.clear();
        cand_counted.resize(num_cand, false);
        agg.clear();

        let mut this = IncrementalRevenue {
            inst,
            shard,
            ignore_saturation,
            tables,
            cand_group,
            recycle,
            group_start,
            group_len,
            group_cap,
            arena,
            selected,
            revenue: 0.0,
            strategy: Strategy::new(),
            display_count,
            ledger: CapacityLedger::new(inst),
            cand_counted,
            extra_seen: Vec::new(),
            extra_groups: Vec::new(),
            mode: AggregateMode::default(),
            agg_enabled: AggregateMode::default().allows_aggregates(),
            kernel,
            group_shape,
            group_cands,
            cand_exempt,
            agg_start,
            agg,
            agg_hi,
        };
        this.recompile_kernels();
        this
    }

    /// The kernel compilation pass: derives every group's effective
    /// [`KernelId`] from its class shape, the aggregate mode, and the `Auto`
    /// depth gate, and resets the aggregate sentinels accordingly. Only legal
    /// while the strategy is empty (sentinel resets discard block state).
    fn recompile_kernels(&mut self) {
        debug_assert!(self.strategy.is_empty());
        let horizon = self.inst.horizon();
        for g in 0..self.kernel.len() {
            let shape = ClassShape::from_u8(self.group_shape[g]);
            let k = effective_kernel(shape, self.mode, horizon, self.group_cands[g]);
            self.kernel[g] = k.as_u8();
            self.agg_start[g] = if self.agg_enabled && k.uses_aggregates() {
                AGG_UNALLOCATED
            } else {
                AGG_INELIGIBLE
            };
        }
    }

    /// Switches the saturation-aggregate kernels on (`AggregateMode::On`) or
    /// off (`AggregateMode::Off`). Kept as the boolean compatibility surface;
    /// prefer [`IncrementalRevenue::set_aggregate_mode`], which also exposes
    /// the depth-gated default.
    pub fn set_aggregates(&mut self, enabled: bool) {
        self.set_aggregate_mode(if enabled {
            AggregateMode::On
        } else {
            AggregateMode::Off
        });
    }

    /// Sets the aggregate-engagement mode and recompiles the per-group
    /// kernels (see `super::kernels`). Purely a performance knob: every mode
    /// selects among paths that agree to 1e-9 (asserted by the kernel-parity
    /// suites).
    ///
    /// Normally configured once, before the first insertion (the drivers do
    /// this through `PlannerConfig::aggregates`). Mid-run changes are safe
    /// but one-way: dropping to [`AggregateMode::Off`] downgrades every
    /// group to its walk kernel for all later queries, while any other
    /// mid-run change is ignored — blocks that missed inserts while a walk
    /// kernel was active must never be read again.
    pub fn set_aggregate_mode(&mut self, mode: AggregateMode) {
        if self.strategy.is_empty() {
            self.mode = mode;
            self.agg_enabled = mode.allows_aggregates();
            self.recompile_kernels();
            return;
        }
        if !mode.allows_aggregates() {
            self.mode = mode;
            self.agg_enabled = false;
            for (k, &shape) in self.kernel.iter_mut().zip(&self.group_shape) {
                if ClassShape::from_u8(shape) != ClassShape::Mixed {
                    *k = KernelId::UniformWalk.as_u8();
                }
            }
        }
    }

    /// Whether the aggregate fast path can engage for at least one of this
    /// evaluator's groups (probe for benches and tests).
    pub fn aggregates_active(&self) -> bool {
        self.agg_enabled
            && self
                .kernel
                .iter()
                .any(|&k| KernelId::from_u8(k).uses_aggregates())
    }

    /// The compiled kernel of a candidate's (user, class) group, as its byte
    /// id — what batched heap-refresh drivers group stale candidates by.
    #[inline]
    pub fn kernel_id_cand(&self, cand: CandidateId) -> u8 {
        self.kernel[self.cand_group[self.local_cand(cand)] as usize]
    }

    /// The user/candidate range this evaluator covers.
    pub fn shard(&self) -> UserShard {
        self.shard
    }

    /// Shard-local index of a (global) candidate id.
    #[inline]
    fn local_cand(&self, cand: CandidateId) -> usize {
        debug_assert!(
            self.shard.contains_cand(cand),
            "candidate {cand:?} outside shard view"
        );
        (cand.0 - self.shard.cand_start()) as usize
    }

    /// Shard-local index of a (global) user id.
    #[inline]
    fn local_user(&self, user: UserId) -> usize {
        debug_assert!(
            self.shard.contains_user(user),
            "user {user:?} outside shard view"
        );
        (user.0 - self.shard.user_start()) as usize
    }

    /// The instance this evaluator is bound to.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Expected revenue of the strategy built so far (under the evaluator's
    /// saturation setting).
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// The strategy built so far.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Consumes the evaluator and returns the built strategy. Warm-started
    /// engines return their buffers to the session's [`EngineSnapshot`] pool
    /// here — keyed by the shard that grew them — so the next replan of the
    /// same shard can recycle them at matching capacity.
    pub fn into_strategy(mut self) -> Strategy {
        if let Some(pool) = self.recycle.take() {
            pool.return_buffers(
                self.shard.user_start(),
                FlatBuffers {
                    cand_group: std::mem::take(&mut self.cand_group),
                    group_start: std::mem::take(&mut self.group_start),
                    group_len: std::mem::take(&mut self.group_len),
                    group_cap: std::mem::take(&mut self.group_cap),
                    arena: std::mem::take(&mut self.arena),
                    selected: std::mem::take(&mut self.selected),
                    display_count: std::mem::take(&mut self.display_count),
                    cand_counted: std::mem::take(&mut self.cand_counted),
                    agg_start: std::mem::take(&mut self.agg_start),
                    agg: std::mem::take(&mut self.agg),
                    agg_hi: std::mem::take(&mut self.agg_hi),
                    kernel: std::mem::take(&mut self.kernel),
                    group_shape: std::mem::take(&mut self.group_shape),
                    group_cands: std::mem::take(&mut self.group_cands),
                    cand_exempt: std::mem::take(&mut self.cand_exempt),
                },
            );
        }
        self.strategy
    }

    /// Number of triples selected so far.
    pub fn len(&self) -> usize {
        self.strategy.len()
    }

    /// Whether no triple has been selected yet.
    pub fn is_empty(&self) -> bool {
        self.strategy.is_empty()
    }

    /// The saturation-table row of an item under the evaluator's settings.
    #[inline]
    fn pow_row(&self, item: u32) -> u32 {
        if self.ignore_saturation {
            0
        } else {
            item + 1
        }
    }

    /// `β^memory` via the precomputed `ln β` table: one `exp` instead of a
    /// `powf`, with the `β ∈ {0, 1}` edge cases handled explicitly (the
    /// `memory · ln β` product would be `NaN` for `β = 0, memory = 0`).
    #[inline]
    fn pow_memory(&self, row: u32, memory: f64) -> f64 {
        if memory == 0.0 {
            return 1.0;
        }
        let ln_b = self.tables.ln_beta[row as usize];
        if ln_b == 0.0 {
            1.0
        } else if ln_b == f64::NEG_INFINITY {
            0.0
        } else {
            (memory * ln_b).exp()
        }
    }

    /// `β_e^{1/d}` for an entry's pow row and a time distance `d ≥ 1`.
    #[inline]
    fn root_discount(&self, row: u32, dist: u32) -> f64 {
        self.tables.beta_root[row as usize * self.tables.stride + (dist - 1) as usize]
    }

    /// The contiguous slab of a group's entries (empty for untouched groups).
    #[inline]
    fn group_entries(&self, group: usize) -> &[ArenaEntry] {
        let start = self.group_start[group];
        if start == NONE {
            return &[];
        }
        &self.arena[start as usize..start as usize + self.group_len[group] as usize]
    }

    /// Appends an entry to a group's slab, reserving or doubling (by
    /// relocation to the end of the pool) when the slab is full. Relocation
    /// copies at most `len` entries, so pushes stay amortised O(1) and at most
    /// half the pool is ever dead.
    fn slab_push(&mut self, group: usize, entry: ArenaEntry) {
        let len = self.group_len[group] as usize;
        let cap = self.group_cap[group] as usize;
        if self.group_start[group] == NONE {
            let cap = 4usize;
            self.group_start[group] = self.arena.len() as u32;
            self.group_cap[group] = cap as u32;
            self.arena
                .resize(self.arena.len() + cap, ArenaEntry::default());
        } else if len == cap {
            let new_cap = cap * 2;
            let old_start = self.group_start[group] as usize;
            let new_start = self.arena.len();
            self.group_start[group] = new_start as u32;
            self.group_cap[group] = new_cap as u32;
            self.arena.extend_from_within(old_start..old_start + len);
            self.arena
                .resize(new_start + new_cap, ArenaEntry::default());
        }
        let start = self.group_start[group] as usize;
        self.arena[start + len] = entry;
        self.group_len[group] += 1;
    }

    /// Size of the (user, class) group of a triple — the quantity the
    /// lazy-forward flags of G-Greedy are compared against (`|set(u, C(i))|`).
    pub fn group_size(&self, user: UserId, class: ClassId) -> usize {
        match self.group_for(user, class) {
            Some(g) => self.group_len[g as usize] as usize,
            None => 0,
        }
    }

    /// The group slot of a (user, class) pair: the statically numbered group
    /// when the user has a candidate of the class, otherwise a dynamically
    /// created one (non-candidate inserts, cold path).
    fn group_for(&self, user: UserId, class: ClassId) -> Option<u32> {
        self.inst
            .candidates_of_user(user)
            .find(|&c| self.inst.candidate_class(c) == class)
            .map(|c| self.cand_group[self.local_cand(c)])
            .or_else(|| {
                self.extra_groups
                    .iter()
                    .find(|&&(u, c, _)| u == user.0 && c == class.0)
                    .map(|&(_, _, g)| g)
            })
    }

    /// [`IncrementalRevenue::group_for`], creating a fresh group slot when the
    /// (user, class) pair has none — keeps non-candidate inserts queryable
    /// through [`IncrementalRevenue::dynamic_probability`] / group sizes, in
    /// lockstep with the hash engine.
    fn group_for_or_create(&mut self, user: UserId, class: ClassId) -> u32 {
        if let Some(g) = self.group_for(user, class) {
            return g;
        }
        let g = self.group_start.len() as u32;
        self.group_start.push(NONE);
        self.group_len.push(0);
        self.group_cap.push(0);
        let shape = ClassShape::of(self.inst.beta_profile(class), self.ignore_saturation);
        let k = effective_kernel(shape, self.mode, self.inst.horizon(), 0);
        self.group_shape.push(shape.as_u8());
        self.group_cands.push(0);
        self.kernel.push(k.as_u8());
        self.agg_start
            .push(if self.agg_enabled && k.uses_aggregates() {
                AGG_UNALLOCATED
            } else {
                AGG_INELIGIBLE
            });
        self.agg_hi.push(0);
        self.extra_groups.push((user.0, class.0, g));
        g
    }

    /// Start of a group's aggregate block, when one is allocated and the
    /// fast path is enabled (disabling mid-run leaves allocated blocks
    /// behind that stopped receiving inserts — they must not be read).
    #[inline]
    fn agg_block(&self, group: usize) -> Option<usize> {
        let s = self.agg_start[group];
        if self.agg_enabled && s < AGG_INELIGIBLE {
            Some(s as usize)
        } else {
            None
        }
    }

    /// Allocates a group's aggregate block (`T` prospective potentials at 1,
    /// `T` weighted sums at 0) and returns its start.
    fn agg_alloc(&mut self, group: usize) -> usize {
        let horizon = self.inst.horizon() as usize;
        let start = self.agg.len();
        debug_assert!(start + 2 * horizon < AGG_INELIGIBLE as usize);
        self.agg.extend(std::iter::repeat_n(1.0, horizon));
        self.agg.extend(std::iter::repeat_n(0.0, horizon));
        self.agg_start[group] = start as u32;
        start
    }

    /// Gain and loss of inserting `(item, t)` with primitive probability
    /// `q_prim`, answered from a group's aggregate block in `O(T − t)` — the
    /// closed form of the slab walk in
    /// [`IncrementalRevenue::gain_and_loss_cand`] for uniform-β groups (the
    /// per-entry discount `β_e^{1/d}` is common per time step there, so the
    /// candidate's own power-table row substitutes bit-exactly for every
    /// entry's). The prospective potential already folds memory and
    /// competition, so — unlike the walk — no `exp` is ever evaluated.
    fn gain_and_loss_agg(
        &self,
        kernel: KernelId,
        astart: usize,
        hi: usize,
        item: u32,
        q_prim: f64,
        t: TimeStep,
    ) -> (f64, f64) {
        let horizon = self.inst.horizon() as usize;
        let tv = t.index();
        let (pros, wsum) = self.agg[astart..astart + 2 * horizon].split_at(horizon);

        // Same-time entries all compete (an entry of the probed item at the
        // probed time would mean the triple is already selected, which the
        // callers short-circuit before dispatching here), so `pros[tv]` is
        // exactly the potential a fresh triple at `tv` would see.
        let q_new = q_prim * pros[tv];
        let mut loss = wsum[tv] * (-q_prim);
        // `wsum` is identically 0 past the group's last occupied step, so the
        // fold stops at `hi` — probes at or beyond it (every probe of a
        // chronologically filled group) skip it entirely. The degenerate
        // kernels run the same fold with their constant factor — their β-root
        // rows hold exactly 1.0 / 0.0, so skipping the loads is bit-neutral.
        let fold = &wsum[tv + 1..hi.max(tv + 1)];
        match kernel {
            KernelId::UnitAgg => {
                let factor = 1.0 - q_prim;
                for &w in fold {
                    loss += w * (factor - 1.0);
                }
            }
            KernelId::ZeroAgg => {
                for &w in fold {
                    loss -= w;
                }
            }
            _ => {
                let row = self.pow_row(item) as usize;
                let beta_root = &self.tables.beta_root[row * self.tables.stride..];
                for (d, &w) in fold.iter().enumerate() {
                    let factor = (1.0 - q_prim) * beta_root[d];
                    loss += w * (factor - 1.0);
                }
            }
        }
        (self.inst.price(crate::ids::ItemId(item), t) * q_new, loss)
    }

    /// Folds one insertion into a group's aggregate block: the insertion step
    /// updates in `O(1)`, later steps each absorb one multiplicative factor
    /// `(1 − q) · β^{1/d}` — the same factor the slab walk applies to each
    /// entry's `q_dyn` (so `Σ p · q_dyn` stays exact to the ulp) and the
    /// closed-form growth of the prospective potential. `q_new` is the
    /// inserted entry's realised dynamic probability (0 for non-candidate
    /// inserts).
    fn agg_apply_insert(
        &mut self,
        astart: usize,
        t_idx: usize,
        item: u32,
        q_prim: f64,
        price: f64,
        q_new: f64,
    ) {
        let horizon = self.inst.horizon() as usize;
        let row = self.pow_row(item) as usize;
        let stride = self.tables.stride;
        let one_minus_q = 1.0 - q_prim;
        self.agg[astart + t_idx] *= one_minus_q;
        let wbase = astart + horizon;
        self.agg[wbase + t_idx] = self.agg[wbase + t_idx] * one_minus_q + price * q_new;
        let beta_root = &self.tables.beta_root;
        let (pros_tail, rest) = self.agg[astart + t_idx + 1..].split_at_mut(horizon - t_idx - 1);
        let wsum_tail = &mut rest[t_idx + 1..horizon];
        for (d, (p, w)) in pros_tail.iter_mut().zip(wsum_tail).enumerate() {
            let factor = one_minus_q * beta_root[row * stride + d];
            *p *= factor;
            *w *= factor;
        }
    }

    /// Whether adding the triple would violate the display or capacity
    /// constraint.
    pub fn would_violate(&self, z: Triple) -> bool {
        if self.would_violate_display(z) {
            return true;
        }
        match self.inst.candidate_for(z.user, z.item) {
            Some(cand) => self.capacity_violated_cand(cand, z.item.0),
            None => {
                !self.extra_seen.contains(&(z.item.0, z.user.0))
                    && self.ledger.is_full_for(z.item, z.user)
            }
        }
    }

    /// Whether adding the triple would violate only the display constraint
    /// (validity notion of the relaxed problem R-REVMAX).
    pub fn would_violate_display(&self, z: Triple) -> bool {
        let slot = self.local_user(z.user) * self.inst.horizon() as usize + z.t.index();
        self.display_count[slot] as u32 >= self.inst.display_limit()
    }

    #[inline]
    fn capacity_violated_cand(&self, cand: CandidateId, item: u32) -> bool {
        let local = self.local_cand(cand);
        // The exempt bit was compiled per candidate at construction (empty
        // unless the instance carries exemptions), so the hot path never
        // binary-searches an exempt-user set.
        let exempt = !self.cand_exempt.is_empty() && self.cand_exempt[local];
        !self.cand_counted[local] && !exempt && self.ledger.is_full(crate::ids::ItemId(item))
    }

    /// Marginal revenue `Rev(S ∪ {z}) − Rev(S)` of a triple not yet selected.
    ///
    /// Returns 0 for triples already in the strategy. Prefer
    /// [`IncrementalRevenue::marginal_revenue_cand`] in hot loops.
    pub fn marginal_revenue(&self, z: Triple) -> f64 {
        match self.inst.candidate_for(z.user, z.item) {
            Some(cand) => self.marginal_revenue_cand(cand, z.t),
            None => {
                if self.strategy.contains(z) {
                    0.0
                } else {
                    self.marginal_noncandidate(z)
                }
            }
        }
    }

    /// Marginal revenue of a candidate triple, addressed by candidate id.
    ///
    /// Dispatches through the group's compiled kernel byte (see
    /// `super::kernels`): one flat `match`, no per-query profile or knob
    /// branching. Aggregate kernels answer from the group's `pros`/`wsum`
    /// block in `O(T − t)`; walk kernels run the exact slab walk.
    #[inline]
    pub fn marginal_revenue_cand(&self, cand: CandidateId, t: TimeStep) -> f64 {
        let local = self.local_cand(cand);
        let horizon = self.inst.horizon() as usize;
        if self.selected[local * horizon + t.index()] {
            return 0.0;
        }
        let group = self.cand_group[local] as usize;
        let kernel = KernelId::from_u8(self.kernel[group]);
        let (gain, loss) = if kernel.uses_aggregates() {
            let s = self.agg_start[group];
            if s == AGG_UNALLOCATED {
                // Empty group: unit potential, no competition, no loss —
                // bit-identical to walking the empty slab.
                let q_prim = self.inst.candidate_prob(cand, t);
                (
                    self.inst.price(self.inst.candidate_item(cand), t) * q_prim,
                    0.0,
                )
            } else {
                self.gain_and_loss_agg(
                    kernel,
                    s as usize,
                    self.agg_hi[group] as usize,
                    self.inst.candidate_item(cand).0,
                    self.inst.candidate_prob(cand, t),
                    t,
                )
            }
        } else {
            self.gain_and_loss_cand(cand, t)
        };
        gain + loss
    }

    /// The dynamic adoption probability the triple would obtain if added now.
    pub fn prospective_probability(&self, z: Triple) -> f64 {
        let q_prim = self.inst.prob_of(z);
        let item = z.item.0;
        let class = self.inst.class_of(z.item);
        let group = self.group_for(z.user, class);
        let (memory, comp) = self.memory_and_competition(group, z.t.value(), item);
        q_prim * self.pow_memory(self.pow_row(item), memory) * comp
    }

    /// Current dynamic adoption probability of a triple already in the
    /// strategy.
    pub fn dynamic_probability(&self, z: Triple) -> Option<f64> {
        let group = self.group_for(z.user, self.inst.class_of(z.item))?;
        self.group_entries(group as usize)
            .iter()
            .find(|e| e.t == z.t.value() && e.item == z.item.0)
            .map(|e| e.q_dyn)
    }

    /// Adds a triple to the strategy and returns its realised marginal revenue.
    ///
    /// The caller is responsible for constraint checks (see
    /// [`IncrementalRevenue::would_violate`]); this method only updates state.
    pub fn insert(&mut self, z: Triple) -> f64 {
        match self.inst.candidate_for(z.user, z.item) {
            Some(cand) => self.insert_cand(cand, z.t),
            None => {
                if self.strategy.contains(z) {
                    return 0.0;
                }
                self.insert_noncandidate(z)
            }
        }
    }

    /// Adds a candidate triple, addressed by candidate id, and returns its
    /// realised marginal revenue.
    pub fn insert_cand(&mut self, cand: CandidateId, t: TimeStep) -> f64 {
        let horizon = self.inst.horizon() as usize;
        let local = self.local_cand(cand);
        let slot = local * horizon + t.index();
        if self.selected[slot] {
            return 0.0;
        }
        let item = self.inst.candidate_item(cand);
        let user = self.inst.candidate_user(cand);
        let q_prim = self.inst.candidate_prob(cand, t);
        let row = self.pow_row(item.0);
        let group = self.cand_group[local] as usize;
        let tv = t.value();
        let kernel = KernelId::from_u8(self.kernel[group]);

        // One fused walk over the group's contiguous slab: apply the discount
        // to entries at the same or later times, accumulating the loss. For
        // walk kernels the same pass accumulates memory / competition (the
        // inputs of the new entry's dynamic probability); aggregate kernels
        // read that potential straight from the group's `pros` block instead
        // — earlier entries need no visit and the per-insert `exp`
        // disappears. Field-level borrows keep the lookup tables readable
        // while the arena is mutated.
        let use_agg = self.agg_enabled && kernel.uses_aggregates();
        let mut memory = 0.0_f64;
        let mut comp = 1.0_f64;
        let mut loss = 0.0_f64;
        if self.group_start[group] != NONE {
            let start = self.group_start[group] as usize;
            let len = self.group_len[group] as usize;
            let inv_dist = &self.tables.inv_dist;
            let beta_root = &self.tables.beta_root;
            let max_dist = self.tables.stride;
            if use_agg {
                for e in &mut self.arena[start..start + len] {
                    if e.t > tv {
                        let factor = (1.0 - q_prim)
                            * beta_root[e.pow_row as usize * max_dist + (e.t - tv - 1) as usize];
                        loss += e.price * e.q_dyn * (factor - 1.0);
                        e.q_dyn *= factor;
                    } else if e.t == tv && e.item != item.0 {
                        loss += e.price * e.q_dyn * (-q_prim);
                        e.q_dyn *= 1.0 - q_prim;
                    }
                }
            } else {
                for e in &mut self.arena[start..start + len] {
                    if e.t < tv {
                        memory += inv_dist[(tv - e.t) as usize];
                        comp *= 1.0 - e.q_prim;
                    } else if e.t > tv {
                        let factor = (1.0 - q_prim)
                            * beta_root[e.pow_row as usize * max_dist + (e.t - tv - 1) as usize];
                        loss += e.price * e.q_dyn * (factor - 1.0);
                        e.q_dyn *= factor;
                    } else if e.item != item.0 {
                        comp *= 1.0 - e.q_prim;
                        loss += e.price * e.q_dyn * (-q_prim);
                        e.q_dyn *= 1.0 - q_prim;
                    }
                }
            }
        }
        let price = self.inst.price(item, t);
        let (q_new, gain);
        if use_agg {
            let astart = match self.agg_block(group) {
                Some(s) => s,
                None => self.agg_alloc(group),
            };
            // The prospective potential is read before the block absorbs the
            // insertion — it is exactly `β^memory · Π (1 − q)` of the walk.
            q_new = q_prim * self.agg[astart + t.index()];
            gain = price * q_new;
            self.agg_apply_insert(astart, t.index(), item.0, q_prim, price, q_new);
            self.agg_hi[group] = self.agg_hi[group].max(t.index() as u32 + 1);
        } else {
            q_new = q_prim * self.pow_memory(row, memory) * comp;
            gain = price * q_new;
        }

        self.slab_push(
            group,
            ArenaEntry {
                t: tv,
                item: item.0,
                pow_row: row,
                q_prim,
                q_dyn: q_new,
                price,
            },
        );

        self.revenue += gain + loss;
        self.selected[slot] = true;
        let dslot = self.local_user(user) * horizon + t.index();
        self.display_count[dslot] += 1;
        if !self.cand_counted[local] {
            self.cand_counted[local] = true;
            self.ledger.charge(item, user);
        }
        self.strategy.insert(Triple { user, item, t });
        gain + loss
    }

    /// (memory, competition product) a new triple at `(t, item)` would see in
    /// a group.
    fn memory_and_competition(&self, group: Option<u32>, tv: u32, item: u32) -> (f64, f64) {
        let mut memory = 0.0_f64;
        let mut comp = 1.0_f64;
        let Some(group) = group else {
            return (memory, comp);
        };
        for e in self.group_entries(group as usize) {
            if e.t < tv {
                memory += self.tables.inv_dist[(tv - e.t) as usize];
                comp *= 1.0 - e.q_prim;
            } else if e.t == tv && e.item != item {
                comp *= 1.0 - e.q_prim;
            }
        }
        (memory, comp)
    }

    /// Gain (revenue of the new triple) and loss (revenue change on already
    /// selected same-class triples at the same or later times), in one walk.
    #[inline]
    fn gain_and_loss_cand(&self, cand: CandidateId, t: TimeStep) -> (f64, f64) {
        let item = self.inst.candidate_item(cand).0;
        let q_prim = self.inst.candidate_prob(cand, t);
        let row = self.pow_row(item);
        let group = self.cand_group[self.local_cand(cand)] as usize;
        let tv = t.value();

        let mut memory = 0.0_f64;
        let mut comp = 1.0_f64;
        let mut loss = 0.0_f64;
        let inv_dist = &self.tables.inv_dist;
        let beta_root = &self.tables.beta_root;
        let stride = self.tables.stride;
        for e in self.group_entries(group) {
            if e.t < tv {
                memory += inv_dist[(tv - e.t) as usize];
                comp *= 1.0 - e.q_prim;
            } else if e.t > tv {
                let factor = (1.0 - q_prim)
                    * beta_root[e.pow_row as usize * stride + (e.t - tv - 1) as usize];
                loss += e.price * e.q_dyn * (factor - 1.0);
            } else if e.item != item {
                comp *= 1.0 - e.q_prim;
                loss += e.price * e.q_dyn * (-q_prim);
            }
        }
        let q_new = q_prim * self.pow_memory(row, memory) * comp;
        let gain = self.inst.price(crate::ids::ItemId(item), t) * q_new;
        (gain, loss)
    }

    /// Fused batch evaluation: recomputes the marginal revenue of every time
    /// slot selected by `live_mask` with a single walk over the group slab
    /// (the per-slot path walks it once per slot). Arithmetic per slot is
    /// identical to [`IncrementalRevenue::marginal_revenue_cand`], in the same
    /// order, so results are bit-identical.
    pub fn marginal_revenue_batch(
        &self,
        cand: CandidateId,
        live_mask: u64,
        out: &mut [f64],
    ) -> u32 {
        let horizon = self.inst.horizon() as usize;
        debug_assert!(horizon <= 64, "batch evaluation requires horizon <= 64");
        let item = self.inst.candidate_item(cand).0;
        let row = self.pow_row(item);
        let group = self.cand_group[self.local_cand(cand)] as usize;
        let probs = self.inst.candidate_probs(cand);
        let prices = self.inst.price_series(crate::ids::ItemId(item));

        let kernel = KernelId::from_u8(self.kernel[group]);
        if kernel.uses_aggregates() && self.agg_start[group] < AGG_INELIGIBLE {
            // Aggregate fast path: one O(T − t) closed-form evaluation per
            // live slot. The arithmetic per slot is identical to
            // [`IncrementalRevenue::gain_and_loss_agg`] (`prices[t]` is the
            // same f64 `price(item, t)` loads; the degenerate kernels' β-root
            // rows hold exactly 1.0 / 0.0, so the shared row-based loop is
            // bit-neutral for them), so batch and per-slot results stay
            // bit-identical.
            let astart = self.agg_start[group] as usize;
            let hi = self.agg_hi[group] as usize;
            let base = self.local_cand(cand) * horizon;
            let (pros, wsum) = self.agg[astart..astart + 2 * horizon].split_at(horizon);
            let beta_root = &self.tables.beta_root[row as usize * self.tables.stride..];
            let mut evaluated = 0;
            let mut mask = live_mask;
            while mask != 0 {
                let t_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if t_idx >= horizon {
                    break;
                }
                out[t_idx] = if self.selected[base + t_idx] {
                    0.0
                } else {
                    let q_prim = probs[t_idx];
                    let q_new = q_prim * pros[t_idx];
                    let mut loss = wsum[t_idx] * (-q_prim);
                    for (d, &w) in wsum[t_idx + 1..hi.max(t_idx + 1)].iter().enumerate() {
                        let factor = (1.0 - q_prim) * beta_root[d];
                        loss += w * (factor - 1.0);
                    }
                    prices[t_idx] * q_new + loss
                };
                evaluated += 1;
            }
            return evaluated;
        }

        // Compact lanes: one slot of fixed-size scratch per live time index.
        // The greedy hot path evaluates only a handful of live slots, so the
        // scratch stays in registers / L1.
        const MAX_LANES: usize = 16;
        let lanes = live_mask.count_ones() as usize;
        if lanes > MAX_LANES {
            // Rare wide masks fall back to the per-slot path.
            let mut evaluated = 0;
            let mut mask = live_mask;
            while mask != 0 {
                let t_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if t_idx >= horizon {
                    break;
                }
                out[t_idx] = self.marginal_revenue_cand(cand, TimeStep::from_index(t_idx));
                evaluated += 1;
            }
            return evaluated;
        }
        let mut lane_t = [0usize; MAX_LANES];
        let lanes = {
            let mut mask = live_mask;
            let mut li = 0;
            while mask != 0 {
                let t_idx = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if t_idx >= horizon {
                    break;
                }
                lane_t[li] = t_idx;
                li += 1;
            }
            li
        };
        let mut memory = [0.0_f64; MAX_LANES];
        let mut comp = [1.0_f64; MAX_LANES];
        let mut loss = [0.0_f64; MAX_LANES];
        let inv_dist = &self.tables.inv_dist;
        let beta_root = &self.tables.beta_root;
        let stride = self.tables.stride;
        for e in self.group_entries(group) {
            let et = e.t as usize;
            let one_minus_q = 1.0 - e.q_prim;
            let weighted = e.price * e.q_dyn;
            for li in 0..lanes {
                let t_idx = lane_t[li];
                let tv = t_idx + 1;
                if et < tv {
                    memory[li] += inv_dist[tv - et];
                    comp[li] *= one_minus_q;
                } else if et > tv {
                    let factor = (1.0 - probs[t_idx])
                        * beta_root[e.pow_row as usize * stride + (et - tv - 1)];
                    loss[li] += weighted * (factor - 1.0);
                } else if e.item != item {
                    comp[li] *= one_minus_q;
                    loss[li] += weighted * (-probs[t_idx]);
                }
            }
        }
        let base = self.local_cand(cand) * horizon;
        for li in 0..lanes {
            let t_idx = lane_t[li];
            out[t_idx] = if self.selected[base + t_idx] {
                0.0
            } else {
                let q_new = probs[t_idx] * self.pow_memory(row, memory[li]) * comp[li];
                prices[t_idx] * q_new + loss[li]
            };
        }
        lanes as u32
    }

    /// Marginal revenue of a non-candidate triple (`q ≡ 0`): the gain is zero,
    /// but its presence still saturates later same-class selections.
    fn marginal_noncandidate(&self, z: Triple) -> f64 {
        let class = self.inst.class_of(z.item);
        let Some(group) = self.group_for(z.user, class) else {
            return 0.0;
        };
        let tv = z.t.value();
        let mut loss = 0.0_f64;
        for e in self.group_entries(group as usize) {
            if e.t > tv {
                // q_prim = 0 ⇒ the competition part of the factor is 1.
                let factor = self.root_discount(e.pow_row, e.t - tv);
                loss += e.price * e.q_dyn * (factor - 1.0);
            }
        }
        loss
    }

    /// Inserts a non-candidate triple (cold path; zero gain, possible loss).
    fn insert_noncandidate(&mut self, z: Triple) -> f64 {
        let class = self.inst.class_of(z.item);
        let tv = z.t.value();
        let mut loss = 0.0_f64;
        // The entry is stored even when the user has no candidate of this
        // class (a group is created on demand): it carries zero probability,
        // but storing it keeps `dynamic_probability` / group sizes consistent
        // with the hash engine.
        let group = self.group_for_or_create(z.user, class) as usize;
        if self.group_start[group] != NONE {
            let start = self.group_start[group] as usize;
            let len = self.group_len[group] as usize;
            let beta_root = &self.tables.beta_root;
            let max_dist = self.tables.stride;
            for e in &mut self.arena[start..start + len] {
                if e.t > tv {
                    let factor = beta_root[e.pow_row as usize * max_dist + (e.t - tv - 1) as usize];
                    loss += e.price * e.q_dyn * (factor - 1.0);
                    e.q_dyn *= factor;
                }
            }
        }
        self.slab_push(
            group,
            ArenaEntry {
                t: tv,
                item: z.item.0,
                pow_row: self.pow_row(z.item.0),
                q_prim: 0.0,
                q_dyn: 0.0,
                price: self.inst.price(z.item, z.t),
            },
        );
        if self.agg_enabled && self.agg_start[group] != AGG_INELIGIBLE {
            let astart = match self.agg_block(group) {
                Some(s) => s,
                None => self.agg_alloc(group),
            };
            // q_prim = q_dyn = 0: the entry still counts towards memory and
            // still saturates later selections by its β root factor.
            self.agg_apply_insert(astart, z.t.index(), z.item.0, 0.0, 0.0, 0.0);
            self.agg_hi[group] = self.agg_hi[group].max(z.t.index() as u32 + 1);
        }
        self.revenue += loss;
        let dslot = self.local_user(z.user) * self.inst.horizon() as usize + z.t.index();
        self.display_count[dslot] += 1;
        if !self.extra_seen.contains(&(z.item.0, z.user.0)) {
            self.extra_seen.push((z.item.0, z.user.0));
            self.ledger.charge(z.item, z.user);
        }
        self.strategy.insert(z);
        loss
    }
}

impl<'a> RevenueEngine<'a> for IncrementalRevenue<'a> {
    fn with_options(inst: &'a Instance, ignore_saturation: bool) -> Self {
        IncrementalRevenue::with_options(inst, ignore_saturation)
    }

    fn for_shard(inst: &'a Instance, ignore_saturation: bool, shard: UserShard) -> Self {
        IncrementalRevenue::for_user_shard(inst, ignore_saturation, shard)
    }

    fn warm_start(
        inst: &'a Instance,
        ignore_saturation: bool,
        shard: UserShard,
        residual: &ResidualDelta,
    ) -> Self {
        IncrementalRevenue::warm_start_shard(inst, ignore_saturation, shard, residual)
    }

    fn set_aggregates(&mut self, enabled: bool) {
        IncrementalRevenue::set_aggregates(self, enabled)
    }

    fn set_aggregate_mode(&mut self, mode: AggregateMode) {
        IncrementalRevenue::set_aggregate_mode(self, mode)
    }

    fn aggregates_active(&self) -> bool {
        IncrementalRevenue::aggregates_active(self)
    }

    fn kernel_id_cand(&self, cand: CandidateId) -> u8 {
        IncrementalRevenue::kernel_id_cand(self, cand)
    }

    fn instance(&self) -> &'a Instance {
        self.inst
    }

    fn revenue(&self) -> f64 {
        self.revenue
    }

    fn len(&self) -> usize {
        self.strategy.len()
    }

    fn group_size_cand(&self, cand: CandidateId) -> usize {
        self.group_len[self.cand_group[self.local_cand(cand)] as usize] as usize
    }

    fn would_violate_cand(&self, cand: CandidateId, t: TimeStep) -> bool {
        let user = self.inst.candidate_user(cand);
        let slot = self.local_user(user) * self.inst.horizon() as usize + t.index();
        if self.display_count[slot] as u32 >= self.inst.display_limit() {
            return true;
        }
        self.capacity_violated_cand(cand, self.inst.candidate_item(cand).0)
    }

    fn would_violate_display_cand(&self, cand: CandidateId, t: TimeStep) -> bool {
        let user = self.inst.candidate_user(cand);
        let slot = self.local_user(user) * self.inst.horizon() as usize + t.index();
        self.display_count[slot] as u32 >= self.inst.display_limit()
    }

    fn marginal_revenue_cand(&self, cand: CandidateId, t: TimeStep) -> f64 {
        IncrementalRevenue::marginal_revenue_cand(self, cand, t)
    }

    fn marginal_revenue_batch(&self, cand: CandidateId, live_mask: u64, out: &mut [f64]) -> u32 {
        IncrementalRevenue::marginal_revenue_batch(self, cand, live_mask, out)
    }

    fn insert_cand(&mut self, cand: CandidateId, t: TimeStep) -> f64 {
        IncrementalRevenue::insert_cand(self, cand, t)
    }

    fn into_strategy(self) -> Strategy {
        IncrementalRevenue::into_strategy(self)
    }
}
