//! The engine abstraction the greedy algorithms are generic over.
//!
//! Two implementations exist: the flat-arena [`super::IncrementalRevenue`]
//! (the default, zero hashing on the hot path) and the original
//! [`super::HashIncrementalRevenue`] kept as a correctness reference and as
//! the measured baseline for the perf trajectory in `crates/bench`.

use super::kernels::AggregateMode;
use super::warm::ResidualDelta;
use crate::ids::{CandidateId, TimeStep};
use crate::instance::{Instance, UserShard};
use crate::strategy::Strategy;

/// Incremental evaluation of the REVMAX objective and constraints, addressed
/// by candidate id — the representation the greedy hot loops already hold.
///
/// Implementations must agree with the from-scratch [`super::revenue`] /
/// [`super::marginal_revenue`] functions to within floating-point noise; the
/// randomized property tests in `crates/core/tests/properties.rs` enforce
/// agreement to `1e-9`.
pub trait RevenueEngine<'a>: Sized + Sync + Send {
    /// Creates an empty evaluator; `ignore_saturation` selects the `GlobalNo`
    /// ablation behaviour (all saturation factors treated as 1 during
    /// selection).
    fn with_options(inst: &'a Instance, ignore_saturation: bool) -> Self;

    /// Creates an evaluator for a disjoint user shard of the instance.
    ///
    /// The shard view must behave exactly like a full evaluator restricted to
    /// the shard's users: identical marginals, identical display tracking,
    /// and capacity counts over the shard's own claims only. The *global*
    /// capacity constraint couples shards and is arbitrated outside the
    /// engine, through a [`super::ledger::SharedCapacityLedger`]; shard
    /// drivers therefore must not rely on
    /// [`RevenueEngine::would_violate_cand`] for capacity.
    ///
    /// The default implementation returns a full evaluator (semantically a
    /// valid — if memory-oversized — shard view, since sparse engines only
    /// ever touch state belonging to the candidates they are fed). The
    /// flat-arena engine overrides it with storage localised to the shard.
    fn for_shard(inst: &'a Instance, ignore_saturation: bool, shard: UserShard) -> Self {
        let _ = shard;
        Self::with_options(inst, ignore_saturation)
    }

    /// Creates an evaluator for a **residual replan**, warm-started from the
    /// state the previous replan of the same session left behind.
    ///
    /// `residual` describes the advance that produced `inst` (the frontier
    /// shift, the prefix-adjacent users whose groups were rebuilt) and
    /// carries the session's [`super::warm::EngineSnapshot`] pool. The
    /// constructor shape — rather than a `&mut self` method — is forced by
    /// the engine's borrowed-instance lifetime: the previous engine is bound
    /// to the *previous* residual instance, so reusable state crosses
    /// replans as owned data in the snapshot, not as a rebound engine.
    ///
    /// Warm starting is strictly a performance surface: implementations must
    /// produce an engine indistinguishable from
    /// [`RevenueEngine::for_shard`] (the warm-start parity suites assert
    /// identical plans to 1e-9 for both engines at shard counts 1 and 2).
    /// The default implementation ignores the delta and constructs cold —
    /// correct for engines with nothing worth recycling (the hash engine);
    /// the flat-arena engine overrides it to reuse its saturation tables and
    /// arena buffers.
    fn warm_start(
        inst: &'a Instance,
        ignore_saturation: bool,
        shard: UserShard,
        residual: &ResidualDelta,
    ) -> Self {
        let _ = residual;
        Self::for_shard(inst, ignore_saturation, shard)
    }

    /// Switches the engine's saturation-aggregate fast path on or off, when
    /// it has one (`PlannerConfig::aggregates` routes here). Normally called
    /// once, right after construction; implementations must keep mid-run
    /// toggling *safe* (the flat engine treats it as one-way: disabling
    /// falls back to the exact path, re-enabling after disabled insertions
    /// is ignored). The default implementation ignores the request —
    /// correct for engines without an aggregate path (the hash engine),
    /// whose [`RevenueEngine::aggregates_active`] stays `false`.
    ///
    /// Like every engine capability this is strictly a performance surface:
    /// both settings must produce marginals that agree to within
    /// floating-point noise (asserted to 1e-9 by the parity suites).
    fn set_aggregates(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Sets the engine's aggregate-engagement mode, when it compiles kernels
    /// (see `super::kernels`; `PlannerConfig::aggregates` routes here). The
    /// default implementation collapses the mode to the boolean
    /// [`RevenueEngine::set_aggregates`] surface — correct for engines
    /// without a kernel compiler (the hash engine), which simply have no
    /// aggregate path to gate. Like every engine capability this is strictly
    /// a performance surface (parity to 1e-9 across all modes).
    fn set_aggregate_mode(&mut self, mode: AggregateMode) {
        self.set_aggregates(mode.allows_aggregates());
    }

    /// The compiled kernel byte of a candidate's (user, class) group —
    /// batched heap-refresh drivers sort stale candidates by it so each
    /// refresh burst runs grouped, branch-predictable inner loops. Engines
    /// without a kernel compiler report one uniform kernel (0).
    fn kernel_id_cand(&self, cand: CandidateId) -> u8 {
        let _ = cand;
        0
    }

    /// Whether the saturation-aggregate fast path can engage for at least one
    /// of this evaluator's (user, class) groups — the capability probe benches
    /// and tests use to verify the fast path actually ran. `false` for
    /// engines without one.
    fn aggregates_active(&self) -> bool {
        false
    }

    /// The instance this evaluator is bound to.
    fn instance(&self) -> &'a Instance;

    /// Expected revenue of the strategy built so far (under the evaluator's
    /// saturation setting).
    fn revenue(&self) -> f64;

    /// Number of triples selected so far.
    fn len(&self) -> usize;

    /// Whether no triple has been selected yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the (user, class) group the candidate belongs to — the quantity
    /// the lazy-forward flags are compared against (`|set(u, C(i))|`).
    fn group_size_cand(&self, cand: CandidateId) -> usize;

    /// Whether selecting `(cand, t)` would violate the display or capacity
    /// constraint.
    fn would_violate_cand(&self, cand: CandidateId, t: TimeStep) -> bool;

    /// Whether selecting `(cand, t)` would violate only the display constraint.
    fn would_violate_display_cand(&self, cand: CandidateId, t: TimeStep) -> bool;

    /// Marginal revenue `Rev(S ∪ {z}) − Rev(S)` of the candidate triple
    /// `(cand, t)`; 0 if it is already selected.
    fn marginal_revenue_cand(&self, cand: CandidateId, t: TimeStep) -> f64;

    /// Recomputes the marginal revenue of every live time slot of a candidate
    /// in one call: bit `i` of `live_mask` selects time index `i`, and the
    /// result is written to `out[i]`. Returns the number of slots evaluated.
    ///
    /// The default implementation evaluates slot by slot; engines may override
    /// it with a fused walk (the flat-arena engine walks its group slab once
    /// for all slots). Only meaningful for horizons of at most 64 steps;
    /// callers must fall back to [`RevenueEngine::marginal_revenue_cand`]
    /// beyond that.
    fn marginal_revenue_batch(&self, cand: CandidateId, live_mask: u64, out: &mut [f64]) -> u32 {
        let mut evaluated = 0;
        for (t_idx, slot) in out.iter_mut().enumerate().take(64) {
            if live_mask & (1 << t_idx) != 0 {
                *slot = self.marginal_revenue_cand(cand, TimeStep::from_index(t_idx));
                evaluated += 1;
            }
        }
        evaluated
    }

    /// Adds the candidate triple to the strategy and returns its realised
    /// marginal revenue. The caller is responsible for constraint checks.
    fn insert_cand(&mut self, cand: CandidateId, t: TimeStep) -> f64;

    /// Consumes the evaluator and returns the built strategy.
    fn into_strategy(self) -> Strategy;
}
