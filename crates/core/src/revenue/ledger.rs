//! Display-capacity ledgers: the only cross-user coupling in REVMAX.
//!
//! The revenue objective decomposes per user (memory, saturation, and
//! competition all act within one user's (user, class) groups), and the
//! display constraint is per (user, time). The capacity constraint `q_i` —
//! at most `q_i` *distinct users* may receive item `i` across the horizon —
//! is the single piece of state shared between users. This module makes that
//! state a first-class object instead of a field inside one evaluator:
//!
//! * [`CapacityLedger`] — the sequential ledger used inside the incremental
//!   revenue engines: plain per-item counters, `&mut` claims;
//! * [`SharedCapacityLedger`] — the sharded ledger used by the
//!   shard-partitioned planners: per-item atomic counters with `&self`
//!   claim/release, safe to share across shard workers.
//!
//! Both ledgers count *claims*, one per distinct (item, user) pair; the
//! caller is responsible for claiming at most once per pair (the engines
//! dedup via their per-candidate `counted` bitmaps, the sharded drivers via
//! shard-local bitmaps — user shards are disjoint, so the dedup never needs
//! to be shared).
//!
//! Both ledgers carry the instance's per-item **exempt-user sets** (see
//! [`Instance::is_exempt`]): an exempt `(item, user)` pair neither consumes
//! capacity when charged nor blocks on a full item. Residual instances use
//! this to stop double-charging re-displays to prefix users; ordinary
//! instances have empty sets and pay one `bool` check.
//!
//! # Memory-ordering contract
//!
//! This module is the **only** place in the workspace where atomics (and
//! `std::sync::atomic::Ordering` tokens) are allowed — `cargo xtask lint`
//! enforces the confinement mechanically. Every ordering choice below is
//! justified in [`docs/concurrency.md`] (the ledger memory-ordering
//! contract), and the shared ledger's claim/charge/release protocol is
//! exhaustively schedule-checked by `cargo xtask check-ledger`, which
//! substitutes an instrumented [`LedgerCell`] for [`AtomicCell`] and
//! explores thread interleavings under an acquire/release-aware memory
//! model. The contract in one line: **claim-family RMWs publish with
//! `AcqRel` and count loads observe with `Acquire`, so any thread that
//! observes an item's count also observes every ledger update that
//! happened-before the RMW that produced it.**
//!
//! [`docs/concurrency.md`]: https://example.invalid/revmax/docs/concurrency.md

use crate::ids::{ItemId, UserId};
use crate::instance::{ExemptSets, Instance};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One shared counter cell of a [`SharedCapacityLedgerIn`].
///
/// The production ledger uses [`AtomicCell`], a zero-cost `AtomicU32`
/// newtype. The analysis toolchain (`cargo xtask check-ledger`) substitutes
/// an instrumented cell that records every load/RMW **with its requested
/// [`Ordering`]** into a schedule controller, then explores thread
/// interleavings of the real ledger code under an acquire/release-aware
/// memory model. Keeping the trait surface to exactly the operations the
/// ledger performs (load, `fetch_add`, `fetch_sub`, `compare_exchange`) is
/// what makes that exploration sound: every shared-memory transition of the
/// protocol is one trait call.
///
/// Implementations outside the model checker must be genuinely atomic;
/// the `Ordering` arguments follow the contract in `docs/concurrency.md`.
pub trait LedgerCell {
    /// A cell holding `value`.
    fn new(value: u32) -> Self;
    /// Atomic load with the requested ordering.
    fn load(&self, order: Ordering) -> u32;
    /// Atomic add; returns the previous value.
    fn fetch_add(&self, delta: u32, order: Ordering) -> u32;
    /// Atomic subtract; returns the previous value.
    fn fetch_sub(&self, delta: u32, order: Ordering) -> u32;
    /// Atomic compare-exchange (strong): store `new` iff the cell holds
    /// `current`. `Ok(previous)` on success, `Err(actual)` on failure.
    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32>;
}

/// The production [`LedgerCell`]: a `repr(transparent)` `AtomicU32` newtype.
///
/// Every method forwards directly, so the generic ledger instantiated at
/// `AtomicCell` compiles to the same code as hand-written atomics — the
/// sharded parity suites (1e-9 agreement with the sequential plan at every
/// shard count) pin the behaviour.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct AtomicCell(AtomicU32);

impl LedgerCell for AtomicCell {
    #[inline(always)]
    fn new(value: u32) -> Self {
        AtomicCell(AtomicU32::new(value))
    }

    #[inline(always)]
    fn load(&self, order: Ordering) -> u32 {
        self.0.load(order)
    }

    #[inline(always)]
    fn fetch_add(&self, delta: u32, order: Ordering) -> u32 {
        self.0.fetch_add(delta, order)
    }

    #[inline(always)]
    fn fetch_sub(&self, delta: u32, order: Ordering) -> u32 {
        self.0.fetch_sub(delta, order)
    }

    #[inline(always)]
    fn compare_exchange(
        &self,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        self.0.compare_exchange(current, new, success, failure)
    }
}

/// Sequential display-capacity ledger: per-item distinct-user counts against
/// the instance capacities `q_i`.
///
/// This is the state the incremental revenue engines mutate on every first
/// recommendation of an item to a new user. It was previously a private
/// `item_distinct_users` vector inside each engine; it is standalone so the
/// shard-partitioned planners can substitute the shared variant.
#[derive(Debug, Clone)]
pub struct CapacityLedger {
    used: Vec<u32>,
    cap: Vec<u32>,
    exempt: Arc<ExemptSets>,
}

impl CapacityLedger {
    /// Creates an empty ledger for an instance (no capacity consumed).
    pub fn new(inst: &Instance) -> Self {
        let items = inst.num_items() as usize;
        CapacityLedger {
            used: vec![0; items],
            cap: (0..inst.num_items())
                .map(|i| inst.capacity(ItemId(i)))
                .collect(),
            exempt: inst.exempt_sets(),
        }
    }

    /// Whether `(item, user)` is exempt from capacity accounting.
    #[inline]
    pub fn is_exempt(&self, item: ItemId, user: UserId) -> bool {
        self.exempt.contains(item, user)
    }

    /// Whether the item has no capacity left for *this* user: full **and**
    /// the `(item, user)` pair is not exempt. This is the check selection
    /// loops should make before granting a display.
    #[inline]
    pub fn is_full_for(&self, item: ItemId, user: UserId) -> bool {
        self.is_full(item) && !self.is_exempt(item, user)
    }

    /// Records the first display of `item` to `user`: claims one capacity
    /// unit unless the pair is exempt. The caller dedups pairs (call once
    /// per distinct `(item, user)`), exactly as for
    /// [`CapacityLedger::claim_unchecked`].
    #[inline]
    pub fn charge(&mut self, item: ItemId, user: UserId) {
        if !self.is_exempt(item, user) {
            self.claim_unchecked(item);
        }
    }

    /// Number of distinct users the item has been claimed for so far.
    #[inline]
    pub fn used(&self, item: ItemId) -> u32 {
        self.used[item.index()]
    }

    /// The capacity `q_i` of the item.
    #[inline]
    pub fn capacity(&self, item: ItemId) -> u32 {
        self.cap[item.index()]
    }

    /// Whether the item has no capacity left for a *new* user.
    #[inline]
    pub fn is_full(&self, item: ItemId) -> bool {
        self.used[item.index()] >= self.cap[item.index()]
    }

    /// Claims one unit of the item's capacity. Returns `false` (and changes
    /// nothing) if the item is already full.
    #[inline]
    pub fn claim(&mut self, item: ItemId) -> bool {
        if self.is_full(item) {
            return false;
        }
        self.used[item.index()] += 1;
        true
    }

    /// Records a claim without checking the capacity.
    ///
    /// The incremental engines accept *any* strategy through their insert
    /// APIs (the caller owns constraint checking), so their bookkeeping must
    /// keep counting past the capacity; [`CapacityLedger::is_full`] still
    /// reports the constraint correctly.
    #[inline]
    pub fn claim_unchecked(&mut self, item: ItemId) {
        self.used[item.index()] += 1;
    }

    /// Releases one previously claimed unit. Claims from the greedy
    /// planners are permanent — no production path calls this today; it
    /// completes the ledger API for backtracking callers (e.g. a future
    /// ledger-aware local search).
    #[inline]
    pub fn release(&mut self, item: ItemId) {
        debug_assert!(self.used[item.index()] > 0, "release without claim");
        self.used[item.index()] = self.used[item.index()].saturating_sub(1);
    }
}

/// Shard-safe display-capacity ledger: per-item atomic claim counts.
///
/// Shard workers plan disjoint user ranges concurrently and claim item
/// capacity through one shared ledger; claims are lock-free CAS loops, so the
/// ledger never blocks a worker. Determinism of the *plan* is not the
/// ledger's job — the shard coordinator grants claims in descending
/// marginal-revenue order (see `revmax-algorithms::sharded`), which makes the
/// sharded plan reproduce the sequential one exactly regardless of thread
/// scheduling.
///
/// The ledger is generic over its counter cell so `cargo xtask check-ledger`
/// can run **this exact code** under an instrumented [`LedgerCell`] and
/// exhaustively explore thread interleavings; production code uses the
/// [`SharedCapacityLedger`] alias (cells are [`AtomicCell`]). The ordering
/// arguments passed to the cells are the contract documented in
/// `docs/concurrency.md`.
#[derive(Debug)]
pub struct SharedCapacityLedgerIn<C: LedgerCell> {
    used: Vec<C>,
    /// Capacity-window state, per item: units of `used` that are held
    /// *speculatively* by parked scarce-window proposals (see
    /// [`SharedCapacityLedgerIn::try_claim_spec`]). `used - spec` is the
    /// committed claim count — the basis concurrent shard workers gate on.
    spec: Vec<C>,
    /// Capacity-window state, per item: remaining non-exempt candidate
    /// `(item, user)` pairs that could still claim. Initialised from the
    /// instance's candidate lists; decremented by
    /// [`SharedCapacityLedgerIn::retire_demand`] when a pair commits or
    /// dies. Decrements may lag the actual deaths (the cell is a
    /// conservative upper bound), which only keeps an item scarce longer —
    /// never the reverse.
    demand: Vec<C>,
    cap: Vec<u32>,
    exempt: Arc<ExemptSets>,
}

/// The production shared ledger: [`SharedCapacityLedgerIn`] over
/// [`AtomicCell`] cells.
pub type SharedCapacityLedger = SharedCapacityLedgerIn<AtomicCell>;

impl<C: LedgerCell> SharedCapacityLedgerIn<C> {
    /// Creates an empty shared ledger for an instance.
    ///
    /// Cell construction order is part of the analysis-toolchain contract:
    /// the `used` cells are registered first (cell ids `0..items` under the
    /// instrumented cell, which is what `cargo xtask check-ledger` keys its
    /// per-item capacity invariants on), then `spec`, then `demand`.
    pub fn new(inst: &Instance) -> Self {
        let items = inst.num_items() as usize;
        let exempt = inst.exempt_sets();
        let mut demand_init = vec![0u32; items];
        for cand in inst.candidates() {
            let item = inst.candidate_item(cand);
            if !exempt.contains(item, inst.candidate_user(cand)) {
                demand_init[item.index()] += 1;
            }
        }
        SharedCapacityLedgerIn {
            used: (0..items).map(|_| C::new(0)).collect(),
            spec: (0..items).map(|_| C::new(0)).collect(),
            demand: demand_init.iter().map(|&d| C::new(d)).collect(),
            cap: (0..inst.num_items())
                .map(|i| inst.capacity(ItemId(i)))
                .collect(),
            exempt,
        }
    }

    /// Whether `(item, user)` is exempt from capacity accounting.
    #[inline]
    pub fn is_exempt(&self, item: ItemId, user: UserId) -> bool {
        self.exempt.contains(item, user)
    }

    /// Whether the item has no capacity left for *this* user: full **and**
    /// the `(item, user)` pair is not exempt.
    #[inline]
    pub fn is_full_for(&self, item: ItemId, user: UserId) -> bool {
        self.is_full(item) && !self.is_exempt(item, user)
    }

    /// [`SharedCapacityLedger::try_claim`] for a specific user: exempt pairs
    /// succeed without consuming capacity.
    pub fn try_claim_for(&self, item: ItemId, user: UserId) -> bool {
        if self.is_exempt(item, user) {
            return true;
        }
        self.try_claim(item)
    }

    /// Number of distinct users the item has been claimed for so far.
    ///
    /// `Acquire`: pairs with the `AcqRel` claim-family RMWs so an observed
    /// count carries every ledger update that happened-before the RMW that
    /// produced it (contract in `docs/concurrency.md`).
    #[inline]
    pub fn used(&self, item: ItemId) -> u32 {
        self.used[item.index()].load(Ordering::Acquire)
    }

    /// The capacity `q_i` of the item.
    #[inline]
    pub fn capacity(&self, item: ItemId) -> u32 {
        self.cap[item.index()]
    }

    /// Whether the item has no capacity left for a new user.
    #[inline]
    pub fn is_full(&self, item: ItemId) -> bool {
        self.used(item) >= self.cap[item.index()]
    }

    /// Atomically claims one unit of the item's capacity. Returns `false`
    /// (and changes nothing) if the item is already full.
    ///
    /// The CAS loop is written against the [`LedgerCell`] surface (one load,
    /// then compare-exchange until settled) so the model checker sees each
    /// shared-memory transition. `AcqRel` on success publishes the claim and
    /// acquires the claims it was stacked on; `Acquire` on the load/failure
    /// paths keeps retries and the full-item early-out synchronised
    /// (`docs/concurrency.md`).
    pub fn try_claim(&self, item: ItemId) -> bool {
        let cap = self.cap[item.index()];
        let cell = &self.used[item.index()];
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            if cur >= cap {
                return false;
            }
            match cell.compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records the first display of `item` to `user` **without** checking the
    /// capacity: claims one unit unless the pair is exempt. The shared
    /// counterpart of [`CapacityLedger::charge`] — engine-side bookkeeping
    /// for callers that own constraint checking (the speculative shard
    /// executor charges realised displays through this). The caller dedups
    /// `(item, user)` pairs, exactly as for the sequential ledger.
    ///
    /// `AcqRel`: the unconditional RMW both publishes this charge and joins
    /// the release sequence of prior claim-family RMWs, so charges are
    /// causally ordered with claims (`docs/concurrency.md`).
    #[inline]
    pub fn charge(&self, item: ItemId, user: UserId) {
        if !self.is_exempt(item, user) {
            self.used[item.index()].fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Releases one previously claimed unit. Like
    /// [`CapacityLedger::release`], no production path calls this today;
    /// it completes the shared-ledger API for backtracking callers.
    ///
    /// `AcqRel`: the decrement must not be reordered before the reads of the
    /// work being rolled back, and a later `Acquire` load observing the
    /// release also observes what the releasing thread undid
    /// (`docs/concurrency.md`).
    pub fn release(&self, item: ItemId) {
        let prev = self.used[item.index()].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "release without claim");
    }

    /// Snapshot of the per-item claim counts (indexed by item id).
    ///
    /// `Acquire` per cell: each count is individually causally consistent;
    /// the snapshot as a whole is **not** an atomic cut (`docs/concurrency.md`
    /// spells out what callers may and may not conclude from it).
    pub fn snapshot(&self) -> Vec<u32> {
        self.used
            .iter()
            .map(|u| u.load(Ordering::Acquire))
            .collect()
    }

    // -----------------------------------------------------------------------
    // Capacity-window analysis (the scarcity window)
    //
    // An item whose remaining candidate demand can never exceed its
    // remaining capacity can never bind: every future claim against it is
    // guaranteed to succeed, so claims are order-insensitive and shard
    // workers may commit them lock-free without arbitration. The window
    // state is two extra cells per item (`demand`, `spec`); the ordering
    // rationale for every operation below is in `docs/concurrency.md`.
    // -----------------------------------------------------------------------

    /// Remaining non-exempt candidate demand for the item — an upper bound
    /// on the number of future capacity claims.
    ///
    /// `Acquire`: pairs with the `AcqRel` [`SharedCapacityLedgerIn::retire_demand`]
    /// decrements, so an observed demand carries the retirement history that
    /// produced it (`docs/concurrency.md`).
    #[inline]
    pub fn demand(&self, item: ItemId) -> u32 {
        self.demand[item.index()].load(Ordering::Acquire)
    }

    /// Units of the item's claim count held speculatively by parked
    /// scarce-window proposals (diagnostics; the protocol itself reads the
    /// combination through [`SharedCapacityLedgerIn::committed_used`]).
    ///
    /// `Acquire`: same pairing as [`SharedCapacityLedgerIn::used`]
    /// (`docs/concurrency.md`).
    #[inline]
    pub fn speculative(&self, item: ItemId) -> u32 {
        self.spec[item.index()].load(Ordering::Acquire)
    }

    /// The item's committed claim count: `used` minus the speculative units
    /// held by parked proposals. This — not the raw count — is what a
    /// free-running shard's capacity gate must read: a speculative unit may
    /// still be stolen by a sequentially earlier claim, so it must not
    /// retire anyone.
    ///
    /// Read order is load-bearing: `used` is loaded **before** `spec`
    /// (both `Acquire`). A speculative claim raises `spec` before `used`,
    /// so this order can transiently *under*-count committed units — which
    /// only delays a retirement — but never over-count, which would retire
    /// a live candidate (`docs/concurrency.md`).
    #[inline]
    pub fn committed_used(&self, item: ItemId) -> u32 {
        let used = self.used[item.index()].load(Ordering::Acquire);
        let spec = self.spec[item.index()].load(Ordering::Acquire);
        used.saturating_sub(spec)
    }

    /// Whether the item has no *committed* capacity left for this user:
    /// committed-full **and** the `(item, user)` pair is not exempt. The
    /// committed-basis counterpart of [`SharedCapacityLedgerIn::is_full_for`],
    /// for gates that run concurrently with parked speculative claims.
    #[inline]
    pub fn is_full_committed_for(&self, item: ItemId, user: UserId) -> bool {
        self.committed_used(item) >= self.cap[item.index()] && !self.is_exempt(item, user)
    }

    /// Whether the item is inside the **scarcity window**: its remaining
    /// candidate demand exceeds its remaining capacity, so claim order can
    /// decide who gets the last units and commits must be arbitrated.
    ///
    /// A `false` answer is *sticky* during planning: demand only shrinks
    /// and (claims being the only capacity consumers while shards plan)
    /// `demand - (cap - used)` never grows, so an item observed abundant
    /// stays abundant and every later claim against it succeeds. Read order
    /// is load-bearing for exactly that argument: `demand` is loaded
    /// **before** `used` (both `Acquire`), so a racing commit can only make
    /// the pair read *more* scarce than reality, never less
    /// (`docs/concurrency.md`). [`SharedCapacityLedgerIn::charge`] breaks
    /// the monotonicity (it consumes capacity without retiring demand) and
    /// migrates items *into* the window — concurrent planners re-check
    /// after any failed fast-path claim for that reason.
    #[inline]
    pub fn is_scarce(&self, item: ItemId) -> bool {
        let demand = self.demand[item.index()].load(Ordering::Acquire);
        let used = self.used[item.index()].load(Ordering::Acquire);
        demand > self.cap[item.index()].saturating_sub(used)
    }

    /// Retires one unit of the item's candidate demand: the `(item, user)`
    /// pair has either committed its claim or died without one, and can
    /// never claim again. Exempt pairs were never counted and are a no-op.
    /// The caller retires each pair at most once (same dedup discipline as
    /// claims).
    ///
    /// `AcqRel`: the decrement publishes the retirement (a thread observing
    /// the shrunken demand — e.g. through
    /// [`SharedCapacityLedgerIn::is_scarce`] turning abundant — also
    /// observes the commit or death that caused it) and joins the release
    /// sequence of prior window updates (`docs/concurrency.md`).
    pub fn retire_demand(&self, item: ItemId, user: UserId) {
        if !self.is_exempt(item, user) {
            let prev = self.demand[item.index()].fetch_sub(1, Ordering::AcqRel);
            debug_assert!(prev > 0, "retire_demand without remaining demand");
        }
    }

    /// Claims one unit of the item's capacity **speculatively**, for a
    /// scarce-window proposal that is about to park for arbitration. On
    /// success the unit is tagged speculative (`spec` raised) until the
    /// coordinator either converts it ([`SharedCapacityLedgerIn::commit_spec`])
    /// or rolls it back ([`SharedCapacityLedgerIn::release_spec`]). Returns
    /// whether the ledger granted the unit.
    ///
    /// Operation order is load-bearing: `spec` is raised (`fetch_add`,
    /// `AcqRel`) **before** the capacity CAS, and lowered again (`AcqRel`)
    /// if the CAS loses — so a concurrent
    /// [`SharedCapacityLedgerIn::committed_used`] reader (which loads in
    /// the opposite order) can under-count but never over-count committed
    /// units (`docs/concurrency.md`).
    pub fn try_claim_spec(&self, item: ItemId) -> bool {
        self.spec[item.index()].fetch_add(1, Ordering::AcqRel);
        if self.try_claim(item) {
            true
        } else {
            self.spec[item.index()].fetch_sub(1, Ordering::AcqRel);
            false
        }
    }

    /// Converts a speculative unit into a committed one: the coordinator
    /// admitted the parked proposal holding it. Coordinator-only, and only
    /// while every shard is parked (the arbitration barrier) — see
    /// `docs/concurrency.md` for why the quiescence requirement exists.
    ///
    /// `AcqRel`: the decrement of `spec` publishes the admission together
    /// with everything the coordinator decided before it.
    pub fn commit_spec(&self, item: ItemId) {
        let prev = self.spec[item.index()].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "commit_spec without a speculative unit");
    }

    /// Rolls back a speculative unit: the coordinator stole it for a
    /// sequentially earlier claim (or rejected the proposal holding it).
    /// Releases the capacity unit first, then drops the speculative tag.
    /// Coordinator-only and barrier-quiescent, like
    /// [`SharedCapacityLedgerIn::commit_spec`]: the two decrements are not
    /// one atomic step, and a concurrent committed-basis reader between
    /// them could over-count (`docs/concurrency.md`).
    pub fn release_spec(&self, item: ItemId) {
        self.release(item);
        let prev = self.spec[item.index()].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "release_spec without a speculative unit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn two_item_instance() -> Instance {
        let mut b = InstanceBuilder::new(4, 2, 1);
        b.display_limit(1)
            .capacity(0, 2)
            .capacity(1, 1)
            .constant_price(0, 1.0)
            .constant_price(1, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(1, 1, &[0.5], 0.0);
        b.build().unwrap()
    }

    #[test]
    fn sequential_ledger_enforces_capacity() {
        let inst = two_item_instance();
        let mut ledger = CapacityLedger::new(&inst);
        assert_eq!(ledger.capacity(ItemId(0)), 2);
        assert!(ledger.claim(ItemId(0)));
        assert!(ledger.claim(ItemId(0)));
        assert!(ledger.is_full(ItemId(0)));
        assert!(!ledger.claim(ItemId(0)));
        assert_eq!(ledger.used(ItemId(0)), 2);
        ledger.release(ItemId(0));
        assert!(!ledger.is_full(ItemId(0)));
        assert!(ledger.claim(ItemId(0)));
    }

    #[test]
    fn shared_ledger_claims_match_sequential_semantics() {
        let inst = two_item_instance();
        let shared = SharedCapacityLedger::new(&inst);
        assert!(shared.try_claim(ItemId(1)));
        assert!(!shared.try_claim(ItemId(1)));
        assert!(shared.is_full(ItemId(1)));
        shared.release(ItemId(1));
        assert!(shared.try_claim(ItemId(1)));
        assert_eq!(shared.snapshot(), vec![0, 1]);
    }

    #[test]
    fn exempt_pairs_neither_block_nor_consume() {
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.capacity(0, 1)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .exempt_user(0, 2);
        let inst = b.build().unwrap();

        let mut ledger = CapacityLedger::new(&inst);
        assert!(ledger.is_exempt(ItemId(0), UserId(2)));
        ledger.charge(ItemId(0), UserId(2)); // exempt: no unit consumed
        assert_eq!(ledger.used(ItemId(0)), 0);
        ledger.charge(ItemId(0), UserId(0));
        assert_eq!(ledger.used(ItemId(0)), 1);
        assert!(ledger.is_full(ItemId(0)));
        assert!(ledger.is_full_for(ItemId(0), UserId(1)));
        assert!(!ledger.is_full_for(ItemId(0), UserId(2)));

        let shared = SharedCapacityLedger::new(&inst);
        assert!(shared.try_claim_for(ItemId(0), UserId(2)));
        assert_eq!(shared.used(ItemId(0)), 0);
        assert!(shared.try_claim_for(ItemId(0), UserId(0)));
        assert!(shared.is_full(ItemId(0)));
        assert!(!shared.is_full_for(ItemId(0), UserId(2)));
        assert!(shared.try_claim_for(ItemId(0), UserId(2)));
        assert!(!shared.try_claim_for(ItemId(0), UserId(1)));
    }

    #[test]
    fn shared_charge_matches_sequential_charge() {
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.capacity(0, 1)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .exempt_user(0, 2);
        let inst = b.build().unwrap();

        let shared = SharedCapacityLedger::new(&inst);
        shared.charge(ItemId(0), UserId(2)); // exempt: no unit consumed
        assert_eq!(shared.used(ItemId(0)), 0);
        shared.charge(ItemId(0), UserId(0));
        assert_eq!(shared.used(ItemId(0)), 1);
        // Charges are unchecked bookkeeping: they keep counting past the
        // capacity, exactly like the sequential ledger's charge.
        shared.charge(ItemId(0), UserId(1));
        assert_eq!(shared.used(ItemId(0)), 2);
        assert!(shared.is_full(ItemId(0)));
    }

    #[test]
    fn shared_ledger_never_oversubscribes_under_contention() {
        let mut b = InstanceBuilder::new(64, 1, 1);
        b.capacity(0, 17)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0);
        let inst = b.build().unwrap();
        let ledger = SharedCapacityLedger::new(&inst);
        let granted: u32 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut wins = 0;
                        for _ in 0..8 {
                            if ledger.try_claim(ItemId(0)) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(granted, 17, "exactly the capacity must be granted");
        assert_eq!(ledger.used(ItemId(0)), 17);
    }

    /// Demand counts non-exempt candidate pairs per item; exempt candidates
    /// are excluded from the window entirely.
    #[test]
    fn window_demand_counts_non_exempt_candidates() {
        let mut b = InstanceBuilder::new(4, 2, 1);
        b.display_limit(1)
            .capacity(0, 1)
            .capacity(1, 8)
            .constant_price(0, 1.0)
            .constant_price(1, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(1, 0, &[0.5], 0.0)
            .candidate(2, 0, &[0.5], 0.0)
            .candidate(3, 1, &[0.5], 0.0)
            .exempt_user(0, 2);
        let inst = b.build().unwrap();
        let shared = SharedCapacityLedger::new(&inst);
        // Item 0: three candidates, one exempt -> demand 2 against cap 1.
        assert_eq!(shared.demand(ItemId(0)), 2);
        assert!(shared.is_scarce(ItemId(0)));
        // Item 1: demand 1 against cap 8 -> abundant.
        assert_eq!(shared.demand(ItemId(1)), 1);
        assert!(!shared.is_scarce(ItemId(1)));

        // A commit consumes a unit AND a demand: the deficit is unchanged.
        assert!(shared.try_claim_for(ItemId(0), UserId(0)));
        shared.retire_demand(ItemId(0), UserId(0));
        assert!(shared.is_scarce(ItemId(0)));
        // A death without a claim shrinks the deficit: item migrates out.
        shared.retire_demand(ItemId(0), UserId(1));
        assert!(!shared.is_scarce(ItemId(0)));
        // Exempt retirement is a no-op.
        shared.retire_demand(ItemId(0), UserId(2));
        assert_eq!(shared.demand(ItemId(0)), 0);
    }

    /// Speculative claims hold real capacity but stay out of the committed
    /// count until converted; rollback restores both sides.
    #[test]
    fn speculative_claims_convert_or_roll_back() {
        let mut b = InstanceBuilder::new(4, 1, 1);
        b.capacity(0, 2)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(1, 0, &[0.5], 0.0)
            .candidate(2, 0, &[0.5], 0.0);
        let inst = b.build().unwrap();
        let shared = SharedCapacityLedger::new(&inst);
        let item = ItemId(0);

        assert!(shared.try_claim_spec(item));
        assert!(shared.try_claim_spec(item));
        assert_eq!(shared.used(item), 2);
        assert_eq!(shared.speculative(item), 2);
        assert_eq!(shared.committed_used(item), 0);
        assert!(!shared.is_full_committed_for(item, UserId(2)));
        // The item is full at the raw count: a third speculative claim loses
        // and must leave the speculative tag balanced.
        assert!(!shared.try_claim_spec(item));
        assert_eq!(shared.speculative(item), 2);

        // Admit one, roll back the other.
        shared.commit_spec(item);
        assert_eq!(shared.committed_used(item), 1);
        shared.release_spec(item);
        assert_eq!(shared.used(item), 1);
        assert_eq!(shared.speculative(item), 0);
        assert_eq!(shared.committed_used(item), 1);
        // The freed unit is claimable again.
        assert!(shared.try_claim_for(item, UserId(2)));
        assert!(shared.is_full_committed_for(item, UserId(3)));
    }

    /// A charge consumes capacity without retiring demand: the one event
    /// that migrates an item *into* the scarcity window.
    #[test]
    fn charge_migrates_item_into_window() {
        let mut b = InstanceBuilder::new(4, 1, 1);
        b.capacity(0, 2)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(1, 0, &[0.5], 0.0);
        let inst = b.build().unwrap();
        let shared = SharedCapacityLedger::new(&inst);
        // Demand 2 against cap 2: abundant.
        assert!(!shared.is_scarce(ItemId(0)));
        // An engine-side charge (prefix bookkeeping) takes a unit the
        // candidates were counting on.
        shared.charge(ItemId(0), UserId(3));
        assert!(shared.is_scarce(ItemId(0)));
    }
}
