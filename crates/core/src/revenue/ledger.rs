//! Display-capacity ledgers: the only cross-user coupling in REVMAX.
//!
//! The revenue objective decomposes per user (memory, saturation, and
//! competition all act within one user's (user, class) groups), and the
//! display constraint is per (user, time). The capacity constraint `q_i` —
//! at most `q_i` *distinct users* may receive item `i` across the horizon —
//! is the single piece of state shared between users. This module makes that
//! state a first-class object instead of a field inside one evaluator:
//!
//! * [`CapacityLedger`] — the sequential ledger used inside the incremental
//!   revenue engines: plain per-item counters, `&mut` claims;
//! * [`SharedCapacityLedger`] — the sharded ledger used by the
//!   shard-partitioned planners: per-item atomic counters with `&self`
//!   claim/release, safe to share across shard workers.
//!
//! Both ledgers count *claims*, one per distinct (item, user) pair; the
//! caller is responsible for claiming at most once per pair (the engines
//! dedup via their per-candidate `counted` bitmaps, the sharded drivers via
//! shard-local bitmaps — user shards are disjoint, so the dedup never needs
//! to be shared).
//!
//! Both ledgers carry the instance's per-item **exempt-user sets** (see
//! [`Instance::is_exempt`]): an exempt `(item, user)` pair neither consumes
//! capacity when charged nor blocks on a full item. Residual instances use
//! this to stop double-charging re-displays to prefix users; ordinary
//! instances have empty sets and pay one `bool` check.

use crate::ids::{ItemId, UserId};
use crate::instance::{ExemptSets, Instance};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Sequential display-capacity ledger: per-item distinct-user counts against
/// the instance capacities `q_i`.
///
/// This is the state the incremental revenue engines mutate on every first
/// recommendation of an item to a new user. It was previously a private
/// `item_distinct_users` vector inside each engine; it is standalone so the
/// shard-partitioned planners can substitute the shared variant.
#[derive(Debug, Clone)]
pub struct CapacityLedger {
    used: Vec<u32>,
    cap: Vec<u32>,
    exempt: Arc<ExemptSets>,
}

impl CapacityLedger {
    /// Creates an empty ledger for an instance (no capacity consumed).
    pub fn new(inst: &Instance) -> Self {
        let items = inst.num_items() as usize;
        CapacityLedger {
            used: vec![0; items],
            cap: (0..inst.num_items())
                .map(|i| inst.capacity(ItemId(i)))
                .collect(),
            exempt: inst.exempt_sets(),
        }
    }

    /// Whether `(item, user)` is exempt from capacity accounting.
    #[inline]
    pub fn is_exempt(&self, item: ItemId, user: UserId) -> bool {
        self.exempt.contains(item, user)
    }

    /// Whether the item has no capacity left for *this* user: full **and**
    /// the `(item, user)` pair is not exempt. This is the check selection
    /// loops should make before granting a display.
    #[inline]
    pub fn is_full_for(&self, item: ItemId, user: UserId) -> bool {
        self.is_full(item) && !self.is_exempt(item, user)
    }

    /// Records the first display of `item` to `user`: claims one capacity
    /// unit unless the pair is exempt. The caller dedups pairs (call once
    /// per distinct `(item, user)`), exactly as for
    /// [`CapacityLedger::claim_unchecked`].
    #[inline]
    pub fn charge(&mut self, item: ItemId, user: UserId) {
        if !self.is_exempt(item, user) {
            self.claim_unchecked(item);
        }
    }

    /// Number of distinct users the item has been claimed for so far.
    #[inline]
    pub fn used(&self, item: ItemId) -> u32 {
        self.used[item.index()]
    }

    /// The capacity `q_i` of the item.
    #[inline]
    pub fn capacity(&self, item: ItemId) -> u32 {
        self.cap[item.index()]
    }

    /// Whether the item has no capacity left for a *new* user.
    #[inline]
    pub fn is_full(&self, item: ItemId) -> bool {
        self.used[item.index()] >= self.cap[item.index()]
    }

    /// Claims one unit of the item's capacity. Returns `false` (and changes
    /// nothing) if the item is already full.
    #[inline]
    pub fn claim(&mut self, item: ItemId) -> bool {
        if self.is_full(item) {
            return false;
        }
        self.used[item.index()] += 1;
        true
    }

    /// Records a claim without checking the capacity.
    ///
    /// The incremental engines accept *any* strategy through their insert
    /// APIs (the caller owns constraint checking), so their bookkeeping must
    /// keep counting past the capacity; [`CapacityLedger::is_full`] still
    /// reports the constraint correctly.
    #[inline]
    pub fn claim_unchecked(&mut self, item: ItemId) {
        self.used[item.index()] += 1;
    }

    /// Releases one previously claimed unit. Claims from the greedy
    /// planners are permanent — no production path calls this today; it
    /// completes the ledger API for backtracking callers (e.g. a future
    /// ledger-aware local search).
    #[inline]
    pub fn release(&mut self, item: ItemId) {
        debug_assert!(self.used[item.index()] > 0, "release without claim");
        self.used[item.index()] = self.used[item.index()].saturating_sub(1);
    }
}

/// Shard-safe display-capacity ledger: per-item atomic claim counts.
///
/// Shard workers plan disjoint user ranges concurrently and claim item
/// capacity through one shared ledger; claims are lock-free CAS loops, so the
/// ledger never blocks a worker. Determinism of the *plan* is not the
/// ledger's job — the shard coordinator grants claims in descending
/// marginal-revenue order (see `revmax-algorithms::sharded`), which makes the
/// sharded plan reproduce the sequential one exactly regardless of thread
/// scheduling.
#[derive(Debug)]
pub struct SharedCapacityLedger {
    used: Vec<AtomicU32>,
    cap: Vec<u32>,
    exempt: Arc<ExemptSets>,
}

impl SharedCapacityLedger {
    /// Creates an empty shared ledger for an instance.
    pub fn new(inst: &Instance) -> Self {
        let items = inst.num_items() as usize;
        SharedCapacityLedger {
            used: (0..items).map(|_| AtomicU32::new(0)).collect(),
            cap: (0..inst.num_items())
                .map(|i| inst.capacity(ItemId(i)))
                .collect(),
            exempt: inst.exempt_sets(),
        }
    }

    /// Whether `(item, user)` is exempt from capacity accounting.
    #[inline]
    pub fn is_exempt(&self, item: ItemId, user: UserId) -> bool {
        self.exempt.contains(item, user)
    }

    /// Whether the item has no capacity left for *this* user: full **and**
    /// the `(item, user)` pair is not exempt.
    #[inline]
    pub fn is_full_for(&self, item: ItemId, user: UserId) -> bool {
        self.is_full(item) && !self.is_exempt(item, user)
    }

    /// [`SharedCapacityLedger::try_claim`] for a specific user: exempt pairs
    /// succeed without consuming capacity.
    pub fn try_claim_for(&self, item: ItemId, user: UserId) -> bool {
        if self.is_exempt(item, user) {
            return true;
        }
        self.try_claim(item)
    }

    /// Number of distinct users the item has been claimed for so far.
    #[inline]
    pub fn used(&self, item: ItemId) -> u32 {
        self.used[item.index()].load(Ordering::Acquire)
    }

    /// The capacity `q_i` of the item.
    #[inline]
    pub fn capacity(&self, item: ItemId) -> u32 {
        self.cap[item.index()]
    }

    /// Whether the item has no capacity left for a new user.
    #[inline]
    pub fn is_full(&self, item: ItemId) -> bool {
        self.used(item) >= self.cap[item.index()]
    }

    /// Atomically claims one unit of the item's capacity. Returns `false`
    /// (and changes nothing) if the item is already full.
    pub fn try_claim(&self, item: ItemId) -> bool {
        let cap = self.cap[item.index()];
        self.used[item.index()]
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                if used >= cap {
                    None
                } else {
                    Some(used + 1)
                }
            })
            .is_ok()
    }

    /// Releases one previously claimed unit. Like
    /// [`CapacityLedger::release`], no production path calls this today;
    /// it completes the shared-ledger API for backtracking callers.
    pub fn release(&self, item: ItemId) {
        let prev = self.used[item.index()].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "release without claim");
    }

    /// Snapshot of the per-item claim counts (indexed by item id).
    pub fn snapshot(&self) -> Vec<u32> {
        self.used
            .iter()
            .map(|u| u.load(Ordering::Acquire))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn two_item_instance() -> Instance {
        let mut b = InstanceBuilder::new(4, 2, 1);
        b.display_limit(1)
            .capacity(0, 2)
            .capacity(1, 1)
            .constant_price(0, 1.0)
            .constant_price(1, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(1, 1, &[0.5], 0.0);
        b.build().unwrap()
    }

    #[test]
    fn sequential_ledger_enforces_capacity() {
        let inst = two_item_instance();
        let mut ledger = CapacityLedger::new(&inst);
        assert_eq!(ledger.capacity(ItemId(0)), 2);
        assert!(ledger.claim(ItemId(0)));
        assert!(ledger.claim(ItemId(0)));
        assert!(ledger.is_full(ItemId(0)));
        assert!(!ledger.claim(ItemId(0)));
        assert_eq!(ledger.used(ItemId(0)), 2);
        ledger.release(ItemId(0));
        assert!(!ledger.is_full(ItemId(0)));
        assert!(ledger.claim(ItemId(0)));
    }

    #[test]
    fn shared_ledger_claims_match_sequential_semantics() {
        let inst = two_item_instance();
        let shared = SharedCapacityLedger::new(&inst);
        assert!(shared.try_claim(ItemId(1)));
        assert!(!shared.try_claim(ItemId(1)));
        assert!(shared.is_full(ItemId(1)));
        shared.release(ItemId(1));
        assert!(shared.try_claim(ItemId(1)));
        assert_eq!(shared.snapshot(), vec![0, 1]);
    }

    #[test]
    fn exempt_pairs_neither_block_nor_consume() {
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.capacity(0, 1)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .exempt_user(0, 2);
        let inst = b.build().unwrap();

        let mut ledger = CapacityLedger::new(&inst);
        assert!(ledger.is_exempt(ItemId(0), UserId(2)));
        ledger.charge(ItemId(0), UserId(2)); // exempt: no unit consumed
        assert_eq!(ledger.used(ItemId(0)), 0);
        ledger.charge(ItemId(0), UserId(0));
        assert_eq!(ledger.used(ItemId(0)), 1);
        assert!(ledger.is_full(ItemId(0)));
        assert!(ledger.is_full_for(ItemId(0), UserId(1)));
        assert!(!ledger.is_full_for(ItemId(0), UserId(2)));

        let shared = SharedCapacityLedger::new(&inst);
        assert!(shared.try_claim_for(ItemId(0), UserId(2)));
        assert_eq!(shared.used(ItemId(0)), 0);
        assert!(shared.try_claim_for(ItemId(0), UserId(0)));
        assert!(shared.is_full(ItemId(0)));
        assert!(!shared.is_full_for(ItemId(0), UserId(2)));
        assert!(shared.try_claim_for(ItemId(0), UserId(2)));
        assert!(!shared.try_claim_for(ItemId(0), UserId(1)));
    }

    #[test]
    fn shared_ledger_never_oversubscribes_under_contention() {
        let mut b = InstanceBuilder::new(64, 1, 1);
        b.capacity(0, 17)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0);
        let inst = b.build().unwrap();
        let ledger = SharedCapacityLedger::new(&inst);
        let granted: u32 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut wins = 0;
                        for _ in 0..8 {
                            if ledger.try_claim(ItemId(0)) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(granted, 17, "exactly the capacity must be granted");
        assert_eq!(ledger.used(ItemId(0)), 17);
    }
}
