//! Warm-start state shared between successive residual replans.
//!
//! A dynamic replan session (`revmax_serve::PlanSession`) plans a chain of
//! residual instances of one original instance: same items, same saturation
//! factors, a horizon that shrinks by one per advance, and candidate rows
//! that change only around the users touched by new adoption events. A
//! from-scratch engine construction per replan rebuilds state that is
//! invariant along that chain — most expensively the saturation power tables
//! (`ln β` and `β^{1/d}`, one `powf` per item per time distance) — and
//! re-allocates every per-candidate buffer.
//!
//! This module is the owned, instance-independent handoff for that state:
//!
//! * `SatTables` (crate-private) — the flat engine's saturation tables, valid for **any**
//!   residual of the instance they were built from (the table stride stays
//!   at the build horizon, shorter horizons index a prefix of each row);
//! * [`EngineSnapshot`] — a shareable pool holding the tables plus recycled
//!   per-shard buffer sets; engines take buffers at construction and return
//!   them from [`super::flat::IncrementalRevenue::into_strategy`];
//! * [`ResidualDelta`] — what one session advance changed: the new frontier,
//!   the shift, the prefix-adjacent (touched) users/items, and the snapshot.
//!   `residual_advance` (in [`crate::events`]) uses the touched sets to
//!   rebuild only the groups the new events invalidated, and
//!   [`super::RevenueEngine::warm_start`] uses the snapshot.
//!
//! Warm state is a **performance** handle, never a behaviour one: recycled
//! tables hold bit-identical values to freshly built ones (same `powf`
//! inputs), and recycled buffers are cleared before reuse, so a warm-started
//! plan is identical to a cold one — asserted to 1e-9 by the warm-start
//! parity suites for both engines at shard counts 1 and 2.

use crate::events::AdoptionEvent;
use crate::ids::{ItemId, UserId};
use crate::instance::Instance;
use std::sync::{Arc, Mutex};

/// Saturation power tables of the flat-arena engine, reusable across every
/// residual of the instance they were built from.
#[derive(Debug)]
pub(crate) struct SatTables {
    /// `ln β` per pow row; row 0 is the saturation-free row (`β = 1`),
    /// row `i + 1` belongs to item `i`.
    pub(crate) ln_beta: Vec<f64>,
    /// `β^{1/d}` for `d ∈ 1..=stride`, row-major by pow row.
    pub(crate) beta_root: Vec<f64>,
    /// Number of columns of `beta_root` (build horizon − 1). Residuals with
    /// smaller horizons index a prefix of each row.
    pub(crate) stride: usize,
    /// `1 / d` for `d ∈ 0..=build horizon` (index by time distance).
    pub(crate) inv_dist: Vec<f64>,
    /// The horizon the tables were built for; valid for any horizon ≤ this.
    horizon: usize,
    /// Bit-exact betas the tables were derived from (validity check).
    betas: Vec<u64>,
}

impl SatTables {
    /// Builds the tables for an instance (the cold-construction path).
    pub(crate) fn build(inst: &Instance) -> SatTables {
        let horizon = inst.horizon() as usize;
        let num_items = inst.num_items() as usize;
        let stride = horizon.saturating_sub(1);
        let mut ln_beta = Vec::with_capacity(num_items + 1);
        let mut beta_root = Vec::with_capacity((num_items + 1) * stride);
        let mut betas = Vec::with_capacity(num_items);
        ln_beta.push(0.0);
        beta_root.extend(std::iter::repeat_n(1.0, stride));
        for item in 0..num_items {
            let beta = inst.beta(ItemId(item as u32));
            betas.push(beta.to_bits());
            ln_beta.push(beta.ln());
            for d in 1..=stride {
                beta_root.push(beta.powf(1.0 / d as f64));
            }
        }
        let inv_dist: Vec<f64> = (0..=horizon)
            .map(|d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
            .collect();
        SatTables {
            ln_beta,
            beta_root,
            stride,
            inv_dist,
            horizon,
            betas,
        }
    }

    /// Whether the tables are valid for `inst`: same items with bit-identical
    /// betas, and a horizon no longer than the build horizon.
    pub(crate) fn valid_for(&self, inst: &Instance) -> bool {
        self.betas.len() == inst.num_items() as usize
            && inst.horizon() as usize <= self.horizon
            && (0..inst.num_items() as usize)
                .all(|i| self.betas[i] == inst.beta(ItemId(i as u32)).to_bits())
    }
}

/// One recycled buffer set of the flat engine (cleared before reuse).
#[derive(Debug, Default)]
pub(crate) struct FlatBuffers {
    pub(crate) cand_group: Vec<u32>,
    pub(crate) group_start: Vec<u32>,
    pub(crate) group_len: Vec<u32>,
    pub(crate) group_cap: Vec<u32>,
    pub(crate) arena: Vec<super::flat::ArenaEntry>,
    pub(crate) selected: Vec<bool>,
    pub(crate) display_count: Vec<u16>,
    pub(crate) cand_counted: Vec<bool>,
    pub(crate) agg_start: Vec<u32>,
    pub(crate) agg: Vec<f64>,
    pub(crate) agg_hi: Vec<u32>,
    pub(crate) kernel: Vec<u8>,
    pub(crate) group_shape: Vec<u8>,
    pub(crate) group_cands: Vec<u32>,
    pub(crate) cand_exempt: Vec<bool>,
}

#[derive(Debug, Default)]
struct SnapshotInner {
    tables: Mutex<Option<Arc<SatTables>>>,
    /// Recycled buffer sets, keyed by the first user of the shard that
    /// returned them. Buffer capacities track shard size, so handing a
    /// set back to the shard that grew it keeps every replan allocation-
    /// free; an untagged LIFO pool would shuffle sets across shards and
    /// re-grow them each round.
    buffers: Mutex<Vec<(u32, FlatBuffers)>>,
}

/// Shareable warm-start pool for one replanning session: the flat engine's
/// saturation tables plus recycled per-shard buffer sets.
///
/// Cloning is an `Arc` bump — every clone is a handle to the same pool, so a
/// session can keep one handle while shipping another through an async plan
/// job. The pool starts empty ([`EngineSnapshot::default`]); the first
/// warm-started engine builds and publishes the tables, later ones reuse
/// them. All methods are internally synchronised (engines for different
/// shards may be constructed on scoped threads).
#[derive(Debug, Default, Clone)]
pub struct EngineSnapshot {
    inner: Arc<SnapshotInner>,
}

impl EngineSnapshot {
    /// An empty pool (identical to `EngineSnapshot::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The published tables if they are valid for `inst`.
    pub(crate) fn tables_for(&self, inst: &Instance) -> Option<Arc<SatTables>> {
        let guard = self.inner.tables.lock().expect("snapshot poisoned");
        guard.as_ref().filter(|t| t.valid_for(inst)).map(Arc::clone)
    }

    /// Publishes freshly built tables for later warm starts.
    pub(crate) fn publish_tables(&self, tables: &Arc<SatTables>) {
        let mut guard = self.inner.tables.lock().expect("snapshot poisoned");
        *guard = Some(Arc::clone(tables));
    }

    /// Takes one recycled buffer set for the shard starting at user `key`:
    /// the set this shard returned last replan when one is pooled (its
    /// capacities already fit), any other set when the shard layout
    /// changed, empty defaults when the pool is dry. Purely a reuse
    /// policy — every buffer is cleared before use either way.
    pub(crate) fn take_buffers_for(&self, key: u32) -> FlatBuffers {
        let mut guard = self.inner.buffers.lock().expect("snapshot poisoned");
        let idx = guard
            .iter()
            .position(|(k, _)| *k == key)
            .unwrap_or(guard.len().saturating_sub(1));
        if idx < guard.len() {
            guard.swap_remove(idx).1
        } else {
            FlatBuffers::default()
        }
    }

    /// Returns a buffer set to the pool for the next replan of the shard
    /// starting at user `key`.
    pub(crate) fn return_buffers(&self, key: u32, buffers: FlatBuffers) {
        let mut guard = self.inner.buffers.lock().expect("snapshot poisoned");
        guard.push((key, buffers));
    }

    /// Whether tables have been published yet (used by tests and benches to
    /// verify that warm starts actually engage).
    pub fn has_tables(&self) -> bool {
        self.inner
            .tables
            .lock()
            .expect("snapshot poisoned")
            .is_some()
    }

    /// Number of recycled buffer sets currently pooled.
    pub fn pooled_buffers(&self) -> usize {
        self.inner.buffers.lock().expect("snapshot poisoned").len()
    }
}

/// What one session advance changed relative to the previous residual
/// instance — the handle a warm-started replan works from.
///
/// Carries the new frontier, the shift against the previous residual
/// timeline, the **prefix-adjacent** users (those with new events, whose
/// (user, class) groups must be rebuilt rather than shifted), and the
/// session's [`EngineSnapshot`]. Built by [`ResidualDelta::new`] from the
/// advance's event batch.
#[derive(Debug, Clone)]
pub struct ResidualDelta {
    now: u32,
    step: u32,
    touched_users: Vec<UserId>,
    snapshot: EngineSnapshot,
}

impl ResidualDelta {
    /// Describes an advance from frontier `prev_now` to `now` applying
    /// `events` (the new batch only, not the cumulative history).
    ///
    /// # Panics
    /// Panics when `now <= prev_now`.
    pub fn new(
        prev_now: u32,
        now: u32,
        events: &[AdoptionEvent],
        snapshot: EngineSnapshot,
    ) -> Self {
        assert!(now > prev_now, "a residual delta must advance the frontier");
        let mut touched_users: Vec<UserId> = events.iter().map(|e| e.user).collect();
        touched_users.sort_unstable();
        touched_users.dedup();
        ResidualDelta {
            now,
            step: now - prev_now,
            touched_users,
            snapshot,
        }
    }

    /// A delta for a session's **initial** full-horizon plan: no frontier
    /// move, nothing touched. Exists so the first plan can already seed the
    /// snapshot pool (its tables are valid for every later residual, whose
    /// horizons only shrink). Never pass an initial delta to
    /// [`crate::events::residual_advance`] — there is no previous residual.
    pub fn initial(snapshot: EngineSnapshot) -> Self {
        ResidualDelta {
            now: 0,
            step: 0,
            touched_users: Vec::new(),
            snapshot,
        }
    }

    /// The new realization frontier.
    pub fn now(&self) -> u32 {
        self.now
    }

    /// How many time steps the frontier advanced (shift between the previous
    /// and the new residual timeline).
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Users with events in the advance (sorted, deduplicated): their
    /// (user, class) groups must be rebuilt from the original instance.
    pub fn touched_users(&self) -> &[UserId] {
        &self.touched_users
    }

    /// The session's warm-start pool.
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snapshot
    }

    /// Whether a user was touched by the advance (binary search).
    pub fn is_touched_user(&self, user: UserId) -> bool {
        self.touched_users.binary_search(&user).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pool prefers the set its shard returned (matching capacities),
    /// falls back to any set when the layout changed, and hands out
    /// defaults when dry.
    #[test]
    fn buffer_pool_is_shard_keyed() {
        let pool = EngineSnapshot::new();
        let small = FlatBuffers {
            cand_group: vec![1],
            ..Default::default()
        };
        let big = FlatBuffers {
            cand_group: vec![2, 2],
            ..Default::default()
        };
        pool.return_buffers(0, small);
        pool.return_buffers(7, big);
        assert_eq!(pool.pooled_buffers(), 2);

        // Each shard gets its own set back regardless of return order.
        assert_eq!(pool.take_buffers_for(7).cand_group, vec![2, 2]);
        assert_eq!(pool.take_buffers_for(0).cand_group, vec![1]);

        // Dry pool: defaults.
        assert!(pool.take_buffers_for(0).cand_group.is_empty());

        // Layout changed (no set under the new key): any set is reused
        // rather than allocating fresh.
        pool.return_buffers(
            4,
            FlatBuffers {
                cand_group: vec![3],
                ..Default::default()
            },
        );
        assert_eq!(pool.take_buffers_for(9).cand_group, vec![3]);
        assert_eq!(pool.pooled_buffers(), 0);
    }
}
