//! Error types for instance construction and strategy validation.

use crate::ids::{ItemId, Triple, UserId};
use std::error::Error;
use std::fmt;

/// Errors raised while building a [`crate::Instance`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names are self-describing (offending indices/values)
pub enum BuildError {
    /// The time horizon must have at least one step.
    EmptyHorizon,
    /// The instance must have at least one user and one item.
    EmptyUniverse,
    /// The display limit `k` must be positive.
    ZeroDisplayLimit,
    /// An item index was out of range.
    ItemOutOfRange { item: u32, num_items: u32 },
    /// A user index was out of range.
    UserOutOfRange { user: u32, num_users: u32 },
    /// A saturation factor was outside `[0, 1]`.
    InvalidBeta { item: u32, beta: f64 },
    /// A price was negative or not finite.
    InvalidPrice { item: u32, t: u32, price: f64 },
    /// A primitive adoption probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        user: u32,
        item: u32,
        t: u32,
        prob: f64,
    },
    /// The price series for an item has the wrong length (must equal the horizon).
    PriceSeriesLength {
        item: u32,
        expected: usize,
        got: usize,
    },
    /// The probability series for a candidate has the wrong length (must equal the horizon).
    ProbabilitySeriesLength {
        user: u32,
        item: u32,
        expected: usize,
        got: usize,
    },
    /// The same (user, item) candidate was added twice.
    DuplicateCandidate { user: u32, item: u32 },
    /// An item was never assigned prices.
    MissingPrices { item: u32 },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyHorizon => write!(f, "the time horizon T must be at least 1"),
            BuildError::EmptyUniverse => {
                write!(f, "an instance needs at least one user and one item")
            }
            BuildError::ZeroDisplayLimit => write!(f, "the display limit k must be at least 1"),
            BuildError::ItemOutOfRange { item, num_items } => {
                write!(f, "item {item} is out of range (num_items = {num_items})")
            }
            BuildError::UserOutOfRange { user, num_users } => {
                write!(f, "user {user} is out of range (num_users = {num_users})")
            }
            BuildError::InvalidBeta { item, beta } => {
                write!(f, "saturation factor {beta} for item {item} is outside [0, 1]")
            }
            BuildError::InvalidPrice { item, t, price } => {
                write!(f, "price {price} for item {item} at time {t} is negative or not finite")
            }
            BuildError::InvalidProbability { user, item, t, prob } => write!(
                f,
                "adoption probability {prob} for (user {user}, item {item}, t {t}) is outside [0, 1]"
            ),
            BuildError::PriceSeriesLength { item, expected, got } => write!(
                f,
                "price series for item {item} has length {got}, expected the horizon length {expected}"
            ),
            BuildError::ProbabilitySeriesLength { user, item, expected, got } => write!(
                f,
                "probability series for (user {user}, item {item}) has length {got}, expected {expected}"
            ),
            BuildError::DuplicateCandidate { user, item } => {
                write!(f, "candidate (user {user}, item {item}) was added more than once")
            }
            BuildError::MissingPrices { item } => {
                write!(f, "item {item} has candidates but was never given a price series")
            }
        }
    }
}

impl Error for BuildError {}

/// A violation of the REVMAX validity constraints (Problem 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// More than `k` items recommended to a user at one time step.
    Display {
        /// The user whose slot is over-full.
        user: UserId,
        /// The offending time step (1-based).
        t: u32,
        /// How many items were recommended at that slot.
        count: usize,
        /// The display limit `k`.
        limit: u32,
    },
    /// An item recommended to more than `q_i` distinct users across the horizon.
    Capacity {
        /// The over-recommended item.
        item: ItemId,
        /// Number of distinct users who received it.
        distinct_users: usize,
        /// The item capacity `q_i`.
        capacity: u32,
    },
    /// A triple references a user, item, or time step outside the instance.
    OutOfRange {
        /// The offending triple.
        triple: Triple,
    },
    /// A triple has zero primitive adoption probability for every time step and
    /// is therefore not part of the candidate ground set.
    NotACandidate {
        /// The offending triple.
        triple: Triple,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::Display { user, t, count, limit } => write!(
                f,
                "display constraint violated: {count} items recommended to {user} at t{t} (limit k = {limit})"
            ),
            ConstraintViolation::Capacity { item, distinct_users, capacity } => write!(
                f,
                "capacity constraint violated: {item} recommended to {distinct_users} distinct users (capacity = {capacity})"
            ),
            ConstraintViolation::OutOfRange { triple } => {
                write!(f, "triple {triple} is outside the instance universe")
            }
            ConstraintViolation::NotACandidate { triple } => {
                write!(f, "triple {triple} is not in the candidate ground set")
            }
        }
    }
}

impl Error for ConstraintViolation {}

/// Error raised while parsing a serialised [`crate::Strategy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyParseError {
    /// Human-readable description of the malformed input.
    pub message: String,
}

impl fmt::Display for StrategyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid strategy encoding: {}", self.message)
    }
}

impl Error for StrategyParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_error_messages_mention_offenders() {
        let e = BuildError::InvalidBeta { item: 3, beta: 1.5 };
        assert!(e.to_string().contains("1.5"));
        assert!(e.to_string().contains("item 3"));

        let e = BuildError::InvalidProbability {
            user: 1,
            item: 2,
            t: 3,
            prob: -0.1,
        };
        let msg = e.to_string();
        assert!(msg.contains("user 1") && msg.contains("item 2"));
    }

    #[test]
    fn violation_messages_mention_limits() {
        let v = ConstraintViolation::Display {
            user: UserId(0),
            t: 1,
            count: 4,
            limit: 3,
        };
        assert!(v.to_string().contains("k = 3"));
        let v = ConstraintViolation::Capacity {
            item: ItemId(9),
            distinct_users: 12,
            capacity: 10,
        };
        assert!(v.to_string().contains("capacity = 10"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error>(_e: &E) {}
        assert_err(&BuildError::EmptyHorizon);
        assert_err(&ConstraintViolation::OutOfRange {
            triple: Triple::new(0, 0, 1),
        });
    }
}
