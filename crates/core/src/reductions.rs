//! The NP-hardness reduction of Theorem 1: Restricted Timetable Design (RTD)
//! → decision REVMAX.
//!
//! This module exists to make the hardness construction executable: it builds
//! the REVMAX instance described in the proof of Theorem 1 from an RTD
//! instance, converts timetables to strategies (and back), and exposes the
//! revenue threshold `N + Υ·E` that separates feasible from infeasible
//! timetables. Tests use it to validate the revenue semantics of
//! [`crate::revenue()`] end-to-end on adversarially structured instances.

use crate::ids::Triple;
use crate::instance::{Instance, InstanceBuilder};
use crate::strategy::Strategy;

/// Number of hours in a Restricted Timetable Design instance (fixed to 3).
pub const RTD_HOURS: u32 = 3;

/// A Restricted Timetable Design instance: craftsmen, jobs, availability, and
/// the 0/1 requirement matrix `R(c, b)`.
#[derive(Debug, Clone)]
pub struct TimetableInstance {
    /// `available[c][h]` — craftsman `c` is available in hour `h` (0-based, 3 hours).
    pub available: Vec<[bool; RTD_HOURS as usize]>,
    /// `requires[c][b]` — craftsman `c` must work one hour on job `b`.
    pub requires: Vec<Vec<bool>>,
}

/// An assignment `(craftsman, job, hour)` with hour 0-based.
pub type Assignment = (usize, usize, usize);

impl TimetableInstance {
    /// Number of craftsmen.
    pub fn num_craftsmen(&self) -> usize {
        self.available.len()
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.requires.first().map_or(0, |r| r.len())
    }

    /// `N = Σ_{c,b} R(c, b)` — total number of required job-hours.
    pub fn total_requirements(&self) -> usize {
        self.requires
            .iter()
            .map(|r| r.iter().filter(|&&x| x).count())
            .sum()
    }

    /// `Υ` — total number of unavailable craftsman-hours.
    pub fn total_unavailable(&self) -> usize {
        self.available
            .iter()
            .map(|a| a.iter().filter(|&&x| !x).count())
            .sum()
    }

    /// Checks the "restricted" structural conditions: every craftsman is a
    /// 2- or 3-craftsman and tight (required jobs == available hours).
    pub fn is_restricted(&self) -> bool {
        self.available
            .iter()
            .zip(&self.requires)
            .all(|(avail, req)| {
                let hours = avail.iter().filter(|&&x| x).count();
                let jobs = req.iter().filter(|&&x| x).count();
                (hours == 2 || hours == 3) && hours == jobs
            })
    }

    /// Whether a set of assignments is a feasible timetable (conditions 1–4 of §3.2).
    pub fn is_feasible_timetable(&self, assignments: &[Assignment]) -> bool {
        let c_n = self.num_craftsmen();
        let b_n = self.num_jobs();
        let h_n = RTD_HOURS as usize;
        let mut craftsman_hour = vec![false; c_n * h_n];
        let mut job_hour = vec![false; b_n * h_n];
        let mut pair_count = vec![0usize; c_n * b_n];
        for &(c, b, h) in assignments {
            if c >= c_n || b >= b_n || h >= h_n {
                return false;
            }
            // (1) only available hours
            if !self.available[c][h] {
                return false;
            }
            // (2) at most one job per craftsman per hour
            if craftsman_hour[c * h_n + h] {
                return false;
            }
            craftsman_hour[c * h_n + h] = true;
            // (3) at most one craftsman per job per hour
            if job_hour[b * h_n + h] {
                return false;
            }
            job_hour[b * h_n + h] = true;
            pair_count[c * b_n + b] += 1;
        }
        // (4) exactly R(c, b) assignments per pair
        for c in 0..c_n {
            for b in 0..b_n {
                let need = usize::from(self.requires[c][b]);
                if pair_count[c * b_n + b] != need {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the D-REVMAX instance of Theorem 1.
    ///
    /// Item layout: job items come first (`job b`, hour `τ` → item `b·3 + τ`),
    /// then one expensive item per craftsman. `expensive_price` plays the role
    /// of `E` and must exceed `N`.
    pub fn to_revmax(&self, expensive_price: f64) -> Instance {
        let c_n = self.num_craftsmen() as u32;
        let b_n = self.num_jobs() as u32;
        let h_n = RTD_HOURS;
        let num_items = b_n * h_n + c_n;
        let mut builder = InstanceBuilder::new(c_n, num_items, h_n);
        builder.display_limit(1);
        // Job items: class = job, capacity 1, price 1 only at its own hour.
        for b in 0..b_n {
            for tau in 0..h_n {
                let item = b * h_n + tau;
                builder.item_class(item, b);
                builder.capacity(item, 1);
                let mut prices = vec![0.0; h_n as usize];
                prices[tau as usize] = 1.0;
                builder.prices(item, &prices);
            }
        }
        // Expensive items: own class, price E at all times.
        for c in 0..c_n {
            let item = b_n * h_n + c;
            builder.item_class(item, b_n + c);
            builder.capacity(item, 1);
            builder.constant_price(item, expensive_price);
        }
        // Candidates.
        for c in 0..c_n as usize {
            for b in 0..b_n as usize {
                if self.requires[c][b] {
                    for tau in 0..h_n {
                        let item = b as u32 * h_n + tau;
                        builder.candidate(c as u32, item, &[1.0; RTD_HOURS as usize], 0.0);
                    }
                }
            }
            let expensive = b_n * h_n + c as u32;
            let probs: Vec<f64> = (0..h_n as usize)
                .map(|h| if self.available[c][h] { 0.0 } else { 1.0 })
                .collect();
            if probs.iter().any(|&p| p > 0.0) {
                builder.candidate(c as u32, expensive, &probs, 0.0);
            }
        }
        builder
            .build()
            .expect("RTD reduction always builds a valid instance")
    }

    /// The revenue threshold `N + Υ·E` of the reduction.
    pub fn threshold(&self, expensive_price: f64) -> f64 {
        self.total_requirements() as f64 + self.total_unavailable() as f64 * expensive_price
    }

    /// Converts a feasible timetable into the corresponding strategy of the
    /// reduced instance (the "⇐" direction of the claim in Theorem 1).
    pub fn timetable_to_strategy(&self, assignments: &[Assignment]) -> Strategy {
        let b_n = self.num_jobs() as u32;
        let h_n = RTD_HOURS;
        let mut s = Strategy::new();
        for &(c, b, h) in assignments {
            let item = b as u32 * h_n + h as u32;
            s.insert(Triple::new(c as u32, item, h as u32 + 1));
        }
        for (c, avail) in self.available.iter().enumerate() {
            for (h, &ok) in avail.iter().enumerate() {
                if !ok {
                    let item = b_n * h_n + c as u32;
                    s.insert(Triple::new(c as u32, item, h as u32 + 1));
                }
            }
        }
        s
    }

    /// Extracts timetable assignments from a strategy on the reduced instance
    /// (the "⇒" direction), ignoring expensive-item recommendations.
    pub fn strategy_to_timetable(&self, strategy: &Strategy) -> Vec<Assignment> {
        let b_n = self.num_jobs() as u32;
        let h_n = RTD_HOURS;
        strategy
            .iter()
            .filter(|z| z.item.0 < b_n * h_n)
            .map(|z| {
                let b = (z.item.0 / h_n) as usize;
                let tau = (z.item.0 % h_n) as usize;
                debug_assert_eq!(tau, z.t.index());
                (z.user.0 as usize, b, z.t.index())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revenue::revenue;

    /// Two craftsmen, two jobs. Craftsman 0 available hours {0,1}, requires
    /// jobs {0,1}; craftsman 1 available {1,2}, requires {0,1}. A feasible
    /// timetable exists: c0: (job0,h0),(job1,h1); c1: (job1,h2),(job0,h1)?
    /// No — job0 at h1 conflicts with nothing, job1 at h1 assigned to c0, so
    /// c1 takes job0 at h1 and job1 at h2. Both jobs are then covered once per
    /// requirement with no hour conflicts.
    fn feasible_rtd() -> TimetableInstance {
        TimetableInstance {
            available: vec![[true, true, false], [false, true, true]],
            requires: vec![vec![true, true], vec![true, true]],
        }
    }

    fn feasible_assignments() -> Vec<Assignment> {
        vec![(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 2)]
    }

    #[test]
    fn rtd_structure_checks() {
        let rtd = feasible_rtd();
        assert!(rtd.is_restricted());
        assert_eq!(rtd.total_requirements(), 4);
        assert_eq!(rtd.total_unavailable(), 2);
        assert!(rtd.is_feasible_timetable(&feasible_assignments()));
        // Assigning a craftsman in an unavailable hour is infeasible.
        assert!(!rtd.is_feasible_timetable(&[(0, 0, 2)]));
        // Two jobs in the same hour for one craftsman is infeasible.
        let mut bad = feasible_assignments();
        bad.push((0, 0, 1));
        assert!(!rtd.is_feasible_timetable(&bad));
    }

    #[test]
    fn feasible_timetable_reaches_threshold_revenue() {
        let rtd = feasible_rtd();
        let e = 100.0;
        let inst = rtd.to_revmax(e);
        let strategy = rtd.timetable_to_strategy(&feasible_assignments());
        assert!(strategy.validate(&inst).is_ok());
        let rev = revenue(&inst, &strategy);
        let threshold = rtd.threshold(e);
        assert!(
            (rev - threshold).abs() < 1e-9,
            "revenue {rev} should equal threshold {threshold}"
        );
    }

    #[test]
    fn wasted_recommendations_fall_short_of_threshold() {
        let rtd = feasible_rtd();
        let e = 100.0;
        let inst = rtd.to_revmax(e);
        // Recommend the same job twice to craftsman 0 (second one is wasted:
        // the class was already adopted with probability 1).
        let mut assignments = feasible_assignments();
        assignments.retain(|&(c, _, _)| c != 0);
        let mut strategy = rtd.timetable_to_strategy(&assignments);
        strategy.insert(Triple::new(0, 0, 1)); // job 0 at its hour 1 item... item 0 is (job0,h0) at t1
        strategy.insert(Triple::new(0, 1, 2)); // (job0, h1) item at t2 — same class as above
        let rev = revenue(&inst, &strategy);
        assert!(rev < rtd.threshold(e));
    }

    #[test]
    fn strategy_roundtrips_to_timetable() {
        let rtd = feasible_rtd();
        let strategy = rtd.timetable_to_strategy(&feasible_assignments());
        let mut back = rtd.strategy_to_timetable(&strategy);
        back.sort_unstable();
        let mut expected = feasible_assignments();
        expected.sort_unstable();
        assert_eq!(back, expected);
        assert!(rtd.is_feasible_timetable(&back));
    }

    #[test]
    fn reduction_instance_shape() {
        let rtd = feasible_rtd();
        let inst = rtd.to_revmax(50.0);
        assert_eq!(inst.num_users(), 2);
        // 2 jobs × 3 hours + 2 expensive items
        assert_eq!(inst.num_items(), 8);
        assert_eq!(inst.horizon(), 3);
        assert_eq!(inst.display_limit(), 1);
        // Job items of the same job share a class; expensive items are alone.
        let c0 = inst.class_of(crate::ids::ItemId(0));
        let c1 = inst.class_of(crate::ids::ItemId(1));
        assert_eq!(c0, c1);
        let e0 = inst.class_of(crate::ids::ItemId(6));
        let e1 = inst.class_of(crate::ids::ItemId(7));
        assert_ne!(e0, e1);
    }
}
