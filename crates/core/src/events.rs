//! Realized adoption events and residual-instance construction — the model
//! layer behind *dynamic* replanning.
//!
//! The paper's premise is that recommendation strategies should react as the
//! horizon unfolds: users adopt some of the displayed items and ignore the
//! rest, and the remaining plan should be re-optimised against what actually
//! happened instead of the original expectation. This module defines the
//! vocabulary for that feedback loop:
//!
//! * an [`AdoptionEvent`] records that item `i` was **displayed** to user `u`
//!   at time `τ` and whether the user adopted it ([`AdoptionOutcome`]);
//! * [`residual_instance`] conditions an instance on a realized prefix of
//!   events up to a frontier time `now`, producing a *new, smaller instance*
//!   over the remaining horizon `now+1 ..= T` that any planner can solve
//!   from scratch — or incrementally, as `revmax_serve::PlanSession` does.
//!
//! # Conditional semantics
//!
//! The residual instance folds the realized prefix into its primitive
//! probabilities and capacities so that the *standard* revenue model
//! (Definition 1/2, see [`mod@crate::revenue`]) evaluated on the residual
//! instance is exactly the original model conditioned on the observed
//! events:
//!
//! * **Adoptions close classes.** In Definition 1 a recommendation's
//!   competition factor `Π (1 − q)` over earlier same-class displays is the
//!   probability that the user adopted *none* of them — the model lets each
//!   user adopt at most one item per class. Conditioning on an observed
//!   adoption therefore zeroes every future same-class probability for that
//!   user; such candidate pairs are dropped from the residual instance.
//! * **Rejections lift the discount.** A rejected display contributes factor
//!   `1` instead of the expectation `1 − q` — we *know* the user did not
//!   adopt it — so no residual competition factor remains from the prefix.
//! * **Memory persists.** Displays decay but never vanish: a future triple
//!   `(u, i, t)` keeps the saturation factor
//!   `β_i^{Σ_τ 1/(t − τ)}` over the prefix display times `τ` of the class,
//!   regardless of outcome. Because the prefix factor depends on `t`, it is
//!   folded into the residual primitive probability per time step.
//! * **Within-suffix interactions need no translation.** Memory depends only
//!   on time *differences* and the residual time axis `t' = t − now`
//!   preserves them, so the residual instance's own memory/competition terms
//!   are already correct.
//! * **Capacity is pre-charged, prefix pairs are exempt.** Each item's
//!   residual capacity is its original capacity minus the distinct users it
//!   was already displayed to, and every displayed `(item, user)` pair is
//!   registered as an **exempt pair** on the residual instance
//!   ([`Instance::is_exempt`]): re-displaying the item to such a user
//!   consumed its single unit of *original* capacity already, so it is not
//!   charged a residual unit again. Residual capacity semantics are
//!   therefore **exact**: a residual-valid plan is valid, and a valid
//!   continuation of the original plan is residual-valid. The historical
//!   conservative semantics — no exempt sets, so re-displays to prefix
//!   users double-charge and can be spuriously blocked at capacity — remain
//!   available behind [`ResidualMode::Conservative`] for parity tests.
//!
//! Prices simply shift: `p'(i, t') = p(i, now + t')`.
//!
//! # Incremental residual construction
//!
//! [`residual_advance`] builds the residual at frontier `now` from the
//! residual at the previous frontier instead of from scratch: candidate rows
//! of **untouched** (user, class) groups are a pure left-shift of the
//! previous residual's rows (memory depends only on absolute display times,
//! so the shifted values are bit-identical to a recomputation), and only the
//! **prefix-adjacent** groups — those of users with events in the advance,
//! listed in [`ResidualDelta::touched_users`] — are rebuilt from the
//! original instance. The result is bit-identical to
//! [`residual_of_validated`] on the cumulative history, which the property
//! suites assert.

use crate::ids::{CandidateId, ClassId, ItemId, TimeStep, Triple, UserId};
use crate::instance::{ExemptSets, Instance, InstanceBuilder};
use crate::revenue::ResidualDelta;
use crate::strategy::Strategy;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// What the user did with a displayed recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdoptionOutcome {
    /// The user adopted (purchased) the item — revenue `p(i, τ)` realized.
    Adopted,
    /// The user saw the recommendation and did not adopt it.
    Rejected,
}

/// One realized display: item `i` was shown to user `u` at time `τ`, with the
/// observed [`AdoptionOutcome`].
///
/// Events are the authoritative record of what the storefront actually did —
/// a display that deviated from the plan is as valid an event as a planned
/// one (its memory and adoption consequences are identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdoptionEvent {
    /// The user the item was displayed to.
    pub user: UserId,
    /// The displayed item.
    pub item: ItemId,
    /// The (1-based) time step of the display.
    pub t: TimeStep,
    /// What the user did.
    pub outcome: AdoptionOutcome,
}

impl AdoptionEvent {
    /// An adoption event from raw indices (time is 1-based).
    pub fn adopted(user: u32, item: u32, t: u32) -> Self {
        AdoptionEvent {
            user: UserId(user),
            item: ItemId(item),
            t: TimeStep(t),
            outcome: AdoptionOutcome::Adopted,
        }
    }

    /// A rejection event from raw indices (time is 1-based).
    pub fn rejected(user: u32, item: u32, t: u32) -> Self {
        AdoptionEvent {
            user: UserId(user),
            item: ItemId(item),
            t: TimeStep(t),
            outcome: AdoptionOutcome::Rejected,
        }
    }

    /// The (user, item, time) display triple of this event.
    pub fn triple(&self) -> Triple {
        Triple {
            user: self.user,
            item: self.item,
            t: self.t,
        }
    }

    /// Whether the user adopted the item.
    pub fn is_adoption(&self) -> bool {
        self.outcome == AdoptionOutcome::Adopted
    }
}

impl fmt::Display for AdoptionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.outcome {
            AdoptionOutcome::Adopted => "adopted",
            AdoptionOutcome::Rejected => "rejected",
        };
        write!(f, "{} {} {} at {}", self.user, what, self.item, self.t)
    }
}

/// Why a batch of adoption events was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventError {
    /// User, item, or time lies outside the instance universe.
    OutOfRange {
        /// The offending display triple.
        event: Triple,
    },
    /// The event's time step lies after the realization frontier.
    AfterFrontier {
        /// The offending display triple.
        event: Triple,
        /// The frontier the events were validated against.
        frontier: u32,
    },
    /// The same (user, item, time) display was reported twice.
    DuplicateDisplay {
        /// The offending display triple.
        event: Triple,
    },
    /// More events share a (user, time) slot than the display limit allows.
    DisplayLimitExceeded {
        /// The user whose slot overflowed.
        user: UserId,
        /// The overflowing time step.
        t: TimeStep,
        /// The instance's display limit `k`.
        limit: u32,
    },
    /// A residual instance was requested at or past the end of the horizon.
    ExhaustedHorizon {
        /// The instance horizon `T`.
        horizon: u32,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::OutOfRange { event } => {
                write!(f, "event {event} lies outside the instance universe")
            }
            EventError::AfterFrontier { event, frontier } => {
                write!(f, "event {event} lies after the frontier t = {frontier}")
            }
            EventError::DuplicateDisplay { event } => {
                write!(f, "display {event} was reported twice")
            }
            EventError::DisplayLimitExceeded { user, t, limit } => {
                write!(f, "more than {limit} displays for {user} at {t}")
            }
            EventError::ExhaustedHorizon { horizon } => {
                write!(f, "no residual horizon remains past t = {horizon}")
            }
        }
    }
}

impl std::error::Error for EventError {}

/// Validates a batch of events against an instance and a realization
/// frontier: every event must lie inside the universe, at `t ≤ frontier`, be
/// reported once, and respect the display limit per (user, time) slot.
pub fn validate_events(
    inst: &Instance,
    events: &[AdoptionEvent],
    frontier: u32,
) -> Result<(), EventError> {
    let mut seen: HashSet<Triple> = HashSet::with_capacity(events.len());
    let mut per_slot: HashMap<(UserId, TimeStep), u32> = HashMap::new();
    for e in events {
        let z = e.triple();
        if !inst.in_range(z) {
            return Err(EventError::OutOfRange { event: z });
        }
        if z.t.value() > frontier {
            return Err(EventError::AfterFrontier { event: z, frontier });
        }
        if !seen.insert(z) {
            return Err(EventError::DuplicateDisplay { event: z });
        }
        let count = per_slot.entry((z.user, z.t)).or_insert(0);
        *count += 1;
        if *count > inst.display_limit() {
            return Err(EventError::DisplayLimitExceeded {
                user: z.user,
                t: z.t,
                limit: inst.display_limit(),
            });
        }
    }
    Ok(())
}

/// The revenue actually earned from a batch of events: `Σ p(i, τ)` over the
/// adopted displays.
pub fn realized_revenue(inst: &Instance, events: &[AdoptionEvent]) -> f64 {
    events
        .iter()
        .filter(|e| e.is_adoption())
        .map(|e| inst.price(e.item, e.t))
        .sum()
}

/// Shifts every triple of a residual-timeline strategy back to the original
/// timeline (`t' ↦ t' + offset`).
pub fn shift_strategy(strategy: &Strategy, offset: u32) -> Strategy {
    let mut shifted = Strategy::with_capacity(strategy.len());
    for z in strategy.iter() {
        shifted.insert(Triple {
            user: z.user,
            item: z.item,
            t: TimeStep(z.t.value() + offset),
        });
    }
    shifted
}

/// How a residual instance accounts the capacity already consumed by the
/// prefix (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidualMode {
    /// Exact semantics (the default): capacity is pre-charged per distinct
    /// displayed user **and** each displayed `(item, user)` pair is exempt,
    /// so re-displays are never double-charged.
    #[default]
    Exempt,
    /// The historical conservative semantics: capacity is pre-charged but no
    /// exempt sets are registered, so a re-display to a prefix user is
    /// double-charged (and blocked once the item sits at capacity). Kept for
    /// parity tests against the pre-exemption behaviour.
    Conservative,
}

/// Conditions an instance on a realized prefix of events, producing the
/// residual instance over the remaining horizon `now+1 ..= T` (re-indexed to
/// `1 ..= T − now`), with exact ([`ResidualMode::Exempt`]) capacity
/// semantics. See the module docs.
///
/// `events` must all lie at `t ≤ now` and `now` must leave at least one
/// remaining time step (`now < T`). Candidate pairs whose future is entirely
/// dead — the user adopted an item of the class, or every remaining primitive
/// probability is zero — are dropped, so the residual instance shrinks as the
/// session progresses.
pub fn residual_instance(
    inst: &Instance,
    events: &[AdoptionEvent],
    now: u32,
) -> Result<Instance, EventError> {
    residual_instance_with(inst, events, now, ResidualMode::Exempt)
}

/// [`residual_instance`] with an explicit capacity-accounting mode.
pub fn residual_instance_with(
    inst: &Instance,
    events: &[AdoptionEvent],
    now: u32,
    mode: ResidualMode,
) -> Result<Instance, EventError> {
    if now >= inst.horizon() {
        return Err(EventError::ExhaustedHorizon {
            horizon: inst.horizon(),
        });
    }
    validate_events(inst, events, now)?;
    Ok(residual_of_validated_with(inst, events, now, mode))
}

/// [`residual_instance`] for callers that have already run
/// [`validate_events`] against `now < T` — e.g. a replanning session that
/// validates each incoming batch against its cumulative history exactly
/// once. Skips the `O(events)` re-validation; the preconditions are checked
/// only in debug builds.
pub fn residual_of_validated(inst: &Instance, events: &[AdoptionEvent], now: u32) -> Instance {
    residual_of_validated_with(inst, events, now, ResidualMode::Exempt)
}

/// [`residual_of_validated`] with an explicit capacity-accounting mode.
pub fn residual_of_validated_with(
    inst: &Instance,
    events: &[AdoptionEvent],
    now: u32,
    mode: ResidualMode,
) -> Instance {
    debug_assert!(now < inst.horizon(), "residual requires now < T");
    debug_assert!(validate_events(inst, events, now).is_ok());
    let remaining = (inst.horizon() - now) as usize;

    // Per (user, class) prefix state: did the user adopt in the class, and at
    // which times was the class displayed (for the residual memory factor).
    let mut adopted: HashSet<(UserId, ClassId)> = HashSet::new();
    let mut displays: HashMap<(UserId, ClassId), Vec<u32>> = HashMap::new();
    for e in events {
        let class = inst.class_of(e.item);
        displays
            .entry((e.user, class))
            .or_default()
            .push(e.t.value());
        if e.is_adoption() {
            adopted.insert((e.user, class));
        }
    }

    let mut b = InstanceBuilder::new(inst.num_users(), inst.num_items(), remaining as u32);
    seed_residual_items(&mut b, inst, events, now, mode);

    let mut probs = vec![0.0f64; remaining];
    for cand in inst.candidates() {
        let user = inst.candidate_user(cand);
        let class = inst.candidate_class(cand);
        if adopted.contains(&(user, class)) {
            continue; // the class is closed for this user
        }
        let prefix_times = displays.get(&(user, class)).map_or(&[][..], Vec::as_slice);
        if fill_residual_row(inst, cand, now, prefix_times, &mut probs) {
            b.candidate(
                user.0,
                inst.candidate_item(cand).0,
                &probs,
                inst.candidate_rating(cand),
            );
        }
    }

    match b.build() {
        Ok(residual) => residual,
        // All inputs were derived from an already-valid instance.
        Err(e) => unreachable!("residual construction produced an invalid instance: {e:?}"),
    }
}

/// Seeds the item axis of a residual builder: classes, betas, shifted
/// prices, pre-charged capacities, and (in exempt mode) the exempt sets of
/// the distinct displayed `(item, user)` pairs.
fn seed_residual_items(
    b: &mut InstanceBuilder,
    inst: &Instance,
    events: &[AdoptionEvent],
    now: u32,
    mode: ResidualMode,
) {
    // Distinct (item, user) display pairs — the capacity already consumed.
    let mut charged: HashSet<(ItemId, UserId)> = HashSet::with_capacity(events.len());
    for e in events {
        charged.insert((e.item, e.user));
    }
    let mut residual_capacity: Vec<u32> = (0..inst.num_items())
        .map(|i| inst.capacity(ItemId(i)))
        .collect();
    for (item, user) in &charged {
        let slot = &mut residual_capacity[item.index()];
        *slot = slot.saturating_sub(1);
        if mode == ResidualMode::Exempt {
            // The pair's unit of original capacity is spent; a re-display
            // must not be charged a residual unit on top.
            b.exempt_user(item.0, user.0);
        }
    }

    b.display_limit(inst.display_limit());
    for i in 0..inst.num_items() {
        let item = ItemId(i);
        // Class labels are already dense and in first-appearance order, so
        // the builder's densification reproduces them exactly.
        b.item_class(i, inst.class_of(item).0)
            .beta(i, inst.beta(item))
            .capacity(i, residual_capacity[item.index()])
            .prices(i, &inst.price_series(item)[now as usize..]);
    }
}

/// Fills `probs` with the residual primitive probabilities of `cand` (a
/// candidate of the **original** instance) at frontier `now`, folding the
/// class's prefix display times into the memory factor. Returns whether any
/// entry is positive. Shared between the from-scratch and the incremental
/// residual constructions so both produce bit-identical rows.
fn fill_residual_row(
    inst: &Instance,
    cand: CandidateId,
    now: u32,
    prefix_times: &[u32],
    probs: &mut [f64],
) -> bool {
    let beta = inst.beta(inst.candidate_item(cand));
    let original = inst.candidate_probs(cand);
    let mut any_positive = false;
    for (idx, slot) in probs.iter_mut().enumerate() {
        let t = now + idx as u32 + 1;
        let q = original[(t - 1) as usize];
        if q == 0.0 {
            *slot = 0.0;
            continue;
        }
        let memory: f64 = prefix_times.iter().map(|&tau| 1.0 / (t - tau) as f64).sum();
        *slot = q * beta.powf(memory);
        any_positive |= *slot > 0.0;
    }
    any_positive
}

/// Builds the residual instance at frontier `delta.now()` **incrementally**
/// from the residual at the previous frontier, rebuilding only the
/// prefix-adjacent groups (users in [`ResidualDelta::touched_users`]) and
/// left-shifting every other candidate row of `prev` by [`ResidualDelta::step`].
/// Always uses [`ResidualMode::Exempt`] semantics.
///
/// The result is **bit-identical** to
/// `residual_of_validated(inst, events, delta.now())` — memory factors
/// depend only on absolute display times, so a shifted row equals a
/// recomputed one — and the instance is assembled directly from the
/// pre-validated parts (no [`InstanceBuilder`] re-validation, allocation,
/// or sorting: a previous residual's CSR walk is already in candidate
/// order), so an advance costs a row copy per untouched candidate plus a
/// rebuild per prefix-adjacent one.
///
/// Preconditions (checked in debug builds): `events` is the cumulative
/// validated history at `delta.now() < T`, and `prev` is the residual of
/// `inst` at frontier `delta.now() - delta.step()` under the same history
/// minus the advance's batch.
pub fn residual_advance(
    inst: &Instance,
    prev: &Instance,
    events: &[AdoptionEvent],
    delta: &ResidualDelta,
) -> Instance {
    let now = delta.now();
    let step = delta.step();
    debug_assert!(now < inst.horizon(), "residual requires now < T");
    debug_assert!(validate_events(inst, events, now).is_ok());
    debug_assert_eq!(
        prev.horizon(),
        inst.horizon() - (now - step),
        "prev is not the residual at frontier now - step"
    );
    let remaining = (inst.horizon() - now) as usize;

    // Prefix state of the touched users only; untouched groups reuse their
    // previous rows unchanged (shifted).
    let mut adopted: HashSet<(UserId, ClassId)> = HashSet::new();
    let mut displays: HashMap<(UserId, ClassId), Vec<u32>> = HashMap::new();
    for e in events {
        if !delta.is_touched_user(e.user) {
            continue;
        }
        let class = inst.class_of(e.item);
        displays
            .entry((e.user, class))
            .or_default()
            .push(e.t.value());
        if e.is_adoption() {
            adopted.insert((e.user, class));
        }
    }

    // Capacity and exempt sets from the cumulative charged pairs (O(events)).
    let mut charged: HashSet<(ItemId, UserId)> = HashSet::with_capacity(events.len());
    for e in events {
        charged.insert((e.item, e.user));
    }
    let mut capacity: Vec<u32> = (0..inst.num_items())
        .map(|i| inst.capacity(ItemId(i)))
        .collect();
    let mut exempt_per_item = vec![Vec::new(); inst.num_items() as usize];
    for (item, user) in &charged {
        capacity[item.index()] = capacity[item.index()].saturating_sub(1);
        exempt_per_item[item.index()].push(*user);
    }
    let mut any_exempt = false;
    for users in &mut exempt_per_item {
        users.sort_unstable();
        any_exempt |= !users.is_empty();
    }

    // Candidate rows, written straight into the final CSR buffers: a
    // previous residual's CSR walk is already (user, item)-sorted, so no
    // builder-side sorting or re-validation is needed.
    let upper = prev.num_candidates();
    let mut cand_user: Vec<UserId> = Vec::with_capacity(upper);
    let mut cand_item: Vec<ItemId> = Vec::with_capacity(upper);
    let mut cand_rating: Vec<f64> = Vec::with_capacity(upper);
    let mut cand_prob: Vec<f64> = Vec::with_capacity(upper * remaining);
    for prev_cand in prev.candidates() {
        let user = prev.candidate_user(prev_cand);
        let item = prev.candidate_item(prev_cand);
        let start = cand_prob.len();
        let (live, rating) = if delta.is_touched_user(user) {
            // Prefix-adjacent: rebuild the row from the original instance.
            let class = inst.class_of(item);
            if adopted.contains(&(user, class)) {
                continue;
            }
            let cand = inst
                .candidate_for(user, item)
                .expect("prev residual candidates descend from the original instance");
            let prefix_times = displays.get(&(user, class)).map_or(&[][..], Vec::as_slice);
            cand_prob.resize(start + remaining, 0.0);
            (
                fill_residual_row(inst, cand, now, prefix_times, &mut cand_prob[start..]),
                inst.candidate_rating(cand),
            )
        } else {
            // Untouched: the new row is the previous row shifted left. The
            // memory folded into each entry depends only on absolute times,
            // so the shifted values are bit-identical to a recomputation.
            let prev_row = &prev.candidate_probs(prev_cand)[step as usize..];
            cand_prob.extend_from_slice(prev_row);
            (
                prev_row.iter().any(|&q| q > 0.0),
                prev.candidate_rating(prev_cand),
            )
        };
        if live {
            cand_user.push(user);
            cand_item.push(item);
            cand_rating.push(rating);
        } else {
            cand_prob.truncate(start); // entirely dead: drop the pair
        }
    }

    Instance::from_residual_parts(
        inst,
        now,
        remaining as u32,
        capacity,
        ExemptSets {
            per_item: exempt_per_item,
            any: any_exempt,
        },
        cand_user,
        cand_item,
        cand_prob,
        cand_rating,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revenue::{dynamic_probabilities, revenue};
    use std::collections::HashMap;

    /// Two users, three items (0 and 1 share a class), horizon 3.
    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.7)
            .beta(2, 0.9)
            .capacity(0, 1)
            .capacity(1, 2)
            .capacity(2, 2)
            .prices(0, &[30.0, 24.0, 27.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[15.0, 15.0, 14.0])
            .candidate(0, 0, &[0.4, 0.6, 0.5], 4.5)
            .candidate(0, 1, &[0.7, 0.5, 0.8], 3.5)
            .candidate(0, 2, &[0.3, 0.3, 0.4], 4.0)
            .candidate(1, 0, &[0.5, 0.55, 0.45], 4.8)
            .candidate(1, 2, &[0.6, 0.2, 0.3], 2.5);
        b.build().unwrap()
    }

    #[test]
    fn validation_catches_bad_batches() {
        let inst = instance();
        let ok = [
            AdoptionEvent::adopted(0, 0, 1),
            AdoptionEvent::rejected(1, 2, 1),
        ];
        assert!(validate_events(&inst, &ok, 1).is_ok());

        let out_of_range = [AdoptionEvent::adopted(5, 0, 1)];
        assert!(matches!(
            validate_events(&inst, &out_of_range, 1),
            Err(EventError::OutOfRange { .. })
        ));

        let late = [AdoptionEvent::adopted(0, 0, 2)];
        assert!(matches!(
            validate_events(&inst, &late, 1),
            Err(EventError::AfterFrontier { frontier: 1, .. })
        ));

        let dup = [
            AdoptionEvent::adopted(0, 0, 1),
            AdoptionEvent::rejected(0, 0, 1),
        ];
        assert!(matches!(
            validate_events(&inst, &dup, 1),
            Err(EventError::DuplicateDisplay { .. })
        ));

        let overfull = [
            AdoptionEvent::rejected(0, 0, 1),
            AdoptionEvent::rejected(0, 2, 1),
        ];
        assert!(matches!(
            validate_events(&inst, &overfull, 1),
            Err(EventError::DisplayLimitExceeded { limit: 1, .. })
        ));
    }

    #[test]
    fn realized_revenue_sums_adopted_prices() {
        let inst = instance();
        let events = [
            AdoptionEvent::adopted(0, 0, 1),  // 30.0
            AdoptionEvent::rejected(1, 2, 1), // rejected: nothing
            AdoptionEvent::adopted(1, 0, 2),  // 24.0
        ];
        assert!((realized_revenue(&inst, &events) - 54.0).abs() < 1e-12);
        assert!(realized_revenue(&inst, &[]).abs() < 1e-12);
    }

    #[test]
    fn residual_shifts_prices_and_horizon() {
        let inst = instance();
        let residual = residual_instance(&inst, &[], 1).unwrap();
        assert_eq!(residual.horizon(), 2);
        assert_eq!(residual.num_users(), 2);
        assert_eq!(residual.price_series(ItemId(0)), &[24.0, 27.0]);
        assert_eq!(residual.price_series(ItemId(1)), &[12.0, 9.0]);
        // No events: probabilities are just the tail of the original rows.
        let c = residual.candidate_for(UserId(0), ItemId(0)).unwrap();
        assert_eq!(residual.candidate_probs(c), &[0.6, 0.5]);
    }

    #[test]
    fn adoption_closes_the_class_for_the_user_only() {
        let inst = instance();
        let events = [AdoptionEvent::adopted(0, 0, 1)];
        let residual = residual_instance(&inst, &events, 1).unwrap();
        // User 0 adopted class {0, 1}: both same-class pairs are gone …
        assert!(residual.candidate_for(UserId(0), ItemId(0)).is_none());
        assert!(residual.candidate_for(UserId(0), ItemId(1)).is_none());
        // … the other class and the other user are untouched.
        assert!(residual.candidate_for(UserId(0), ItemId(2)).is_some());
        assert!(residual.candidate_for(UserId(1), ItemId(0)).is_some());
    }

    #[test]
    fn rejection_keeps_the_pair_with_memory_discount() {
        let inst = instance();
        let events = [AdoptionEvent::rejected(0, 0, 1)];
        let residual = residual_instance(&inst, &events, 1).unwrap();
        // Residual t' = 1 is original t = 2: memory 1/(2-1) = 1 on class 0.
        let c00 = residual.candidate_for(UserId(0), ItemId(0)).unwrap();
        let beta0 = 0.4f64;
        assert!((residual.candidate_prob(c00, TimeStep(1)) - 0.6 * beta0.powf(1.0)).abs() < 1e-12);
        // Residual t' = 2 is original t = 3: memory 1/(3-1) = 0.5.
        assert!((residual.candidate_prob(c00, TimeStep(2)) - 0.5 * beta0.powf(0.5)).abs() < 1e-12);
        // Same-class sibling item 1 carries the memory with its own beta.
        let c01 = residual.candidate_for(UserId(0), ItemId(1)).unwrap();
        let beta1 = 0.7f64;
        assert!((residual.candidate_prob(c01, TimeStep(1)) - 0.5 * beta1.powf(1.0)).abs() < 1e-12);
        // The other class has no memory from the display.
        let c02 = residual.candidate_for(UserId(0), ItemId(2)).unwrap();
        assert_eq!(residual.candidate_probs(c02), &[0.3, 0.4]);
    }

    #[test]
    fn capacity_is_pre_charged_per_distinct_user() {
        let inst = instance();
        let events = [
            AdoptionEvent::rejected(0, 0, 1),
            AdoptionEvent::rejected(1, 2, 1),
            AdoptionEvent::rejected(1, 0, 2), // second distinct user of item 0
        ];
        let residual = residual_instance(&inst, &events, 2).unwrap();
        // Item 0 had capacity 1 and two distinct users displayed: floor at 0.
        assert_eq!(residual.capacity(ItemId(0)), 0);
        // Item 2 had capacity 2 and one user displayed.
        assert_eq!(residual.capacity(ItemId(2)), 1);
        // Item 1 untouched.
        assert_eq!(residual.capacity(ItemId(1)), 2);
    }

    #[test]
    fn residual_model_matches_hand_conditioning() {
        // One user, one item, beta saturation, horizon 3. Display at t = 1,
        // rejected. The conditional probability of adopting at t = 3 given a
        // plan that also displays at t = 2 must come out of the residual
        // instance's *standard* dynamic-probability machinery.
        let mut b = InstanceBuilder::new(1, 1, 3);
        let beta = 0.5f64;
        b.display_limit(1)
            .capacity(0, 1)
            .beta(0, beta)
            .prices(0, &[1.0, 1.0, 1.0])
            .candidate(0, 0, &[0.5, 0.4, 0.3], 0.0);
        let inst = b.build().unwrap();
        let events = [AdoptionEvent::rejected(0, 0, 1)];
        let residual = residual_instance(&inst, &events, 1).unwrap();

        // Residual primitive probabilities fold the prefix memory:
        // q'(1) = 0.4 · β^{1/(2−1)}, q'(2) = 0.3 · β^{1/(3−1)}.
        let c = residual.candidate_for(UserId(0), ItemId(0)).unwrap();
        let q1 = 0.4 * beta.powf(1.0);
        let q2 = 0.3 * beta.powf(0.5);
        assert!((residual.candidate_prob(c, TimeStep(1)) - q1).abs() < 1e-12);
        assert!((residual.candidate_prob(c, TimeStep(2)) - q2).abs() < 1e-12);

        // Plan both remaining displays: the later one picks up the residual
        // memory 1/(2'−1') = 1 and the competition factor (1 − q'(1)).
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)]
            .into_iter()
            .collect();
        let probs: HashMap<Triple, f64> =
            dynamic_probabilities(&residual, &s).into_iter().collect();
        assert!((probs[&Triple::new(0, 0, 1)] - q1).abs() < 1e-12);
        let expected_t2 = q2 * beta.powf(1.0) * (1.0 - q1);
        assert!((probs[&Triple::new(0, 0, 2)] - expected_t2).abs() < 1e-12);
        assert!((revenue(&residual, &s) - (q1 + expected_t2)).abs() < 1e-12);
    }

    #[test]
    fn exempt_mode_registers_prefix_pairs_conservative_does_not() {
        let inst = instance();
        let events = [
            AdoptionEvent::rejected(0, 0, 1),
            AdoptionEvent::rejected(1, 2, 1),
            AdoptionEvent::rejected(1, 0, 2),
        ];
        let exact = residual_instance(&inst, &events, 2).unwrap();
        // Same pre-charged capacities as ever …
        assert_eq!(exact.capacity(ItemId(0)), 0);
        assert_eq!(exact.capacity(ItemId(2)), 1);
        // … but the displayed pairs are exempt, so re-displays are free.
        assert!(exact.has_exemptions());
        assert!(exact.is_exempt(ItemId(0), UserId(0)));
        assert!(exact.is_exempt(ItemId(0), UserId(1)));
        assert!(exact.is_exempt(ItemId(2), UserId(1)));
        assert!(!exact.is_exempt(ItemId(2), UserId(0)));
        assert!(!exact.is_exempt(ItemId(1), UserId(0)));

        let conservative =
            residual_instance_with(&inst, &events, 2, ResidualMode::Conservative).unwrap();
        assert!(!conservative.has_exemptions());
        assert_eq!(conservative.capacity(ItemId(0)), 0);
        // Probabilities and prices are identical across modes.
        for cand in exact.candidates() {
            let user = exact.candidate_user(cand);
            let item = exact.candidate_item(cand);
            let other = conservative.candidate_for(user, item).unwrap();
            assert_eq!(
                exact.candidate_probs(cand),
                conservative.candidate_probs(other)
            );
        }
    }

    #[test]
    fn exempt_residual_accepts_re_displays_at_capacity() {
        // Item 0 has capacity 1 and was displayed to user 0: the residual
        // sits at capacity 0, yet a re-display to user 0 must validate.
        let inst = instance();
        let events = [AdoptionEvent::rejected(0, 0, 1)];
        let residual = residual_instance(&inst, &events, 1).unwrap();
        assert_eq!(residual.capacity(ItemId(0)), 0);
        let redisplay: Strategy = vec![Triple::new(0, 0, 1)].into_iter().collect();
        assert!(redisplay.validate(&residual).is_ok());
        // A *new* user is still blocked.
        let fresh: Strategy = vec![Triple::new(1, 0, 1)].into_iter().collect();
        assert!(fresh.validate(&residual).is_err());
        // Under conservative semantics even the re-display is blocked.
        let conservative =
            residual_instance_with(&inst, &events, 1, ResidualMode::Conservative).unwrap();
        assert!(redisplay.validate(&conservative).is_err());
    }

    #[test]
    fn residual_advance_matches_from_scratch_bit_for_bit() {
        let inst = instance();
        let day1 = [
            AdoptionEvent::rejected(0, 0, 1),
            AdoptionEvent::rejected(1, 2, 1),
        ];
        let day2 = [
            AdoptionEvent::adopted(1, 0, 2),
            AdoptionEvent::rejected(0, 2, 2),
        ];
        let prev = residual_of_validated(&inst, &day1, 1);

        let mut all: Vec<AdoptionEvent> = day1.to_vec();
        all.extend_from_slice(&day2);
        let delta = ResidualDelta::new(1, 2, &day2, crate::EngineSnapshot::new());
        let incremental = residual_advance(&inst, &prev, &all, &delta);
        let scratch = residual_of_validated(&inst, &all, 2);

        assert_eq!(incremental.horizon(), scratch.horizon());
        assert_eq!(incremental.num_candidates(), scratch.num_candidates());
        for i in 0..inst.num_items() {
            let item = ItemId(i);
            assert_eq!(incremental.capacity(item), scratch.capacity(item));
            assert_eq!(incremental.price_series(item), scratch.price_series(item));
            assert_eq!(incremental.exempt_users(item), scratch.exempt_users(item));
        }
        for cand in scratch.candidates() {
            let user = scratch.candidate_user(cand);
            let item = scratch.candidate_item(cand);
            let inc_cand = incremental
                .candidate_for(user, item)
                .expect("candidate sets must match");
            let a = scratch.candidate_probs(cand);
            let b = incremental.candidate_probs(inc_cand);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "rows diverged for {user} {item}");
            }
            assert_eq!(
                scratch.candidate_rating(cand).to_bits(),
                incremental.candidate_rating(inc_cand).to_bits()
            );
        }
    }

    #[test]
    fn residual_advance_handles_multi_step_and_empty_batches() {
        let inst = instance();
        let day1 = [AdoptionEvent::rejected(0, 1, 1)];
        let prev = residual_of_validated(&inst, &day1, 1);
        // Advance with no new events: every group is untouched and every
        // row of the new residual is a pure shift of the previous one.
        let delta = ResidualDelta::new(1, 2, &[], crate::EngineSnapshot::new());
        let incremental = residual_advance(&inst, &prev, &day1, &delta);
        let scratch = residual_of_validated(&inst, &day1, 2);
        assert_eq!(incremental.num_candidates(), scratch.num_candidates());
        for cand in scratch.candidates() {
            let user = scratch.candidate_user(cand);
            let item = scratch.candidate_item(cand);
            let inc_cand = incremental.candidate_for(user, item).unwrap();
            let a = scratch.candidate_probs(cand);
            let b = incremental.candidate_probs(inc_cand);
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn all_zero_pairs_are_dropped() {
        let mut b = InstanceBuilder::new(1, 2, 2);
        b.display_limit(1)
            .constant_price(0, 5.0)
            .constant_price(1, 5.0)
            .candidate(0, 0, &[0.5, 0.0], 0.0) // dead after t = 1
            .candidate(0, 1, &[0.2, 0.3], 0.0);
        let inst = b.build().unwrap();
        let residual = residual_instance(&inst, &[], 1).unwrap();
        assert!(residual.candidate_for(UserId(0), ItemId(0)).is_none());
        assert!(residual.candidate_for(UserId(0), ItemId(1)).is_some());
    }

    #[test]
    fn exhausted_horizon_is_rejected() {
        let inst = instance();
        assert!(matches!(
            residual_instance(&inst, &[], 3),
            Err(EventError::ExhaustedHorizon { horizon: 3 })
        ));
        assert!(matches!(
            residual_instance(&inst, &[], 7),
            Err(EventError::ExhaustedHorizon { .. })
        ));
    }

    #[test]
    fn shift_strategy_moves_every_triple() {
        let s: Strategy = vec![Triple::new(0, 1, 1), Triple::new(1, 2, 2)]
            .into_iter()
            .collect();
        let shifted = shift_strategy(&s, 3);
        assert_eq!(shifted.len(), 2);
        assert!(shifted.contains(Triple::new(0, 1, 4)));
        assert!(shifted.contains(Triple::new(1, 2, 5)));
    }

    #[test]
    fn event_display_formats() {
        assert_eq!(
            AdoptionEvent::adopted(1, 2, 3).to_string(),
            "u1 adopted i2 at t3"
        );
        assert_eq!(
            AdoptionEvent::rejected(0, 0, 1).to_string(),
            "u0 rejected i0 at t1"
        );
    }
}
