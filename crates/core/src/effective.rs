//! The relaxed problem R-REVMAX (§4.2): the hard capacity constraint is
//! "pushed" into the objective via the *effective dynamic adoption
//! probability* (Definition 4), which multiplies `q_S(u, i, t)` by
//! `B_S(i, t) = Pr[at most q_i − 1 users in S_{i,t} adopt i]`, where
//! `S_{i,t}` are the recommendations of item `i` to *other* users up to time `t`.
//!
//! Computing `B_S(i, t)` exactly is a Poisson-binomial tail; we provide an
//! exact dynamic-programming oracle here (cost `O(n · q_i)`), and the
//! algorithms crate adds a Monte-Carlo estimator for large capacities.

use crate::ids::Triple;
use crate::instance::Instance;
use crate::revenue::dynamic_probabilities;
use crate::strategy::Strategy;
use std::collections::HashMap;

/// Oracle estimating `Pr[at most `limit` of the independent Bernoulli trials
/// with the given success probabilities succeed]`.
pub trait CapacityOracle {
    /// Probability that at most `limit` of the trials succeed.
    fn prob_at_most(&self, probs: &[f64], limit: u32) -> f64;
}

/// Exact Poisson-binomial tail via dynamic programming over the success count,
/// truncated at `limit + 1` (everything above the limit is lumped together).
///
/// Cost is `O(n · limit)`, exact up to floating-point rounding.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactPoissonBinomial;

impl CapacityOracle for ExactPoissonBinomial {
    fn prob_at_most(&self, probs: &[f64], limit: u32) -> f64 {
        if probs.len() as u32 <= limit {
            return 1.0;
        }
        let cap = limit as usize + 1; // states 0..=limit, plus an absorbing ">limit"
                                      // dist[c] = Pr[count == c] for c <= limit; overflow mass is dropped
                                      // (we only need Pr[count <= limit]).
        let mut dist = vec![0.0_f64; cap];
        dist[0] = 1.0;
        for &p in probs {
            // Iterate counts downwards so each trial is used once.
            for c in (0..cap).rev() {
                let stay = dist[c] * (1.0 - p);
                let up = if c + 1 < cap { dist[c] * p } else { 0.0 };
                dist[c] = stay;
                if c + 1 < cap {
                    dist[c + 1] += up;
                }
            }
        }
        dist.iter().sum::<f64>().clamp(0.0, 1.0)
    }
}

/// Effective dynamic adoption probabilities `E_S(u, i, t)` of every triple in
/// the strategy (Definition 4), using the supplied capacity oracle.
///
/// The Bernoulli success probabilities fed to the oracle are the *primitive*
/// adoption probabilities of the competing recommendations, matching Example 3
/// of the paper.
pub fn effective_probabilities<O: CapacityOracle>(
    inst: &Instance,
    strategy: &Strategy,
    oracle: &O,
) -> Vec<(Triple, f64)> {
    let base: HashMap<Triple, f64> = dynamic_probabilities(inst, strategy).into_iter().collect();
    // Group recommendations by item so we can collect S_{i,t} quickly.
    let mut by_item: HashMap<u32, Vec<Triple>> = HashMap::new();
    for z in strategy.iter() {
        by_item.entry(z.item.0).or_default().push(z);
    }
    let mut out = Vec::with_capacity(strategy.len());
    for z in strategy.iter() {
        let qi = inst.capacity(z.item);
        let others: Vec<f64> = by_item[&z.item.0]
            .iter()
            .filter(|o| o.user != z.user && o.t.value() <= z.t.value())
            .map(|o| inst.prob_of(*o))
            .collect();
        let b = if (others.len() as u32) < qi {
            1.0
        } else {
            oracle.prob_at_most(&others, qi.saturating_sub(1))
        };
        out.push((z, base[&z] * b));
    }
    out
}

/// Expected revenue of a strategy under the R-REVMAX objective (effective
/// dynamic adoption probabilities instead of `q_S`).
pub fn effective_revenue<O: CapacityOracle>(
    inst: &Instance,
    strategy: &Strategy,
    oracle: &O,
) -> f64 {
    effective_probabilities(inst, strategy, oracle)
        .into_iter()
        .map(|(z, e)| inst.price(z.item, z.t) * e)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    #[test]
    fn poisson_binomial_matches_binomial_closed_form() {
        let oracle = ExactPoissonBinomial;
        // 4 fair coins: Pr[at most 1 head] = (1 + 4) / 16.
        let probs = [0.5; 4];
        let got = oracle.prob_at_most(&probs, 1);
        assert!((got - 5.0 / 16.0).abs() < 1e-12);
        // Pr[at most 4 of 4] = 1.
        assert_eq!(oracle.prob_at_most(&probs, 4), 1.0);
        // Pr[at most 0] = product of failures.
        let got = oracle.prob_at_most(&[0.2, 0.3, 0.4], 0);
        assert!((got - 0.8 * 0.7 * 0.6).abs() < 1e-12);
    }

    #[test]
    fn poisson_binomial_heterogeneous_probs() {
        let oracle = ExactPoissonBinomial;
        let probs = [0.1, 0.9, 0.5];
        // Pr[at most 1] computed by enumeration:
        // count 0: 0.9*0.1*0.5 = 0.045
        // count 1: 0.1*0.1*0.5 + 0.9*0.9*0.5 + 0.9*0.1*0.5 = 0.005+0.405+0.045 = 0.455
        let got = oracle.prob_at_most(&probs, 1);
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn short_trial_list_is_certain() {
        let oracle = ExactPoissonBinomial;
        assert_eq!(oracle.prob_at_most(&[], 0), 1.0);
        assert_eq!(oracle.prob_at_most(&[0.7], 3), 1.0);
    }

    /// Reproduces Example 3: item i, users u, v, w; k = 1, q_i = 1, β_i = 0.5;
    /// S = {(u,i,1),(v,i,2),(w,i,1),(w,i,2)}.
    #[test]
    fn example3_effective_probability() {
        let mut b = InstanceBuilder::new(3, 1, 2);
        b.display_limit(1)
            .capacity(0, 1)
            .beta(0, 0.5)
            .constant_price(0, 1.0)
            .candidate(0, 0, &[0.3, 0.25], 0.0) // u
            .candidate(1, 0, &[0.2, 0.35], 0.0) // v
            .candidate(2, 0, &[0.4, 0.45], 0.0); // w
        let inst = b.build().unwrap();
        let s: Strategy = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 0, 1),
            Triple::new(2, 0, 2),
        ]
        .into_iter()
        .collect();
        let oracle = ExactPoissonBinomial;
        let eff: HashMap<Triple, f64> = effective_probabilities(&inst, &s, &oracle)
            .into_iter()
            .collect();
        // E(w, i, 2) = q(w,i,2) * (1-q(w,i,1)) * 0.5^{1/1} * Pr[neither u@1 nor v@2 adopt]
        //            = q(w,i,2) * (1-q(w,i,1)) * 0.5 * (1-q(u,i,1)) * (1-q(v,i,2))
        let expected = 0.45 * (1.0 - 0.4) * 0.5 * (1.0 - 0.3) * (1.0 - 0.35);
        let got = eff[&Triple::new(2, 0, 2)];
        assert!(
            (got - expected).abs() < 1e-12,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn effective_revenue_is_below_unconstrained_revenue() {
        let mut b = InstanceBuilder::new(3, 1, 1);
        b.display_limit(1).capacity(0, 1).constant_price(0, 10.0);
        for u in 0..3 {
            b.candidate(u, 0, &[0.5], 0.0);
        }
        let inst = b.build().unwrap();
        // Over-capacity strategy: 3 users for a capacity-1 item.
        let s: Strategy = (0..3).map(|u| Triple::new(u, 0, 1)).collect();
        let oracle = ExactPoissonBinomial;
        let eff = effective_revenue(&inst, &s, &oracle);
        let raw = crate::revenue::revenue(&inst, &s);
        assert!(eff < raw);
        assert!(eff > 0.0);
    }

    #[test]
    fn under_capacity_effective_equals_plain_revenue() {
        let mut b = InstanceBuilder::new(2, 1, 1);
        b.display_limit(1).capacity(0, 2).constant_price(0, 10.0);
        for u in 0..2 {
            b.candidate(u, 0, &[0.5], 0.0);
        }
        let inst = b.build().unwrap();
        let s: Strategy = (0..2).map(|u| Triple::new(u, 0, 1)).collect();
        let oracle = ExactPoissonBinomial;
        let eff = effective_revenue(&inst, &s, &oracle);
        let raw = crate::revenue::revenue(&inst, &s);
        assert!((eff - raw).abs() < 1e-12);
    }
}
