//! Recommendation strategies: sets of (user, item, time) triples, plus
//! validation against the REVMAX display and capacity constraints and a
//! self-contained JSON codec for persistence.
//!
//! # Serialisation
//!
//! The on-disk format is a JSON array of `[user, item, t]` triples in
//! insertion order, written by [`Strategy::to_json`] and read back by
//! [`Strategy::from_json`]. Deserialisation goes through [`Strategy::insert`],
//! which rebuilds the `O(1)` membership index — an earlier version derived its
//! serialisation and skipped the index field, so every deserialised strategy
//! answered `contains() == false` for all of its own triples. The round-trip
//! regression test below pins the fix.

use crate::error::{ConstraintViolation, StrategyParseError};
use crate::ids::{ItemId, TimeStep, Triple, UserId};
use crate::instance::Instance;
use std::collections::{HashMap, HashSet};

/// A recommendation strategy `S ⊆ U × I × [T]`.
///
/// The container preserves insertion order (useful for replaying greedy
/// selection traces, e.g. Figure 4 of the paper) while providing `O(1)`
/// membership tests.
#[derive(Debug, Clone, Default)]
pub struct Strategy {
    triples: Vec<Triple>,
    index: HashSet<Triple>,
}

impl Strategy {
    /// Creates an empty strategy.
    pub fn new() -> Self {
        Strategy::default()
    }

    /// Creates an empty strategy with room for `cap` triples.
    pub fn with_capacity(cap: usize) -> Self {
        Strategy {
            triples: Vec::with_capacity(cap),
            index: HashSet::with_capacity(cap),
        }
    }

    /// Number of triples in the strategy.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the strategy is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Whether a triple is part of the strategy.
    pub fn contains(&self, triple: Triple) -> bool {
        self.index.contains(&triple)
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        if self.index.insert(triple) {
            self.triples.push(triple);
            true
        } else {
            false
        }
    }

    /// Removes a triple; returns `true` if it was present.
    ///
    /// This is `O(n)` in the strategy size and intended for the local-search
    /// approximation algorithm, not for the greedy hot loops.
    pub fn remove(&mut self, triple: Triple) -> bool {
        if self.index.remove(&triple) {
            if let Some(pos) = self.triples.iter().position(|&t| t == triple) {
                self.triples.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Iterates over the triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.triples.iter().copied()
    }

    /// The triples in insertion order.
    pub fn as_slice(&self) -> &[Triple] {
        &self.triples
    }

    /// All triples recommended to a given user, in insertion order.
    pub fn triples_of_user(&self, user: UserId) -> Vec<Triple> {
        self.triples
            .iter()
            .copied()
            .filter(|t| t.user == user)
            .collect()
    }

    /// Number of repeats per (user, item) pair — the quantity plotted in
    /// Figure 5 of the paper.
    pub fn repeat_histogram(&self) -> HashMap<(UserId, ItemId), u32> {
        let mut h: HashMap<(UserId, ItemId), u32> = HashMap::new();
        for t in &self.triples {
            *h.entry((t.user, t.item)).or_insert(0) += 1;
        }
        h
    }

    /// Validates the strategy against the display constraint (at most `k` items
    /// per user per time step), the capacity constraint (at most `q_i` distinct
    /// non-exempt users per item, see [`Instance::is_exempt`]), and
    /// range/candidacy of every triple.
    pub fn validate(&self, inst: &Instance) -> Result<(), ConstraintViolation> {
        let mut display: HashMap<(UserId, TimeStep), usize> = HashMap::new();
        let mut users_per_item: HashMap<ItemId, HashSet<UserId>> = HashMap::new();
        for &triple in &self.triples {
            if !inst.in_range(triple) {
                return Err(ConstraintViolation::OutOfRange { triple });
            }
            if inst.candidate_for(triple.user, triple.item).is_none() {
                return Err(ConstraintViolation::NotACandidate { triple });
            }
            *display.entry((triple.user, triple.t)).or_insert(0) += 1;
            users_per_item
                .entry(triple.item)
                .or_default()
                .insert(triple.user);
        }
        for ((user, t), count) in display {
            if count > inst.display_limit() as usize {
                return Err(ConstraintViolation::Display {
                    user,
                    t: t.value(),
                    count,
                    limit: inst.display_limit(),
                });
            }
        }
        for (item, users) in users_per_item {
            // Exempt users were already charged against the original
            // instance a residual was conditioned on; they do not consume
            // the (residual) capacity again.
            let charged = users.iter().filter(|&&u| !inst.is_exempt(item, u)).count();
            if charged > inst.capacity(item) as usize {
                return Err(ConstraintViolation::Capacity {
                    item,
                    distinct_users: charged,
                    capacity: inst.capacity(item),
                });
            }
        }
        Ok(())
    }

    /// Serialises the strategy as a JSON array of `[user, item, t]` triples in
    /// insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.triples.len() * 16 + 2);
        out.push('[');
        for (idx, z) in self.triples.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{}]", z.user.0, z.item.0, z.t.0));
        }
        out.push(']');
        out
    }

    /// Parses the JSON produced by [`Strategy::to_json`].
    ///
    /// Insertion order is preserved, duplicates are dropped, and the `O(1)`
    /// membership index is rebuilt (every triple goes through
    /// [`Strategy::insert`]), so `contains()` is correct on the result.
    ///
    /// The original hand-rolled scanner grew into the shared
    /// [`crate::json`] reader when the wire protocol arrived; this method
    /// is now a thin layer over [`crate::wire::strategy_from_value`] and
    /// rejects exactly the same malformed inputs as before (pinned by the
    /// tests below).
    pub fn from_json(input: &str) -> Result<Strategy, StrategyParseError> {
        let wrap = |message: String| StrategyParseError { message };
        let value = crate::json::parse(input).map_err(|e| wrap(e.to_string()))?;
        crate::wire::strategy_from_value(&value).map_err(|e| wrap(e.to_string()))
    }

    /// Whether the strategy satisfies only the display constraint (the validity
    /// notion of the relaxed problem R-REVMAX, §4.2 of the paper).
    pub fn satisfies_display(&self, inst: &Instance) -> bool {
        let mut display: HashMap<(UserId, TimeStep), usize> = HashMap::new();
        for &triple in &self.triples {
            let c = display.entry((triple.user, triple.t)).or_insert(0);
            *c += 1;
            if *c > inst.display_limit() as usize {
                return false;
            }
        }
        true
    }
}

impl FromIterator<Triple> for Strategy {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut s = Strategy::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl<'a> IntoIterator for &'a Strategy {
    type Item = Triple;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Triple>>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter().copied()
    }
}

impl PartialEq for Strategy {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.triples.iter().all(|t| other.contains(*t))
    }
}

impl Eq for Strategy {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 2, 2);
        b.display_limit(1)
            .capacity(0, 1)
            .capacity(1, 3)
            .constant_price(0, 10.0)
            .constant_price(1, 5.0);
        for u in 0..3 {
            b.candidate(u, 0, &[0.5, 0.5], 4.0);
            b.candidate(u, 1, &[0.3, 0.3], 3.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = Strategy::new();
        let z = Triple::new(0, 0, 1);
        assert!(s.is_empty());
        assert!(s.insert(z));
        assert!(!s.insert(z));
        assert!(s.contains(z));
        assert_eq!(s.len(), 1);
        assert!(s.remove(z));
        assert!(!s.remove(z));
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_dedups() {
        let s: Strategy = vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 1),
            Triple::new(1, 1, 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn equality_is_set_equality() {
        let a: Strategy = vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)]
            .into_iter()
            .collect();
        let b: Strategy = vec![Triple::new(1, 1, 2), Triple::new(0, 0, 1)]
            .into_iter()
            .collect();
        let c: Strategy = vec![Triple::new(0, 0, 1)].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn validate_accepts_valid_strategy() {
        let inst = instance();
        let s: Strategy = vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 1, 2),
            Triple::new(1, 1, 1),
        ]
        .into_iter()
        .collect();
        assert!(s.validate(&inst).is_ok());
        assert!(s.satisfies_display(&inst));
    }

    #[test]
    fn validate_detects_display_violation() {
        let inst = instance();
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 1, 1)]
            .into_iter()
            .collect();
        assert!(matches!(
            s.validate(&inst),
            Err(ConstraintViolation::Display { .. })
        ));
        assert!(!s.satisfies_display(&inst));
    }

    #[test]
    fn validate_detects_capacity_violation() {
        let inst = instance();
        // Item 0 has capacity 1 but is shown to two distinct users.
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(1, 0, 1)]
            .into_iter()
            .collect();
        assert!(matches!(
            s.validate(&inst),
            Err(ConstraintViolation::Capacity { .. })
        ));
        // Repeats to the *same* user do not violate capacity.
        let s: Strategy = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)]
            .into_iter()
            .collect();
        assert!(s.validate(&inst).is_ok());
    }

    #[test]
    fn validate_detects_out_of_range_and_non_candidate() {
        let inst = instance();
        let s: Strategy = vec![Triple::new(9, 0, 1)].into_iter().collect();
        assert!(matches!(
            s.validate(&inst),
            Err(ConstraintViolation::OutOfRange { .. })
        ));
        // user 0 / item 1 is a candidate, but an instance without that pair rejects it
        let mut b = InstanceBuilder::new(2, 2, 2);
        b.constant_price(0, 1.0).candidate(0, 0, &[0.1, 0.1], 0.0);
        let inst2 = b.build().unwrap();
        let s: Strategy = vec![Triple::new(0, 1, 1)].into_iter().collect();
        assert!(matches!(
            s.validate(&inst2),
            Err(ConstraintViolation::NotACandidate { .. })
        ));
    }

    #[test]
    fn repeat_histogram_counts_pairs() {
        let s: Strategy = vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(0, 1, 1),
        ]
        .into_iter()
        .collect();
        let h = s.repeat_histogram();
        assert_eq!(h[&(UserId(0), ItemId(0))], 2);
        assert_eq!(h[&(UserId(0), ItemId(1))], 1);
    }

    #[test]
    fn json_round_trip_rebuilds_the_membership_index() {
        // Regression: the previous derived serialisation skipped the index
        // field, so a deserialised strategy reported `contains() == false`
        // for every one of its own triples.
        let original: Strategy = vec![
            Triple::new(3, 1, 2),
            Triple::new(0, 0, 1),
            Triple::new(7, 4, 5),
        ]
        .into_iter()
        .collect();
        let json = original.to_json();
        let restored = Strategy::from_json(&json).unwrap();
        assert_eq!(restored.len(), original.len());
        // Insertion order survives.
        assert_eq!(restored.as_slice(), original.as_slice());
        // And, crucially, membership queries work on the restored copy.
        for z in original.iter() {
            assert!(restored.contains(z), "restored strategy lost {z}");
        }
        assert!(!restored.contains(Triple::new(9, 9, 9)));
        assert_eq!(restored, original);
    }

    #[test]
    fn json_round_trip_empty_and_format() {
        let empty = Strategy::new();
        assert_eq!(empty.to_json(), "[]");
        assert!(Strategy::from_json("[]").unwrap().is_empty());
        assert!(Strategy::from_json(" [ ] ").unwrap().is_empty());
        let s: Strategy = vec![Triple::new(1, 2, 3)].into_iter().collect();
        assert_eq!(s.to_json(), "[[1,2,3]]");
        // Whitespace-tolerant parsing.
        let spaced = Strategy::from_json("[ [1, 2, 3] , [4 ,5, 6] ]").unwrap();
        assert_eq!(spaced.len(), 2);
        assert!(spaced.contains(Triple::new(4, 5, 6)));
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        for bad in [
            "",
            "{}",
            "[[1,2]]",
            "[[1,2,3,4]]",
            "[[1,2,x]]",
            "[[1,2,0]]", // 0 is not a valid 1-based time step
            "[[1,2,3]",
            "[[1,2,3] [4,5,6]]",
        ] {
            assert!(
                Strategy::from_json(bad).is_err(),
                "accepted malformed {bad:?}"
            );
        }
    }

    #[test]
    fn triples_of_user_filters() {
        let s: Strategy = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 1),
            Triple::new(0, 1, 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.triples_of_user(UserId(0)).len(), 2);
        assert_eq!(s.triples_of_user(UserId(2)).len(), 0);
    }
}
