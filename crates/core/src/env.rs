//! Shared parsing of `REVMAX_*` environment knobs.
//!
//! Every binary in the workspace exposes its runtime knobs through
//! environment variables, and they all follow the same contract: **a missing
//! or unparsable value falls back to the default** — configuration selects
//! speed, never behaviour, so a typo must degrade gracefully instead of
//! aborting. This module is the single implementation of that contract; the
//! per-crate `from_env` constructors (`PlannerConfig::from_env` in
//! `revmax-algorithms`, `Scale::from_env` in `revmax-experiments`, the bench
//! emitters) are thin layers over it.

use std::str::FromStr;

/// Reads and parses an environment variable; `None` when the variable is
/// unset, empty, or fails to parse.
pub fn var<T: FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|s| {
        let s = s.trim();
        if s.is_empty() {
            None
        } else {
            s.parse().ok()
        }
    })
}

/// Reads and parses an environment variable, falling back to `default`.
pub fn var_or<T: FromStr>(key: &str, default: T) -> T {
    var(key).unwrap_or(default)
}

/// Reads an environment variable through a custom parser (for enum-valued
/// knobs like `REVMAX_ENGINE=flat|hash`); `None` when unset or rejected.
pub fn var_with<T>(key: &str, parse: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    std::env::var(key).ok().and_then(|s| parse(s.trim()))
}

/// Whether a boolean knob is switched on (the workspace convention is `=1`).
pub fn flag(key: &str) -> bool {
    std::env::var(key).is_ok_and(|v| v.trim() == "1")
}

/// Whether the variable is present in the environment at all (regardless of
/// parseability). Tests use this to probe for ambient configuration that
/// would change a default-path assertion.
pub fn is_set(key: &str) -> bool {
    std::env::var_os(key).is_some()
}

/// Parses a comma-separated list (e.g. `REVMAX_SERVE_SHARDS=1,2,4`);
/// unparsable entries are skipped, `None` when the variable is unset.
pub fn var_list<T: FromStr>(key: &str) -> Option<Vec<T>> {
    std::env::var(key)
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns distinct variable names: the test harness runs tests
    // concurrently in one process and the environment is global.

    #[test]
    fn var_parses_and_falls_back() {
        std::env::set_var("REVMAX_TEST_VAR_A", "42");
        assert_eq!(var::<u32>("REVMAX_TEST_VAR_A"), Some(42));
        std::env::set_var("REVMAX_TEST_VAR_A", "not a number");
        assert_eq!(var::<u32>("REVMAX_TEST_VAR_A"), None);
        std::env::set_var("REVMAX_TEST_VAR_A", "  7 ");
        assert_eq!(var::<u32>("REVMAX_TEST_VAR_A"), Some(7));
        std::env::remove_var("REVMAX_TEST_VAR_A");
        assert_eq!(var::<u32>("REVMAX_TEST_VAR_A"), None);
        assert_eq!(var_or("REVMAX_TEST_VAR_A", 5u32), 5);
    }

    #[test]
    fn flag_requires_exactly_one() {
        std::env::set_var("REVMAX_TEST_FLAG_B", "1");
        assert!(flag("REVMAX_TEST_FLAG_B"));
        std::env::set_var("REVMAX_TEST_FLAG_B", "true");
        assert!(!flag("REVMAX_TEST_FLAG_B"));
        std::env::remove_var("REVMAX_TEST_FLAG_B");
        assert!(!flag("REVMAX_TEST_FLAG_B"));
    }

    #[test]
    fn var_with_uses_custom_parser() {
        std::env::set_var("REVMAX_TEST_ENUM_C", "hash");
        let parsed = var_with("REVMAX_TEST_ENUM_C", |s| match s {
            "flat" => Some(0),
            "hash" => Some(1),
            _ => None,
        });
        assert_eq!(parsed, Some(1));
        std::env::set_var("REVMAX_TEST_ENUM_C", "typo");
        let parsed = var_with("REVMAX_TEST_ENUM_C", |s| match s {
            "flat" => Some(0),
            _ => None,
        });
        assert_eq!(parsed, None);
        std::env::remove_var("REVMAX_TEST_ENUM_C");
    }

    #[test]
    fn var_list_splits_and_skips_garbage() {
        std::env::set_var("REVMAX_TEST_LIST_D", "1, 2,x,8");
        assert_eq!(var_list::<u32>("REVMAX_TEST_LIST_D"), Some(vec![1, 2, 8]));
        std::env::remove_var("REVMAX_TEST_LIST_D");
        assert_eq!(var_list::<u32>("REVMAX_TEST_LIST_D"), None);
    }
}
