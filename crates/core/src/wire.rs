//! Wire codecs for the protocol surface: [`Instance`], [`Strategy`], and
//! [`AdoptionEvent`] as JSON documents.
//!
//! These are the schemas `revmax-http` speaks (documented with examples in
//! `docs/http.md`); they are defined here in `revmax-core` so that tests,
//! benches, and any future transport share one codec built on the
//! [`crate::json`] reader/writer.
//!
//! Design points:
//!
//! * **Bit-exact round trips** — every `f64` (prices, probabilities,
//!   ratings, β) is written in shortest round-trip form, so
//!   `instance → JSON → instance` reproduces the instance exactly and a
//!   plan computed behind the wire matches the in-process plan to full
//!   precision (the protocol conformance suite pins 1e-9).
//! * **Validation reuse** — decoding an instance replays it through
//!   [`InstanceBuilder`], so the wire accepts exactly what the in-process
//!   API accepts; schema errors and semantic [`BuildError`]s are kept
//!   distinct (the HTTP layer maps them to 400 vs 422).
//!
//! # Instance schema
//!
//! ```json
//! {
//!   "users": 2, "items": 1, "horizon": 2, "display_limit": 1,
//!   "classes": [0],
//!   "beta": [1.0],
//!   "capacity": [2],
//!   "prices": [[10.0, 9.5]],
//!   "candidates": [[0, 0, 4.5, [0.4, 0.5]], [1, 0, 3.0, [0.3, 0.2]]],
//!   "exempt": [[0, [1]]]
//! }
//! ```
//!
//! `classes`, `beta`, `capacity`, and `exempt` are optional (builder
//! defaults apply); a candidate row is `[user, item, rating, probs]` with
//! one probability per horizon step.
//!
//! Declared dimensions are capped *before* any allocation happens
//! ([`MAX_WIRE_DIM`] per dimension, [`MAX_WIRE_CELLS`] for the dense
//! `items × horizon` price table), so a tiny document claiming huge
//! `users`/`items`/`horizon` is rejected with a schema error instead of
//! driving the builder into multi-GiB allocations.

use crate::error::BuildError;
use crate::events::{AdoptionEvent, AdoptionOutcome};
use crate::ids::{ItemId, Triple, UserId};
use crate::instance::{Instance, InstanceBuilder};
use crate::json::{self, JsonError, JsonValue};
use crate::strategy::Strategy;
use std::fmt;

/// Upper bound on each declared wire dimension (`users`, `items`,
/// `horizon`). [`InstanceBuilder`] allocates `O(items)` vectors up front
/// and the built instance carries `O(users)` candidate offsets, so an
/// untrusted document must not pick these freely up to `u32::MAX`.
pub const MAX_WIRE_DIM: u32 = 1 << 22;

/// Upper bound on the dense `items × horizon` price table a wire instance
/// may declare (~32 MiB of `f64` cells at the cap). Checked before the
/// builder is constructed, so `items * horizon` can neither exhaust memory
/// nor overflow a `Vec` capacity.
pub const MAX_WIRE_CELLS: u64 = 1 << 22;

/// Why a wire document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The text is not valid JSON.
    Json(JsonError),
    /// The JSON parses but does not match the schema.
    Schema {
        /// What was wrong, naming the offending field.
        message: String,
    },
    /// The document matches the schema but fails instance validation.
    Build(BuildError),
}

impl WireError {
    fn schema(message: impl Into<String>) -> Self {
        WireError::Schema {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(e) => write!(f, "{e}"),
            WireError::Schema { message } => write!(f, "schema error: {message}"),
            WireError::Build(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::Json(e)
    }
}

impl From<BuildError> for WireError {
    fn from(e: BuildError) -> Self {
        WireError::Build(e)
    }
}

fn field<'v>(obj: &'v JsonValue, key: &str) -> Result<&'v JsonValue, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError::schema(format!("missing field `{key}`")))
}

fn u32_field(value: &JsonValue, what: &str) -> Result<u32, WireError> {
    value
        .as_u32()
        .ok_or_else(|| WireError::schema(format!("`{what}` must be a non-negative integer")))
}

/// A declared dimension: a `u32` additionally capped at [`MAX_WIRE_DIM`],
/// rejected before anything is allocated from it.
fn dim_field(value: &JsonValue, what: &str) -> Result<u32, WireError> {
    let n = u32_field(value, what)?;
    if n > MAX_WIRE_DIM {
        return Err(WireError::schema(format!(
            "`{what}` is {n}, above the wire limit of {MAX_WIRE_DIM}"
        )));
    }
    Ok(n)
}

fn f64_field(value: &JsonValue, what: &str) -> Result<f64, WireError> {
    value
        .as_f64()
        .ok_or_else(|| WireError::schema(format!("`{what}` must be a number")))
}

fn array_field<'v>(value: &'v JsonValue, what: &str) -> Result<&'v [JsonValue], WireError> {
    value
        .as_array()
        .ok_or_else(|| WireError::schema(format!("`{what}` must be an array")))
}

fn f64_vec(value: &JsonValue, what: &str) -> Result<Vec<f64>, WireError> {
    array_field(value, what)?
        .iter()
        .map(|v| f64_field(v, what))
        .collect()
}

fn u32_vec(value: &JsonValue, what: &str) -> Result<Vec<u32>, WireError> {
    array_field(value, what)?
        .iter()
        .map(|v| u32_field(v, what))
        .collect()
}

// ---------------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------------

/// Encodes an instance as a wire [`JsonValue`] (see the module docs for the
/// schema).
pub fn instance_to_value(inst: &Instance) -> JsonValue {
    let items = 0..inst.num_items();
    let classes = items.clone().map(|i| f64::from(inst.class_of(ItemId(i)).0));
    let beta = items.clone().map(|i| inst.beta(ItemId(i)));
    let capacity = items.clone().map(|i| f64::from(inst.capacity(ItemId(i))));
    let prices = items
        .clone()
        .map(|i| json::number_array(inst.price_series(ItemId(i)).iter().copied()))
        .collect();

    let mut candidates = Vec::new();
    for u in 0..inst.num_users() {
        for cand in inst.candidates_of_user(UserId(u)) {
            candidates.push(JsonValue::Array(vec![
                JsonValue::Number(f64::from(u)),
                JsonValue::Number(f64::from(inst.candidate_item(cand).0)),
                JsonValue::Number(inst.candidate_rating(cand)),
                json::number_array(inst.candidate_probs(cand).iter().copied()),
            ]));
        }
    }

    let mut pairs = vec![
        ("users", JsonValue::Number(f64::from(inst.num_users()))),
        ("items", JsonValue::Number(f64::from(inst.num_items()))),
        ("horizon", JsonValue::Number(f64::from(inst.horizon()))),
        (
            "display_limit",
            JsonValue::Number(f64::from(inst.display_limit())),
        ),
        ("classes", json::number_array(classes)),
        ("beta", json::number_array(beta)),
        ("capacity", json::number_array(capacity)),
        ("prices", JsonValue::Array(prices)),
        ("candidates", JsonValue::Array(candidates)),
    ];
    if inst.has_exemptions() {
        let exempt = (0..inst.num_items())
            .filter_map(|i| {
                let users = inst.exempt_users(ItemId(i));
                if users.is_empty() {
                    return None;
                }
                Some(JsonValue::Array(vec![
                    JsonValue::Number(f64::from(i)),
                    json::number_array(users.iter().map(|u| f64::from(u.0))),
                ]))
            })
            .collect();
        pairs.push(("exempt", JsonValue::Array(exempt)));
    }
    json::object(pairs)
}

/// Encodes an instance as compact wire JSON text.
pub fn instance_to_json(inst: &Instance) -> String {
    instance_to_value(inst).to_string()
}

/// Decodes a wire [`JsonValue`] into an [`Instance`], replaying it through
/// [`InstanceBuilder`] so all semantic validation applies.
pub fn instance_from_value(value: &JsonValue) -> Result<Instance, WireError> {
    if value.as_object().is_none() {
        return Err(WireError::schema("an instance must be a JSON object"));
    }
    let users = dim_field(field(value, "users")?, "users")?;
    let items = dim_field(field(value, "items")?, "items")?;
    let horizon = dim_field(field(value, "horizon")?, "horizon")?;
    if u64::from(items) * u64::from(horizon) > MAX_WIRE_CELLS {
        return Err(WireError::schema(format!(
            "`items * horizon` is {}, above the wire limit of {MAX_WIRE_CELLS} price cells",
            u64::from(items) * u64::from(horizon)
        )));
    }
    let mut b = InstanceBuilder::new(users, items, horizon);
    if let Some(k) = value.get("display_limit") {
        b.display_limit(u32_field(k, "display_limit")?);
    }
    if let Some(classes) = value.get("classes") {
        for (i, c) in u32_vec(classes, "classes")?.into_iter().enumerate() {
            b.item_class(i as u32, c);
        }
    }
    if let Some(beta) = value.get("beta") {
        for (i, bi) in f64_vec(beta, "beta")?.into_iter().enumerate() {
            b.beta(i as u32, bi);
        }
    }
    if let Some(capacity) = value.get("capacity") {
        for (i, q) in u32_vec(capacity, "capacity")?.into_iter().enumerate() {
            b.capacity(i as u32, q);
        }
    }
    for (i, series) in array_field(field(value, "prices")?, "prices")?
        .iter()
        .enumerate()
    {
        if series.is_null() {
            continue;
        }
        b.prices(i as u32, &f64_vec(series, "prices")?);
    }
    for row in array_field(field(value, "candidates")?, "candidates")? {
        let row = array_field(row, "candidates")?;
        if row.len() != 4 {
            return Err(WireError::schema(
                "a candidate row must be `[user, item, rating, probs]`",
            ));
        }
        let user = u32_field(&row[0], "candidate user")?;
        let item = u32_field(&row[1], "candidate item")?;
        let rating = f64_field(&row[2], "candidate rating")?;
        let probs = f64_vec(&row[3], "candidate probs")?;
        b.candidate(user, item, &probs, rating);
    }
    if let Some(exempt) = value.get("exempt") {
        for row in array_field(exempt, "exempt")? {
            let row = array_field(row, "exempt")?;
            if row.len() != 2 {
                return Err(WireError::schema(
                    "an exempt row must be `[item, [users...]]`",
                ));
            }
            let item = u32_field(&row[0], "exempt item")?;
            for user in u32_vec(&row[1], "exempt users")? {
                b.exempt_user(item, user);
            }
        }
    }
    Ok(b.build()?)
}

/// Decodes wire JSON text into an [`Instance`].
pub fn instance_from_json(text: &str) -> Result<Instance, WireError> {
    instance_from_value(&json::parse(text)?)
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// Encodes a strategy as its wire value: an array of `[user, item, t]`
/// triples in insertion order (the same format as [`Strategy::to_json`]).
pub fn strategy_to_value(strategy: &Strategy) -> JsonValue {
    JsonValue::Array(
        strategy
            .iter()
            .map(|z| {
                JsonValue::Array(vec![
                    JsonValue::Number(f64::from(z.user.0)),
                    JsonValue::Number(f64::from(z.item.0)),
                    JsonValue::Number(f64::from(z.t.0)),
                ])
            })
            .collect(),
    )
}

/// Decodes a strategy wire value: duplicates are dropped and the membership
/// index is rebuilt, exactly like [`Strategy::from_json`].
pub fn strategy_from_value(value: &JsonValue) -> Result<Strategy, WireError> {
    let rows = value
        .as_array()
        .ok_or_else(|| WireError::schema("expected a JSON array of triples"))?;
    let mut s = Strategy::with_capacity(rows.len());
    for row in rows {
        let fields = row
            .as_array()
            .ok_or_else(|| WireError::schema("expected `[u,i,t]`"))?;
        if fields.len() != 3 {
            return Err(WireError::schema("a triple must have exactly 3 fields"));
        }
        let int = |v: &JsonValue| {
            v.as_u32()
                .ok_or_else(|| WireError::schema("non-integer field in triple"))
        };
        let (user, item, t) = (int(&fields[0])?, int(&fields[1])?, int(&fields[2])?);
        if t == 0 {
            return Err(WireError::schema("time steps are 1-based"));
        }
        s.insert(Triple::new(user, item, t));
    }
    Ok(s)
}

// ---------------------------------------------------------------------------
// Adoption events
// ---------------------------------------------------------------------------

/// Encodes one adoption event as its wire value.
pub fn event_to_value(event: &AdoptionEvent) -> JsonValue {
    json::object(vec![
        ("user", JsonValue::Number(f64::from(event.user.0))),
        ("item", JsonValue::Number(f64::from(event.item.0))),
        ("t", JsonValue::Number(f64::from(event.t.0))),
        (
            "outcome",
            JsonValue::String(
                match event.outcome {
                    AdoptionOutcome::Adopted => "adopted",
                    AdoptionOutcome::Rejected => "rejected",
                }
                .to_string(),
            ),
        ),
    ])
}

/// Encodes an event batch as compact wire JSON text.
pub fn events_to_json(events: &[AdoptionEvent]) -> String {
    JsonValue::Array(events.iter().map(event_to_value).collect()).to_string()
}

/// Decodes one adoption event from its wire value.
pub fn event_from_value(value: &JsonValue) -> Result<AdoptionEvent, WireError> {
    if value.as_object().is_none() {
        return Err(WireError::schema("an event must be a JSON object"));
    }
    let user = u32_field(field(value, "user")?, "user")?;
    let item = u32_field(field(value, "item")?, "item")?;
    let t = u32_field(field(value, "t")?, "t")?;
    if t == 0 {
        return Err(WireError::schema("time steps are 1-based"));
    }
    let outcome = field(value, "outcome")?
        .as_str()
        .ok_or_else(|| WireError::schema("`outcome` must be a string"))?;
    match outcome {
        "adopted" => Ok(AdoptionEvent::adopted(user, item, t)),
        "rejected" => Ok(AdoptionEvent::rejected(user, item, t)),
        _ => Err(WireError::schema(
            "`outcome` must be \"adopted\" or \"rejected\"",
        )),
    }
}

/// Decodes an event batch from its wire value (a JSON array of events).
pub fn events_from_value(value: &JsonValue) -> Result<Vec<AdoptionEvent>, WireError> {
    array_field(value, "events")?
        .iter()
        .map(event_from_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 2, 4);
        b.display_limit(2)
            .item_class(0, 1)
            .item_class(1, 0)
            .capacity(0, 1)
            .capacity(1, 2)
            .beta(0, 0.25)
            .beta(1, 1.0)
            .prices(0, &[10.0, 9.5, 9.0, 8.5])
            .prices(1, &[5.0, 5.0, 5.5, 5.5])
            .candidate(0, 0, &[0.5, 0.4, 0.3, 0.2], 4.5)
            .candidate(0, 1, &[0.1, 0.2, 0.3, 0.4], 3.0)
            .candidate(1, 0, &[1.0 / 3.0, 0.25, 0.2, 0.125], 2.5)
            .candidate(2, 1, &[0.9, 0.0, 0.0, 0.1], 5.0)
            .exempt_user(0, 2);
        b.build().expect("sample instance is valid")
    }

    fn assert_instances_equal(a: &Instance, b: &Instance) {
        assert_eq!(a.num_users(), b.num_users());
        assert_eq!(a.num_items(), b.num_items());
        assert_eq!(a.horizon(), b.horizon());
        assert_eq!(a.display_limit(), b.display_limit());
        for i in 0..a.num_items() {
            let i = ItemId(i);
            assert_eq!(a.class_of(i), b.class_of(i));
            assert_eq!(a.capacity(i), b.capacity(i));
            assert_eq!(a.beta(i).to_bits(), b.beta(i).to_bits());
            let (pa, pb) = (a.price_series(i), b.price_series(i));
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.exempt_users(i), b.exempt_users(i));
        }
        assert_eq!(a.num_candidates(), b.num_candidates());
        for u in 0..a.num_users() {
            let u = UserId(u);
            let ca: Vec<_> = a.candidates_of_user(u).collect();
            let cb: Vec<_> = b.candidates_of_user(u).collect();
            assert_eq!(ca.len(), cb.len());
            for (x, y) in ca.iter().zip(&cb) {
                assert_eq!(a.candidate_item(*x), b.candidate_item(*y));
                assert_eq!(
                    a.candidate_rating(*x).to_bits(),
                    b.candidate_rating(*y).to_bits()
                );
                let (qa, qb) = (a.candidate_probs(*x), b.candidate_probs(*y));
                for (p, q) in qa.iter().zip(qb) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
    }

    #[test]
    fn instance_round_trips_bit_exactly() {
        let inst = sample_instance();
        let text = instance_to_json(&inst);
        let back = instance_from_json(&text).expect("round trip parses");
        assert_instances_equal(&inst, &back);
        // And a second hop is stable.
        assert_eq!(text, instance_to_json(&back));
    }

    #[test]
    fn instance_decode_distinguishes_schema_from_build_errors() {
        assert!(matches!(
            instance_from_json("not json"),
            Err(WireError::Json(_))
        ));
        assert!(matches!(
            instance_from_json("[1,2,3]"),
            Err(WireError::Schema { .. })
        ));
        assert!(matches!(
            instance_from_json(r#"{"users": 1, "items": 1}"#),
            Err(WireError::Schema { .. })
        ));
        // Wrong-typed field.
        assert!(matches!(
            instance_from_json(
                r#"{"users": "two", "items": 1, "horizon": 1, "prices": [[1.0]], "candidates": []}"#
            ),
            Err(WireError::Schema { .. })
        ));
        // Schema-valid but semantically invalid: probability > 1 is a
        // BuildError from the replayed InstanceBuilder.
        let bad = r#"{"users": 1, "items": 1, "horizon": 1,
                      "prices": [[1.0]], "candidates": [[0, 0, 0.0, [1.5]]]}"#;
        assert!(matches!(
            instance_from_json(bad),
            Err(WireError::Build(BuildError::InvalidProbability { .. }))
        ));
        // Horizon-length mismatch in a candidate row, same split.
        let bad = r#"{"users": 1, "items": 1, "horizon": 2,
                      "prices": [[1.0, 1.0]], "candidates": [[0, 0, 0.0, [0.5]]]}"#;
        assert!(matches!(
            instance_from_json(bad),
            Err(WireError::Build(BuildError::ProbabilitySeriesLength { .. }))
        ));
    }

    #[test]
    fn instance_decode_caps_declared_dimensions_before_allocating() {
        // A ~100-byte document claiming u32::MAX-sized dimensions must be
        // rejected as a schema error without touching the builder (which
        // would allocate O(items) + O(items * horizon)).
        let max = u32::MAX;
        for body in [
            format!(
                r#"{{"users": {max}, "items": 1, "horizon": 1, "prices": [[1.0]], "candidates": []}}"#
            ),
            format!(
                r#"{{"users": 1, "items": {max}, "horizon": 1, "prices": [], "candidates": []}}"#
            ),
            format!(
                r#"{{"users": 1, "items": 1, "horizon": {max}, "prices": [null], "candidates": []}}"#
            ),
        ] {
            assert!(
                matches!(instance_from_json(&body), Err(WireError::Schema { .. })),
                "accepted oversized dimension in {body}"
            );
        }
        // Each dimension under MAX_WIRE_DIM, but the dense price table
        // (items * horizon) over MAX_WIRE_CELLS: also rejected up front.
        let dim = MAX_WIRE_DIM;
        let body = format!(
            r#"{{"users": 1, "items": {dim}, "horizon": {dim}, "prices": [], "candidates": []}}"#
        );
        match instance_from_json(&body) {
            Err(WireError::Schema { message }) => {
                assert!(
                    message.contains("items * horizon"),
                    "wrong error: {message}"
                )
            }
            other => panic!("expected a cells-cap schema error, got {other:?}"),
        }
        // At the cap itself the document passes the schema gate and reaches
        // builder validation (`display_limit: 0` fails there, cheaply).
        let body = format!(
            r#"{{"users": 1, "items": 1, "horizon": {}, "display_limit": 0, "prices": [null], "candidates": []}}"#,
            MAX_WIRE_CELLS
        );
        assert!(
            matches!(
                instance_from_json(&body),
                Err(WireError::Build(BuildError::ZeroDisplayLimit))
            ),
            "an in-cap document should reach builder validation"
        );
    }

    #[test]
    fn strategy_value_round_trip_matches_text_codec() {
        let s: Strategy = vec![
            Triple::new(3, 1, 2),
            Triple::new(0, 0, 1),
            Triple::new(7, 4, 5),
        ]
        .into_iter()
        .collect();
        let value = strategy_to_value(&s);
        assert_eq!(value.to_string(), s.to_json());
        let back = strategy_from_value(&value).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(back.as_slice(), s.as_slice());
    }

    #[test]
    fn strategy_value_rejects_malformed_rows() {
        for bad in [
            "{}",
            "[[1,2]]",
            "[[1,2,3,4]]",
            "[[1,2,0]]",
            "[[1,2,3.5]]",
            "[[1,2,\"x\"]]",
            "[4]",
        ] {
            let value = json::parse(bad).expect("valid JSON");
            assert!(
                strategy_from_value(&value).is_err(),
                "accepted malformed {bad:?}"
            );
        }
    }

    #[test]
    fn events_round_trip() {
        let events = vec![
            AdoptionEvent::adopted(0, 1, 2),
            AdoptionEvent::rejected(3, 0, 4),
        ];
        let text = events_to_json(&events);
        let value = json::parse(&text).expect("valid JSON");
        let back = events_from_value(&value).expect("round trip");
        assert_eq!(back, events);
        assert!(back[0].is_adoption());
        assert!(!back[1].is_adoption());
    }

    #[test]
    fn events_reject_malformed_rows() {
        for bad in [
            r#"{"user":0}"#,
            r#"[{"user":0,"item":1,"t":2}]"#,
            r#"[{"user":0,"item":1,"t":0,"outcome":"adopted"}]"#,
            r#"[{"user":0,"item":1,"t":2,"outcome":"maybe"}]"#,
            r#"[{"user":-1,"item":1,"t":2,"outcome":"adopted"}]"#,
            r#"[{"user":0,"item":1,"t":2,"outcome":3}]"#,
        ] {
            let value = json::parse(bad).expect("valid JSON");
            assert!(
                events_from_value(&value).is_err(),
                "accepted malformed {bad:?}"
            );
        }
    }
}
