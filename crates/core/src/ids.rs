//! Strongly-typed identifiers for users, items, item classes, and time steps.
//!
//! The paper indexes time steps `t ∈ [T] = {1, …, T}`; we keep the same 1-based
//! convention so that the memory function `M_S(u, i, t) = Σ X_S(u, j, τ) / (t − τ)`
//! can be written exactly as in Equation (1). Helpers convert to 0-based indices
//! for array storage.

use std::fmt;

/// Identifier of a user (`u ∈ U`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct UserId(pub u32);

/// Identifier of an item (`i ∈ I`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ItemId(pub u32);

/// Identifier of an item class (`C(i)`), e.g. "tablet" or "smartphone".
///
/// Items in the same class compete: a user adopts at most one item per class
/// within the horizon.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClassId(pub u32);

/// A 1-based time step `t ∈ {1, …, T}`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TimeStep(pub u32);

impl UserId {
    /// The raw index as `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The raw index as `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ClassId {
    /// The raw index as `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TimeStep {
    /// Constructs a time step from a 0-based index.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        TimeStep(idx as u32 + 1)
    }

    /// The 0-based index of this time step (`t − 1`), for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(self.0 >= 1, "time steps are 1-based");
        (self.0 - 1) as usize
    }

    /// The 1-based value of this time step.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for TimeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A user–item–time triple `(u, i, t)`; a recommendation strategy is a set of these.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Triple {
    /// The user who receives the recommendation.
    pub user: UserId,
    /// The recommended item.
    pub item: ItemId,
    /// The time step at which the item is shown.
    pub t: TimeStep,
}

impl Triple {
    /// Convenience constructor from raw indices (time is 1-based).
    #[inline]
    pub fn new(user: u32, item: u32, t: u32) -> Self {
        Triple {
            user: UserId(user),
            item: ItemId(item),
            t: TimeStep(t),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.user, self.item, self.t)
    }
}

/// Index of a (user, item) candidate pair inside an [`crate::Instance`].
///
/// Only pairs with a positive primitive adoption probability for at least one
/// time step are materialised; the number of such candidate triples is the true
/// input size of a REVMAX instance (cf. Table 1 of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CandidateId(pub u32);

impl CandidateId {
    /// The raw index as `usize`, for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestep_roundtrip() {
        for idx in 0..10usize {
            let t = TimeStep::from_index(idx);
            assert_eq!(t.index(), idx);
            assert_eq!(t.value(), idx as u32 + 1);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(7).to_string(), "i7");
        assert_eq!(ClassId(1).to_string(), "c1");
        assert_eq!(TimeStep(2).to_string(), "t2");
        assert_eq!(Triple::new(3, 7, 2).to_string(), "(u3, i7, t2)");
    }

    #[test]
    fn triple_ordering_is_lexicographic() {
        let a = Triple::new(1, 5, 2);
        let b = Triple::new(1, 5, 3);
        let c = Triple::new(2, 0, 1);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn ids_index_roundtrip() {
        assert_eq!(UserId(42).index(), 42);
        assert_eq!(ItemId(42).index(), 42);
        assert_eq!(ClassId(42).index(), 42);
        assert_eq!(CandidateId(42).index(), 42);
    }
}
