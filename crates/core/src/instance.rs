//! The REVMAX problem instance: users, items, classes, horizon, prices,
//! capacities, saturation factors, and the sparse set of candidate
//! (user, item) pairs with their primitive adoption probabilities.
//!
//! Following §6 of the paper, only (user, item, time) triples with a positive
//! primitive adoption probability are materialised ("the number of such triples
//! is the true input size"). We store them in a CSR-like layout: per user a
//! contiguous range of candidate (user, item) pairs, each carrying a row of `T`
//! probabilities.

use crate::error::BuildError;
use crate::ids::{CandidateId, ClassId, ItemId, TimeStep, Triple, UserId};
use std::sync::Arc;

/// Per-item exempt-user sets: users whose displays of an item do **not**
/// consume the item's capacity `q_i`.
///
/// Exemptions exist for residual instances: when a prefix display of item
/// `i` to user `u` already consumed a capacity unit of the *original*
/// instance, the residual instance pre-charges that unit — and marks
/// `(i, u)` exempt so a re-display is not double-charged (see
/// [`crate::events::ResidualMode`]). Ordinary instances have no exemptions
/// and pay a single `bool` check on the capacity fast path.
///
/// Shared behind an `Arc` so engines and ledgers can carry the sets without
/// copying them on every (re)plan.
#[derive(Debug, Default)]
pub(crate) struct ExemptSets {
    /// Sorted, deduplicated exempt users per item (indexed by item id).
    pub(crate) per_item: Vec<Vec<UserId>>,
    /// Fast path: whether any item has a non-empty exempt set.
    pub(crate) any: bool,
}

impl ExemptSets {
    /// Whether `(item, user)` is exempt from capacity accounting.
    #[inline]
    pub(crate) fn contains(&self, item: ItemId, user: UserId) -> bool {
        if !self.any {
            return false;
        }
        self.per_item[item.index()].binary_search(&user).is_ok()
    }
}

/// The saturation-factor structure of one item class, detected at
/// [`Instance`] build time.
///
/// When every item of a class carries the **bit-identical** saturation
/// factor `β`, the per-(user, class) saturation bookkeeping of the flat
/// revenue engine closes under insertion into per-time aggregates — the
/// saturation-aggregate fast path evaluates marginals in `O(T)` without
/// walking the group's selected triples (see
/// [`crate::revenue::IncrementalRevenue`]). Classes whose items disagree on
/// `β` report [`BetaProfile::Mixed`] and always use the exact slab walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaProfile {
    /// Every item of the class shares this saturation factor (single-item
    /// classes are trivially uniform).
    Uniform(f64),
    /// The class contains items with differing saturation factors.
    Mixed,
}

impl BetaProfile {
    /// Whether the class qualifies for the saturation-aggregate fast path.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        matches!(self, BetaProfile::Uniform(_))
    }
}

/// Computes the per-class [`BetaProfile`]s from the class → items map and the
/// per-item saturation factors. Uniformity is exact bit equality: the fast
/// path substitutes one item's power table for another's, which is only
/// value-preserving when the betas are the same `f64`.
fn beta_profiles(class_items: &[Vec<ItemId>], beta: &[f64]) -> Vec<BetaProfile> {
    class_items
        .iter()
        .map(|items| {
            let mut iter = items.iter();
            let Some(first) = iter.next() else {
                return BetaProfile::Uniform(1.0);
            };
            let b = beta[first.index()];
            if iter.all(|i| beta[i.index()].to_bits() == b.to_bits()) {
                BetaProfile::Uniform(b)
            } else {
                BetaProfile::Mixed
            }
        })
        .collect()
}

/// An immutable REVMAX problem instance (Problem 1 of the paper).
#[derive(Debug, Clone)]
pub struct Instance {
    num_users: u32,
    num_items: u32,
    num_classes: u32,
    horizon: u32,
    display_limit: u32,
    item_class: Vec<ClassId>,
    class_items: Vec<Vec<ItemId>>,
    /// Per-class saturation profile (see [`BetaProfile`]), derived from
    /// `beta` at build time.
    class_beta: Vec<BetaProfile>,
    capacity: Vec<u32>,
    /// Users whose displays of an item are exempt from its capacity.
    exempt: Arc<ExemptSets>,
    beta: Vec<f64>,
    /// Item-major price matrix: `prices[item * T + (t - 1)]`.
    prices: Vec<f64>,
    /// CSR row starts per user (length `num_users + 1`).
    user_cand_start: Vec<u32>,
    cand_item: Vec<ItemId>,
    cand_user: Vec<UserId>,
    /// Candidate-major probability matrix: `cand_prob[cand * T + (t - 1)]`.
    cand_prob: Vec<f64>,
    /// Predicted rating of the candidate pair (used by the TopRA baseline).
    cand_rating: Vec<f64>,
}

impl Instance {
    /// Number of users `|U|`.
    #[inline]
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items `|I|`.
    #[inline]
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of item classes.
    #[inline]
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// The time horizon `T`.
    #[inline]
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The display limit `k`: at most `k` items per user per time step.
    #[inline]
    pub fn display_limit(&self) -> u32 {
        self.display_limit
    }

    /// Iterator over all time steps `1..=T`.
    pub fn time_steps(&self) -> impl Iterator<Item = TimeStep> {
        (1..=self.horizon).map(TimeStep)
    }

    /// The class `C(i)` of an item.
    #[inline]
    pub fn class_of(&self, item: ItemId) -> ClassId {
        self.item_class[item.index()]
    }

    /// All items belonging to a class.
    #[inline]
    pub fn items_in_class(&self, class: ClassId) -> &[ItemId] {
        &self.class_items[class.index()]
    }

    /// The capacity `q_i` of an item: maximum number of distinct users it may
    /// be recommended to across the horizon.
    #[inline]
    pub fn capacity(&self, item: ItemId) -> u32 {
        self.capacity[item.index()]
    }

    /// Whether displaying `item` to `user` is exempt from the capacity
    /// constraint (the pair was already charged by the prefix a residual
    /// instance was conditioned on). Always `false` on ordinary instances.
    #[inline]
    pub fn is_exempt(&self, item: ItemId, user: UserId) -> bool {
        self.exempt.contains(item, user)
    }

    /// The sorted exempt users of an item (empty on ordinary instances).
    #[inline]
    pub fn exempt_users(&self, item: ItemId) -> &[UserId] {
        if !self.exempt.any {
            return &[];
        }
        &self.exempt.per_item[item.index()]
    }

    /// Whether any item carries a non-empty exempt-user set.
    #[inline]
    pub fn has_exemptions(&self) -> bool {
        self.exempt.any
    }

    /// The shared exempt-set handle (for ledgers; cheap `Arc` clone).
    #[inline]
    pub(crate) fn exempt_sets(&self) -> Arc<ExemptSets> {
        Arc::clone(&self.exempt)
    }

    /// The saturation factor `β_i ∈ [0, 1]` of an item (1 = no saturation).
    #[inline]
    pub fn beta(&self, item: ItemId) -> f64 {
        self.beta[item.index()]
    }

    /// The saturation profile of a class: [`BetaProfile::Uniform`] when every
    /// item of the class shares the same `β` (detected at build time), which
    /// qualifies the class for the saturation-aggregate fast path of the flat
    /// revenue engine.
    #[inline]
    pub fn beta_profile(&self, class: ClassId) -> BetaProfile {
        self.class_beta[class.index()]
    }

    /// The per-class saturation profiles (indexed by class id).
    #[inline]
    pub fn beta_profiles(&self) -> &[BetaProfile] {
        &self.class_beta
    }

    /// Whether **every** class carries a uniform saturation factor — the
    /// instance-wide precondition under which the flat engine's aggregate
    /// fast path covers every (user, class) group.
    pub fn all_beta_uniform(&self) -> bool {
        self.class_beta.iter().all(BetaProfile::is_uniform)
    }

    /// The exogenous price `p(i, t)`.
    #[inline]
    pub fn price(&self, item: ItemId, t: TimeStep) -> f64 {
        self.prices[item.index() * self.horizon as usize + t.index()]
    }

    /// The full price series of an item over the horizon.
    #[inline]
    pub fn price_series(&self, item: ItemId) -> &[f64] {
        let t = self.horizon as usize;
        &self.prices[item.index() * t..(item.index() + 1) * t]
    }

    /// Total number of (user, item) candidate pairs.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.cand_item.len()
    }

    /// Number of candidate triples with strictly positive primitive adoption
    /// probability — the "true input size" reported in Table 1 of the paper.
    pub fn num_candidate_triples(&self) -> usize {
        self.cand_prob.iter().filter(|&&p| p > 0.0).count()
    }

    /// The total number of recommendation slots `k · T · |U|` (the hard upper
    /// bound on the size of a valid strategy).
    #[inline]
    pub fn total_slots(&self) -> u64 {
        self.display_limit as u64 * self.horizon as u64 * self.num_users as u64
    }

    /// The candidate ids belonging to a user.
    #[inline]
    pub fn candidates_of_user(&self, user: UserId) -> impl Iterator<Item = CandidateId> {
        let start = self.user_cand_start[user.index()];
        let end = self.user_cand_start[user.index() + 1];
        (start..end).map(CandidateId)
    }

    /// All candidate ids in the instance.
    #[inline]
    pub fn candidates(&self) -> impl Iterator<Item = CandidateId> {
        (0..self.cand_item.len() as u32).map(CandidateId)
    }

    /// The CSR row-start offsets of the per-user candidate ranges (length
    /// `num_users + 1`; user `u` owns candidates `offsets[u]..offsets[u + 1]`).
    ///
    /// Exposed so algorithms can cut the candidate axis at user boundaries for
    /// per-user parallel decomposition.
    #[inline]
    pub fn user_cand_offsets(&self) -> &[u32] {
        &self.user_cand_start
    }

    /// The user of a candidate pair.
    #[inline]
    pub fn candidate_user(&self, cand: CandidateId) -> UserId {
        self.cand_user[cand.index()]
    }

    /// The item of a candidate pair.
    #[inline]
    pub fn candidate_item(&self, cand: CandidateId) -> ItemId {
        self.cand_item[cand.index()]
    }

    /// The class of a candidate pair's item.
    #[inline]
    pub fn candidate_class(&self, cand: CandidateId) -> ClassId {
        self.item_class[self.cand_item[cand.index()].index()]
    }

    /// The predicted rating `r̂_ui` of a candidate pair (0 if not supplied).
    #[inline]
    pub fn candidate_rating(&self, cand: CandidateId) -> f64 {
        self.cand_rating[cand.index()]
    }

    /// Primitive adoption probabilities `q(u, i, ·)` of a candidate over the horizon.
    #[inline]
    pub fn candidate_probs(&self, cand: CandidateId) -> &[f64] {
        let t = self.horizon as usize;
        &self.cand_prob[cand.index() * t..(cand.index() + 1) * t]
    }

    /// Primitive adoption probability `q(u, i, t)` of a candidate at one time step.
    #[inline]
    pub fn candidate_prob(&self, cand: CandidateId, t: TimeStep) -> f64 {
        self.cand_prob[cand.index() * self.horizon as usize + t.index()]
    }

    /// Looks up the candidate id of a (user, item) pair, if it exists.
    pub fn candidate_for(&self, user: UserId, item: ItemId) -> Option<CandidateId> {
        let start = self.user_cand_start[user.index()] as usize;
        let end = self.user_cand_start[user.index() + 1] as usize;
        let slice = &self.cand_item[start..end];
        slice
            .binary_search(&item)
            .ok()
            .map(|off| CandidateId((start + off) as u32))
    }

    /// The primitive adoption probability `q(u, i, t)` of an arbitrary triple
    /// (0 if the pair is not a candidate).
    pub fn prob_of(&self, triple: Triple) -> f64 {
        match self.candidate_for(triple.user, triple.item) {
            Some(c) => self.candidate_prob(c, triple.t),
            None => 0.0,
        }
    }

    /// Whether a triple lies inside the instance universe (user, item, and time
    /// in range). Candidacy is a separate, stricter notion: see [`Instance::prob_of`].
    pub fn in_range(&self, triple: Triple) -> bool {
        triple.user.0 < self.num_users
            && triple.item.0 < self.num_items
            && triple.t.0 >= 1
            && triple.t.0 <= self.horizon
    }

    /// Returns a copy of this instance with every saturation factor forced to 1
    /// (no saturation). Used by the `GlobalNo` ablation baseline.
    pub fn without_saturation(&self) -> Instance {
        let mut copy = self.clone();
        for b in &mut copy.beta {
            *b = 1.0;
        }
        copy.class_beta = beta_profiles(&copy.class_items, &copy.beta);
        copy
    }

    /// Expected revenue of a single isolated triple: `p(i, t) · q(u, i, t)`.
    ///
    /// This ignores competition and saturation and is what the static `TopRE`
    /// baseline ranks by.
    pub fn isolated_revenue(&self, triple: Triple) -> f64 {
        self.price(triple.item, triple.t) * self.prob_of(triple)
    }
}

/// A contiguous range of users together with its CSR-aligned candidate range.
///
/// The candidate pairs of the instance are stored CSR-sorted by user, so a
/// contiguous user range `[user_start, user_end)` owns exactly the contiguous
/// candidate range `[cand_start, cand_end)` — the natural shard boundary of
/// the shard-partitioned planners. Construct through
/// [`Instance::user_shard`] / [`Instance::full_shard`] so the candidate range
/// is always CSR-consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserShard {
    user_start: u32,
    user_end: u32,
    cand_start: u32,
    cand_end: u32,
}

impl UserShard {
    /// First user (inclusive) of the shard.
    #[inline]
    pub fn user_start(&self) -> u32 {
        self.user_start
    }

    /// One past the last user of the shard.
    #[inline]
    pub fn user_end(&self) -> u32 {
        self.user_end
    }

    /// First candidate id (inclusive) of the shard.
    #[inline]
    pub fn cand_start(&self) -> u32 {
        self.cand_start
    }

    /// One past the last candidate id of the shard.
    #[inline]
    pub fn cand_end(&self) -> u32 {
        self.cand_end
    }

    /// Number of users in the shard.
    #[inline]
    pub fn num_users(&self) -> usize {
        (self.user_end - self.user_start) as usize
    }

    /// Number of candidate pairs in the shard.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        (self.cand_end - self.cand_start) as usize
    }

    /// Whether a user belongs to this shard.
    #[inline]
    pub fn contains_user(&self, user: UserId) -> bool {
        (self.user_start..self.user_end).contains(&user.0)
    }

    /// Whether a candidate id belongs to this shard.
    #[inline]
    pub fn contains_cand(&self, cand: CandidateId) -> bool {
        (self.cand_start..self.cand_end).contains(&cand.0)
    }

    /// The candidate ids of the shard.
    #[inline]
    pub fn candidates(&self) -> impl Iterator<Item = CandidateId> {
        (self.cand_start..self.cand_end).map(CandidateId)
    }

    /// The users of the shard.
    #[inline]
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (self.user_start..self.user_end).map(UserId)
    }
}

impl Instance {
    /// Direct assembly of a residual instance from pre-validated parts —
    /// the fast path behind `events::residual_advance`.
    ///
    /// Skips the [`InstanceBuilder`] entirely: every input descends from an
    /// already-validated instance (candidate rows are shifts or
    /// re-discounts of validated rows, prices are shifted copies, classes /
    /// betas are unchanged), so re-validation, per-candidate allocation,
    /// and candidate sorting would be pure overhead. `cand_*` must be
    /// (user, item)-sorted with `cand_prob` holding `horizon` entries per
    /// candidate — exactly the order an in-order walk of a previous
    /// residual's CSR produces.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_residual_parts(
        original: &Instance,
        now: u32,
        horizon: u32,
        capacity: Vec<u32>,
        exempt: ExemptSets,
        cand_user: Vec<UserId>,
        cand_item: Vec<ItemId>,
        cand_prob: Vec<f64>,
        cand_rating: Vec<f64>,
    ) -> Instance {
        debug_assert_eq!(cand_user.len(), cand_item.len());
        debug_assert_eq!(cand_user.len(), cand_rating.len());
        debug_assert_eq!(cand_prob.len(), cand_user.len() * horizon as usize);
        debug_assert!(cand_user.windows(2).all(|w| w[0] <= w[1]));
        let t = horizon as usize;
        let num_items = original.num_items as usize;
        let mut prices = vec![0.0; num_items * t];
        for item in 0..num_items {
            let src = &original.price_series(ItemId(item as u32))[now as usize..];
            prices[item * t..(item + 1) * t].copy_from_slice(src);
        }
        let mut user_cand_start = vec![0u32; original.num_users as usize + 1];
        for user in &cand_user {
            user_cand_start[user.index() + 1] += 1;
        }
        for u in 0..original.num_users as usize {
            user_cand_start[u + 1] += user_cand_start[u];
        }
        Instance {
            num_users: original.num_users,
            num_items: original.num_items,
            num_classes: original.num_classes,
            horizon,
            display_limit: original.display_limit,
            item_class: original.item_class.clone(),
            class_items: original.class_items.clone(),
            class_beta: original.class_beta.clone(),
            capacity,
            exempt: Arc::new(exempt),
            beta: original.beta.clone(),
            prices,
            user_cand_start,
            cand_item,
            cand_user,
            cand_prob,
            cand_rating,
        }
    }

    /// The shard covering every user (what the non-sharded evaluators use).
    pub fn full_shard(&self) -> UserShard {
        self.user_shard(0, self.num_users)
    }

    /// The shard for the user range `[user_start, user_end)`, with the
    /// candidate range derived from the CSR offsets.
    ///
    /// # Panics
    /// Panics when the range is empty-inverted or out of bounds.
    pub fn user_shard(&self, user_start: u32, user_end: u32) -> UserShard {
        assert!(
            user_start <= user_end && user_end <= self.num_users,
            "invalid user shard [{user_start}, {user_end}) for {} users",
            self.num_users
        );
        UserShard {
            user_start,
            user_end,
            cand_start: self.user_cand_start[user_start as usize],
            cand_end: self.user_cand_start[user_end as usize],
        }
    }
}

/// Mutable builder for [`Instance`].
///
/// Defaults: every item is its own class, capacity `|U|` (unconstrained),
/// saturation factor 1 (no saturation), display limit 1. Prices must be set for
/// every item that appears in a candidate pair.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    num_users: u32,
    num_items: u32,
    horizon: u32,
    display_limit: u32,
    item_class: Vec<u32>,
    capacity: Vec<u32>,
    beta: Vec<f64>,
    prices: Vec<Option<Vec<f64>>>,
    candidates: Vec<(u32, u32, Vec<f64>, f64)>,
    exempt: Vec<(u32, u32)>,
}

impl InstanceBuilder {
    /// Starts a builder for `num_users` users, `num_items` items and horizon `T`.
    pub fn new(num_users: u32, num_items: u32, horizon: u32) -> Self {
        InstanceBuilder {
            num_users,
            num_items,
            horizon,
            display_limit: 1,
            item_class: (0..num_items).collect(),
            capacity: vec![num_users.max(1); num_items as usize],
            beta: vec![1.0; num_items as usize],
            prices: vec![None; num_items as usize],
            candidates: Vec::new(),
            exempt: Vec::new(),
        }
    }

    /// Sets the display limit `k`.
    pub fn display_limit(&mut self, k: u32) -> &mut Self {
        self.display_limit = k;
        self
    }

    /// Assigns an item to a class.
    pub fn item_class(&mut self, item: u32, class: u32) -> &mut Self {
        if let Some(slot) = self.item_class.get_mut(item as usize) {
            *slot = class;
        }
        self
    }

    /// Sets the capacity `q_i` of an item.
    pub fn capacity(&mut self, item: u32, q: u32) -> &mut Self {
        if let Some(slot) = self.capacity.get_mut(item as usize) {
            *slot = q;
        }
        self
    }

    /// Marks `(item, user)` exempt from the capacity constraint: displays of
    /// the item to that user consume none of its capacity `q_i`. Used by the
    /// residual construction for prefix pairs whose capacity unit was already
    /// charged (see [`crate::events::ResidualMode::Exempt`]). Duplicates are
    /// deduplicated at build time.
    pub fn exempt_user(&mut self, item: u32, user: u32) -> &mut Self {
        self.exempt.push((item, user));
        self
    }

    /// Marks several users exempt for an item (see
    /// [`InstanceBuilder::exempt_user`]).
    pub fn exempt_users(&mut self, item: u32, users: &[u32]) -> &mut Self {
        for &user in users {
            self.exempt.push((item, user));
        }
        self
    }

    /// Sets the saturation factor `β_i` of an item.
    pub fn beta(&mut self, item: u32, beta: f64) -> &mut Self {
        if let Some(slot) = self.beta.get_mut(item as usize) {
            *slot = beta;
        }
        self
    }

    /// Sets the full price series of an item (length must equal the horizon).
    pub fn prices(&mut self, item: u32, series: &[f64]) -> &mut Self {
        if let Some(slot) = self.prices.get_mut(item as usize) {
            *slot = Some(series.to_vec());
        }
        self
    }

    /// Sets a constant price for an item across the whole horizon.
    pub fn constant_price(&mut self, item: u32, price: f64) -> &mut Self {
        let series = vec![price; self.horizon as usize];
        self.prices(item, &series)
    }

    /// Adds a candidate (user, item) pair with its per-time-step primitive
    /// adoption probabilities and (optionally meaningful) predicted rating.
    pub fn candidate(&mut self, user: u32, item: u32, probs: &[f64], rating: f64) -> &mut Self {
        self.candidates.push((user, item, probs.to_vec(), rating));
        self
    }

    /// Validates and assembles the immutable [`Instance`].
    pub fn build(&self) -> Result<Instance, BuildError> {
        if self.horizon == 0 {
            return Err(BuildError::EmptyHorizon);
        }
        if self.num_users == 0 || self.num_items == 0 {
            return Err(BuildError::EmptyUniverse);
        }
        if self.display_limit == 0 {
            return Err(BuildError::ZeroDisplayLimit);
        }
        let t_len = self.horizon as usize;

        for (item, &b) in self.beta.iter().enumerate() {
            if !(0.0..=1.0).contains(&b) || !b.is_finite() {
                return Err(BuildError::InvalidBeta {
                    item: item as u32,
                    beta: b,
                });
            }
        }

        // Which items actually need a price series (those appearing in candidates).
        let mut item_used = vec![false; self.num_items as usize];
        for &(user, item, ref probs, _) in &self.candidates {
            if user >= self.num_users {
                return Err(BuildError::UserOutOfRange {
                    user,
                    num_users: self.num_users,
                });
            }
            if item >= self.num_items {
                return Err(BuildError::ItemOutOfRange {
                    item,
                    num_items: self.num_items,
                });
            }
            if probs.len() != t_len {
                return Err(BuildError::ProbabilitySeriesLength {
                    user,
                    item,
                    expected: t_len,
                    got: probs.len(),
                });
            }
            for (idx, &p) in probs.iter().enumerate() {
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(BuildError::InvalidProbability {
                        user,
                        item,
                        t: idx as u32 + 1,
                        prob: p,
                    });
                }
            }
            item_used[item as usize] = true;
        }

        let mut prices = vec![0.0; self.num_items as usize * t_len];
        for item in 0..self.num_items as usize {
            match &self.prices[item] {
                Some(series) => {
                    if series.len() != t_len {
                        return Err(BuildError::PriceSeriesLength {
                            item: item as u32,
                            expected: t_len,
                            got: series.len(),
                        });
                    }
                    for (idx, &p) in series.iter().enumerate() {
                        if !p.is_finite() || p < 0.0 {
                            return Err(BuildError::InvalidPrice {
                                item: item as u32,
                                t: idx as u32 + 1,
                                price: p,
                            });
                        }
                        prices[item * t_len + idx] = p;
                    }
                }
                None => {
                    if item_used[item] {
                        return Err(BuildError::MissingPrices { item: item as u32 });
                    }
                }
            }
        }

        // Exempt pairs: validate ranges, then sort + dedup per item.
        let mut exempt_per_item = vec![Vec::new(); self.num_items as usize];
        for &(item, user) in &self.exempt {
            if item >= self.num_items {
                return Err(BuildError::ItemOutOfRange {
                    item,
                    num_items: self.num_items,
                });
            }
            if user >= self.num_users {
                return Err(BuildError::UserOutOfRange {
                    user,
                    num_users: self.num_users,
                });
            }
            exempt_per_item[item as usize].push(UserId(user));
        }
        let mut any_exempt = false;
        for users in &mut exempt_per_item {
            users.sort_unstable();
            users.dedup();
            any_exempt |= !users.is_empty();
        }

        // Sort candidates by (user, item) and detect duplicates.
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by_key(|&idx| (self.candidates[idx].0, self.candidates[idx].1));
        for w in order.windows(2) {
            let a = &self.candidates[w[0]];
            let b = &self.candidates[w[1]];
            if a.0 == b.0 && a.1 == b.1 {
                return Err(BuildError::DuplicateCandidate {
                    user: a.0,
                    item: a.1,
                });
            }
        }

        let n_cand = order.len();
        let mut user_cand_start = vec![0u32; self.num_users as usize + 1];
        let mut cand_item = Vec::with_capacity(n_cand);
        let mut cand_user = Vec::with_capacity(n_cand);
        let mut cand_prob = Vec::with_capacity(n_cand * t_len);
        let mut cand_rating = Vec::with_capacity(n_cand);
        for &idx in &order {
            let (user, item, ref probs, rating) = self.candidates[idx];
            user_cand_start[user as usize + 1] += 1;
            cand_user.push(UserId(user));
            cand_item.push(ItemId(item));
            cand_prob.extend_from_slice(probs);
            cand_rating.push(rating);
        }
        for u in 0..self.num_users as usize {
            user_cand_start[u + 1] += user_cand_start[u];
        }

        // Class bookkeeping: remap raw class labels to a dense 0..num_classes range.
        let mut class_remap = std::collections::BTreeMap::new();
        for &c in &self.item_class {
            let next = class_remap.len() as u32;
            class_remap.entry(c).or_insert(next);
        }
        let num_classes = class_remap.len() as u32;
        let item_class: Vec<ClassId> = self
            .item_class
            .iter()
            .map(|c| ClassId(class_remap[c]))
            .collect();
        let mut class_items = vec![Vec::new(); num_classes as usize];
        for (item, class) in item_class.iter().enumerate() {
            class_items[class.index()].push(ItemId(item as u32));
        }
        let class_beta = beta_profiles(&class_items, &self.beta);

        Ok(Instance {
            num_users: self.num_users,
            num_items: self.num_items,
            num_classes,
            horizon: self.horizon,
            display_limit: self.display_limit,
            item_class,
            class_items,
            class_beta,
            capacity: self.capacity.clone(),
            exempt: Arc::new(ExemptSets {
                per_item: exempt_per_item,
                any: any_exempt,
            }),
            beta: self.beta.clone(),
            prices,
            user_cand_start,
            cand_item,
            cand_user,
            cand_prob,
            cand_rating,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder() -> InstanceBuilder {
        let mut b = InstanceBuilder::new(2, 3, 2);
        b.display_limit(1)
            .item_class(0, 10)
            .item_class(1, 10)
            .item_class(2, 20)
            .capacity(0, 1)
            .beta(0, 0.5)
            .prices(0, &[10.0, 8.0])
            .prices(1, &[5.0, 5.0])
            .prices(2, &[3.0, 4.0])
            .candidate(0, 0, &[0.5, 0.6], 4.5)
            .candidate(0, 1, &[0.2, 0.1], 3.0)
            .candidate(1, 2, &[0.9, 0.0], 5.0);
        b
    }

    #[test]
    fn build_and_query_roundtrip() {
        let inst = small_builder().build().unwrap();
        assert_eq!(inst.num_users(), 2);
        assert_eq!(inst.num_items(), 3);
        assert_eq!(inst.horizon(), 2);
        assert_eq!(inst.display_limit(), 1);
        assert_eq!(inst.num_classes(), 2);
        assert_eq!(inst.class_of(ItemId(0)), inst.class_of(ItemId(1)));
        assert_ne!(inst.class_of(ItemId(0)), inst.class_of(ItemId(2)));
        assert_eq!(inst.capacity(ItemId(0)), 1);
        assert_eq!(inst.capacity(ItemId(1)), 2); // default = num_users
        assert!((inst.beta(ItemId(0)) - 0.5).abs() < 1e-12);
        assert!((inst.price(ItemId(0), TimeStep(2)) - 8.0).abs() < 1e-12);
        assert_eq!(inst.price_series(ItemId(2)), &[3.0, 4.0]);
        assert_eq!(inst.num_candidates(), 3);
        assert_eq!(inst.num_candidate_triples(), 5); // one prob is exactly 0
        assert_eq!(inst.total_slots(), 2 * 2);
    }

    #[test]
    fn candidate_lookup() {
        let inst = small_builder().build().unwrap();
        let c = inst.candidate_for(UserId(0), ItemId(1)).unwrap();
        assert_eq!(inst.candidate_user(c), UserId(0));
        assert_eq!(inst.candidate_item(c), ItemId(1));
        assert_eq!(inst.candidate_probs(c), &[0.2, 0.1]);
        assert!((inst.candidate_rating(c) - 3.0).abs() < 1e-12);
        assert!(inst.candidate_for(UserId(1), ItemId(0)).is_none());
        assert!((inst.prob_of(Triple::new(0, 0, 2)) - 0.6).abs() < 1e-12);
        assert_eq!(inst.prob_of(Triple::new(1, 0, 1)), 0.0);
    }

    #[test]
    fn candidates_of_user_ranges() {
        let inst = small_builder().build().unwrap();
        let u0: Vec<_> = inst.candidates_of_user(UserId(0)).collect();
        let u1: Vec<_> = inst.candidates_of_user(UserId(1)).collect();
        assert_eq!(u0.len(), 2);
        assert_eq!(u1.len(), 1);
        assert_eq!(inst.candidates().count(), 3);
    }

    #[test]
    fn isolated_revenue_is_price_times_prob() {
        let inst = small_builder().build().unwrap();
        let r = inst.isolated_revenue(Triple::new(0, 0, 1));
        assert!((r - 10.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn without_saturation_sets_all_betas_to_one() {
        let inst = small_builder().build().unwrap();
        let no_sat = inst.without_saturation();
        for i in 0..inst.num_items() {
            assert_eq!(no_sat.beta(ItemId(i)), 1.0);
        }
        // Original untouched.
        assert!((inst.beta(ItemId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_range_checks_bounds() {
        let inst = small_builder().build().unwrap();
        assert!(inst.in_range(Triple::new(1, 2, 2)));
        assert!(!inst.in_range(Triple::new(2, 0, 1)));
        assert!(!inst.in_range(Triple::new(0, 3, 1)));
        assert!(!inst.in_range(Triple::new(0, 0, 0)));
        assert!(!inst.in_range(Triple::new(0, 0, 3)));
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert_eq!(
            InstanceBuilder::new(1, 1, 0).build().unwrap_err(),
            BuildError::EmptyHorizon
        );
        assert_eq!(
            InstanceBuilder::new(0, 1, 1).build().unwrap_err(),
            BuildError::EmptyUniverse
        );
        let mut b = InstanceBuilder::new(1, 1, 1);
        b.display_limit(0);
        assert_eq!(b.build().unwrap_err(), BuildError::ZeroDisplayLimit);

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.beta(0, 1.5);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::InvalidBeta { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.constant_price(0, 1.0).candidate(0, 0, &[1.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::InvalidProbability { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.candidate(0, 0, &[0.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::MissingPrices { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 2);
        b.prices(0, &[1.0]).candidate(0, 0, &[0.5, 0.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::PriceSeriesLength { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 2);
        b.constant_price(0, 1.0).candidate(0, 0, &[0.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::ProbabilitySeriesLength { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.constant_price(0, 1.0)
            .candidate(0, 0, &[0.5], 0.0)
            .candidate(0, 0, &[0.6], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::DuplicateCandidate { .. }
        ));

        let mut b = InstanceBuilder::new(1, 2, 1);
        b.constant_price(0, 1.0).candidate(0, 1, &[0.5], 0.0);
        // item 1 has candidates but no prices
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::MissingPrices { item: 1 }
        ));

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.candidate(0, 5, &[0.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::ItemOutOfRange { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.candidate(7, 0, &[0.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UserOutOfRange { .. }
        ));

        let mut b = InstanceBuilder::new(1, 1, 1);
        b.prices(0, &[f64::NAN]).candidate(0, 0, &[0.5], 0.0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::InvalidPrice { .. }
        ));
    }

    #[test]
    fn exempt_users_are_deduped_and_queryable() {
        let inst = small_builder().build().unwrap();
        assert!(!inst.has_exemptions());
        assert!(!inst.is_exempt(ItemId(0), UserId(0)));
        assert!(inst.exempt_users(ItemId(0)).is_empty());

        let mut b = small_builder();
        b.exempt_user(0, 1)
            .exempt_users(0, &[1, 0])
            .exempt_user(2, 1);
        let inst = b.build().unwrap();
        assert!(inst.has_exemptions());
        assert_eq!(inst.exempt_users(ItemId(0)), &[UserId(0), UserId(1)]);
        assert!(inst.is_exempt(ItemId(0), UserId(1)));
        assert!(inst.is_exempt(ItemId(2), UserId(1)));
        assert!(!inst.is_exempt(ItemId(1), UserId(0)));
        assert!(!inst.is_exempt(ItemId(2), UserId(0)));

        let mut b = small_builder();
        b.exempt_user(9, 0);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::ItemOutOfRange { item: 9, .. }
        ));
        let mut b = small_builder();
        b.exempt_user(0, 9);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UserOutOfRange { user: 9, .. }
        ));
    }

    #[test]
    fn beta_profiles_detect_uniform_and_mixed_classes() {
        // small_builder: items 0, 1 share class 10 with betas 0.5 / 1.0
        // (default) → Mixed; item 2 is alone in class 20 → trivially Uniform.
        let inst = small_builder().build().unwrap();
        let c01 = inst.class_of(ItemId(0));
        let c2 = inst.class_of(ItemId(2));
        assert_eq!(inst.beta_profile(c01), BetaProfile::Mixed);
        assert_eq!(inst.beta_profile(c2), BetaProfile::Uniform(1.0));
        assert!(!inst.all_beta_uniform());

        // Aligning the betas makes the two-item class uniform.
        let mut b = small_builder();
        b.beta(1, 0.5);
        let inst = b.build().unwrap();
        assert_eq!(inst.beta_profile(c01), BetaProfile::Uniform(0.5));
        assert!(inst.all_beta_uniform());

        // β ∈ {0, 1} extremes are ordinary uniform values.
        let mut b = small_builder();
        b.beta(0, 0.0).beta(1, 0.0).beta(2, 1.0);
        let inst = b.build().unwrap();
        assert_eq!(inst.beta_profile(c01), BetaProfile::Uniform(0.0));
        assert_eq!(inst.beta_profile(c2), BetaProfile::Uniform(1.0));
    }

    #[test]
    fn without_saturation_resets_beta_profiles() {
        let inst = small_builder().build().unwrap();
        assert!(!inst.all_beta_uniform());
        let no_sat = inst.without_saturation();
        assert!(no_sat.all_beta_uniform());
        for profile in no_sat.beta_profiles() {
            assert_eq!(*profile, BetaProfile::Uniform(1.0));
        }
    }

    #[test]
    fn class_labels_are_densified() {
        let mut b = InstanceBuilder::new(1, 3, 1);
        b.item_class(0, 100).item_class(1, 7).item_class(2, 100);
        let inst = b.build().unwrap();
        assert_eq!(inst.num_classes(), 2);
        assert_eq!(inst.class_of(ItemId(0)), inst.class_of(ItemId(2)));
        let class = inst.class_of(ItemId(0));
        assert_eq!(inst.items_in_class(class), &[ItemId(0), ItemId(2)]);
    }
}
