//! A minimal, dependency-free JSON reader/writer.
//!
//! Extracted from the hand-rolled [`crate::Strategy`] codec when the wire
//! protocol (`revmax-http`) arrived: every serialised surface in the
//! workspace — strategies, instances, adoption events, bench emitters —
//! shares this one parser instead of growing ad-hoc string scanners.
//!
//! The reader is a strict recursive-descent parser over the input bytes
//! with two hard safety properties (they are fuzzed with 10k+ seeded byte
//! mutations per release, see `revmax-http`'s fuzz suite):
//!
//! * **no panics** — every malformed input returns a structured
//!   [`JsonError`] with a byte offset;
//! * **no over-reads** — the parser only ever indexes through the borrowed
//!   input slice, and nesting is capped at [`MAX_DEPTH`] so deeply nested
//!   input cannot exhaust the stack.
//!
//! Numbers are IEEE `f64` (the only number type the wire needs); the writer
//! uses Rust's shortest round-trip formatting, so `f64 → text → f64` is
//! bit-exact — the property the 1e-9 protocol-parity suites lean on.

use std::fmt;

/// Maximum nesting depth the reader accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Objects preserve key order as a vector of pairs — the wire structs never
/// need hashed lookup, and ordered output keeps golden tests byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite — the parser rejects overflow).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u32`, if it is a non-negative integer number in range.
    pub fn as_u32(&self) -> Option<u32> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
            Some(n as u32)
        } else {
            None
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number that
    /// `f64` represents exactly (≤ 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A structured parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the parser gave up.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `lit` if it is next; the caller has already matched its
    /// first byte.
    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    // Copy the trailing raw segment; `bytes` is valid UTF-8
                    // (the input is `&str`) and segment bounds sit on quote /
                    // backslash bytes, never inside a multi-byte character.
                    out.push_str(self.raw_segment(start));
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_segment(start));
                    self.pos += 1;
                    out.push(self.escape()?);
                    return self.string_rest(out);
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Continues a string after the first escape (avoids recursing once per
    /// escaped character).
    fn string_rest(&mut self, mut out: String) -> Result<String, JsonError> {
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.raw_segment(start));
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_segment(start));
                    self.pos += 1;
                    out.push(self.escape()?);
                    start = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn raw_segment(&self, start: usize) -> &'a str {
        // Safety of the unwrap-free conversion: `start..pos` begins and ends
        // at ASCII bytes the scanner stopped on, so it is valid UTF-8.
        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("")
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => Ok('"'),
            b'\\' => Ok('\\'),
            b'/' => Ok('/'),
            b'b' => Ok('\u{0008}'),
            b'f' => Ok('\u{000C}'),
            b'n' => Ok('\n'),
            b'r' => Ok('\r'),
            b't' => Ok('\t'),
            b'u' => self.unicode_escape(),
            _ => Err(self.err("unknown escape character")),
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 1;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u code point"))
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self.raw_segment(start);
        let n: f64 = text
            .parse()
            .map_err(|_| self.err("number does not parse as f64"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(JsonValue::Number(n))
    }
}

/// Appends a JSON string literal (quotes + escapes) for `s` to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends the shortest round-trip decimal form of `v` to `out`
/// (non-finite values, which valid wire data never contains, become `null`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl fmt::Display for JsonValue {
    /// Writes the value as compact JSON (no whitespace). The output parses
    /// back to an equal value; numbers round-trip bit-exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                let mut s = String::new();
                write_f64(&mut s, *n);
                f.write_str(&s)
            }
            JsonValue::String(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Convenience: an object value from key/value pairs.
pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: an array of numbers.
pub fn number_array(values: impl IntoIterator<Item = f64>) -> JsonValue {
    JsonValue::Array(values.into_iter().map(JsonValue::Number).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: f64) -> JsonValue {
        JsonValue::Number(v)
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("0").unwrap(), n(0.0));
        assert_eq!(parse("-12.5e2").unwrap(), n(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::String("hi".into()));
        assert_eq!(parse("  42  ").unwrap(), n(42.0));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_u32(), Some(1));
        assert!(a[2].get("b").unwrap().is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let cases = [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand tab\t",
            "unicode: é λ 漢 🦀",
            "control:\u{0001}\u{001f}",
        ];
        for case in cases {
            let mut enc = String::new();
            write_escaped(&mut enc, case);
            assert_eq!(
                parse(&enc).unwrap(),
                JsonValue::String(case.to_string()),
                "round-trip failed for {case:?}"
            );
        }
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            JsonValue::String("Aé😀".into())
        );
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0,
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            123_456_789.123_456_78,
            -2.2250738585072014e-308,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "round-trip failed for {v}");
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "  ",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "{a:1}",
            "nul",
            "truex",
            "01",
            "+1",
            "1.",
            ".5",
            "-",
            "1e",
            "1e+",
            "NaN",
            "Infinity",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "[1] trailing",
            "1e999",
            "\u{0007}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&too_deep).unwrap_err();
        assert!(err.message.contains("MAX_DEPTH"));
    }

    #[test]
    fn integer_accessors_check_range_and_fraction() {
        assert_eq!(n(7.0).as_u32(), Some(7));
        assert_eq!(n(7.5).as_u32(), None);
        assert_eq!(n(-1.0).as_u32(), None);
        assert_eq!(n(4294967295.0).as_u32(), Some(u32::MAX));
        assert_eq!(n(4294967296.0).as_u32(), None);
        assert_eq!(n(4294967296.0).as_u64(), Some(4294967296));
        assert_eq!(n(1e300).as_u64(), None);
        assert_eq!(JsonValue::Null.as_u32(), None);
    }

    #[test]
    fn display_writes_compact_json() {
        let v = object(vec![
            ("plan", n(1.0)),
            ("ok", JsonValue::Bool(true)),
            (
                "tags",
                JsonValue::Array(vec![JsonValue::String("a\"b".into())]),
            ),
            ("none", JsonValue::Null),
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"{"plan":1,"ok":true,"tags":["a\"b"],"none":null}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn object_lookup_finds_first_match() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_u32), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("k"), None);
    }
}
