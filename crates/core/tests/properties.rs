//! Seeded randomized property tests of the revenue model invariants: Lemma 1
//! (dynamic adoption probabilities are non-increasing in the strategy),
//! consistency between the from-scratch evaluator and BOTH incremental
//! engines (the flat-arena default and the hash-based reference), batch /
//! per-slot bit-identity, and basic sanity of the effective (R-REVMAX)
//! objective. (See `prospective_probability_is_non_increasing` for why the
//! paper's Theorem-2 submodularity claim is not asserted verbatim.)
//!
//! The generators are driven by an explicit seeded RNG, so every failure is
//! reproducible from the case index printed in the assertion message.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use revmax_core::{
    dynamic_probability_of, effective_revenue, marginal_revenue, revenue, CandidateId,
    ExactPoissonBinomial, HashIncrementalRevenue, IncrementalRevenue, Instance, InstanceBuilder,
    RevenueEngine, Strategy, TimeStep, Triple,
};

/// Draws a random small instance: 2–5 users, 2–6 items, horizon 1–5,
/// display limit 1–2, random classes, betas (including the β ∈ {0, 1} edge
/// cases), capacities, prices, and sparse probabilities.
fn random_instance(rng: &mut StdRng) -> Instance {
    let num_users = rng.gen_range(2u32..=5);
    let num_items = rng.gen_range(2u32..=6);
    let horizon = rng.gen_range(1u32..=5);
    let display_limit = rng.gen_range(1u32..=2);
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(display_limit);
    for item in 0..num_items {
        b.item_class(item, rng.gen_range(0u32..3));
        // Mix smooth betas with the exact 0 and 1 edge cases.
        let beta = match rng.gen_range(0u32..8) {
            0 => 0.0,
            1 => 1.0,
            _ => rng.gen_range(0.0..=1.0),
        };
        b.beta(item, beta);
        b.capacity(item, rng.gen_range(1u32..=3));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.5..50.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            // ~25% of pairs are non-candidates; candidate pairs may still have
            // zero-probability time steps.
            if rng.gen_bool(0.25) {
                continue;
            }
            let probs: Vec<f64> = (0..horizon)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        0.0
                    } else {
                        rng.gen_range(0.0..=1.0)
                    }
                })
                .collect();
            if probs.iter().any(|&p| p > 0.0) {
                b.candidate(user, item, &probs, 0.0);
            }
        }
    }
    b.build().expect("random instance must build")
}

/// All candidate triples of an instance, shuffled.
fn shuffled_candidate_triples(inst: &Instance, rng: &mut StdRng) -> Vec<Triple> {
    let mut out = Vec::new();
    for cand in inst.candidates() {
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        for t in inst.time_steps() {
            if inst.candidate_prob(cand, t) > 0.0 {
                out.push(Triple { user, item, t });
            }
        }
    }
    out.shuffle(rng);
    out
}

/// The tentpole acceptance property: across ≥100 random instances, the
/// flat-arena engine agrees with the from-scratch `revenue()` /
/// `marginal_revenue()` evaluator to 1e-9 at every step of a random insertion
/// sequence — and so does the hash-based reference engine.
#[test]
fn incremental_engines_match_scratch_on_100_random_instances() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..120 {
        let inst = random_instance(&mut rng);
        let mut triples = shuffled_candidate_triples(&inst, &mut rng);
        triples.truncate(14);
        let mut flat = IncrementalRevenue::new(&inst);
        let mut hash = HashIncrementalRevenue::new(&inst);
        let mut s = Strategy::new();
        for z in triples {
            let scratch = marginal_revenue(&inst, &s, z);
            let flat_m = flat.marginal_revenue(z);
            let hash_m = hash.marginal_revenue(z);
            assert!(
                (scratch - flat_m).abs() < 1e-9,
                "case {case}: flat marginal {flat_m} vs scratch {scratch} for {z}"
            );
            assert!(
                (scratch - hash_m).abs() < 1e-9,
                "case {case}: hash marginal {hash_m} vs scratch {scratch} for {z}"
            );
            let realised_flat = flat.insert(z);
            let realised_hash = hash.insert(z);
            assert!(
                (realised_flat - scratch).abs() < 1e-9,
                "case {case}: insert {z}"
            );
            assert!(
                (realised_hash - scratch).abs() < 1e-9,
                "case {case}: insert {z}"
            );
            s.insert(z);
            let total = revenue(&inst, &s);
            assert!(
                (flat.revenue() - total).abs() < 1e-9,
                "case {case}: flat total {} vs scratch {total}",
                flat.revenue()
            );
            assert!(
                (hash.revenue() - total).abs() < 1e-9,
                "case {case}: hash total {} vs scratch {total}",
                hash.revenue()
            );
        }
    }
}

/// The candidate-addressed fast path must agree with the triple-addressed
/// compatibility API on every (candidate, time) slot.
#[test]
fn candidate_addressed_api_matches_triple_api() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..40 {
        let inst = random_instance(&mut rng);
        let mut inc = IncrementalRevenue::new(&inst);
        let picks = shuffled_candidate_triples(&inst, &mut rng);
        for (step, &z) in picks.iter().enumerate().take(10) {
            for cand in inst.candidates() {
                let user = inst.candidate_user(cand);
                let item = inst.candidate_item(cand);
                for t in inst.time_steps() {
                    let triple = Triple { user, item, t };
                    let by_cand = inc.marginal_revenue_cand(cand, t);
                    let by_triple = inc.marginal_revenue(triple);
                    assert!(
                        (by_cand - by_triple).abs() < 1e-12,
                        "case {case} step {step}: cand API {by_cand} vs triple API {by_triple}"
                    );
                    assert_eq!(
                        RevenueEngine::would_violate_cand(&inc, cand, t),
                        inc.would_violate(triple),
                        "case {case} step {step}: constraint mismatch at {triple}"
                    );
                }
            }
            if !inc.would_violate(z) {
                let cand = inst
                    .candidate_for(z.user, z.item)
                    .expect("candidate triple");
                inc.insert_cand(cand, z.t);
            }
        }
    }
}

/// The fused batch evaluation must be bit-identical to the per-slot path on
/// every (candidate, live-mask) combination.
#[test]
fn batch_marginals_are_bit_identical_to_per_slot() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for case in 0..40 {
        let inst = random_instance(&mut rng);
        let horizon = inst.horizon() as usize;
        let mut inc = IncrementalRevenue::new(&inst);
        for (step, z) in shuffled_candidate_triples(&inst, &mut rng)
            .into_iter()
            .take(8)
            .enumerate()
        {
            for cand in inst.candidates() {
                let full_mask = (1u64 << horizon) - 1;
                let mask = full_mask & rng.gen_range(1u64..=full_mask);
                let mut batch = vec![f64::NAN; horizon];
                inc.marginal_revenue_batch(cand, mask, &mut batch);
                for (t_idx, &b) in batch.iter().enumerate() {
                    if mask & (1 << t_idx) == 0 {
                        continue;
                    }
                    let scalar = inc.marginal_revenue_cand(cand, TimeStep::from_index(t_idx));
                    assert_eq!(
                        scalar.to_bits(),
                        b.to_bits(),
                        "case {case} step {step}: batch diverged at cand {cand:?} t {t_idx}: \
                         {scalar} vs {b}"
                    );
                }
            }
            inc.insert(z);
        }
    }
}

/// Lemma 1: the dynamic adoption probability of a fixed triple never increases
/// when the strategy grows.
#[test]
fn dynamic_probability_is_non_increasing() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..60 {
        let inst = random_instance(&mut rng);
        let triples = shuffled_candidate_triples(&inst, &mut rng);
        let Some((&tracked, rest)) = triples.split_first() else {
            continue;
        };
        let mut s = Strategy::new();
        s.insert(tracked);
        let mut prev = dynamic_probability_of(&inst, &s, tracked);
        for &z in rest.iter().take(10) {
            s.insert(z);
            let cur = dynamic_probability_of(&inst, &s, tracked);
            assert!(
                cur <= prev + 1e-12,
                "case {case}: probability increased from {prev} to {cur} after adding {z}"
            );
            prev = cur;
        }
    }
}

/// The prospective adoption probability `q_{S∪{z}}(z)` of a fixed triple is
/// non-increasing as the strategy grows (the Lemma-1 mechanism applied to the
/// incremental engine's fast path).
///
/// Note: the *exact* marginal `Rev(S∪{z}) − Rev(S)` computed by this repo is
/// NOT submodular in general — the loss terms shrink in magnitude as the
/// strategy grows (existing entries are already discounted), which can make
/// the marginal w.r.t. a superset larger. Empirically ~13% of random
/// (instance, chain, z) cases violate the Theorem-2 inequality, for smooth
/// betas and display limit 1 alike. The greedy algorithms therefore treat
/// lazy-forward as a heuristic; the lazy == eager end-result equivalence is
/// asserted separately in `crates/algorithms`.
#[test]
fn prospective_probability_is_non_increasing() {
    let mut rng = StdRng::seed_from_u64(0xAB1E);
    for case in 0..60 {
        let inst = random_instance(&mut rng);
        let triples = shuffled_candidate_triples(&inst, &mut rng);
        if triples.len() < 2 {
            continue;
        }
        let z = *triples.last().unwrap();
        let mut inc = IncrementalRevenue::new(&inst);
        let mut prev = inc.prospective_probability(z);
        for &w in triples[..triples.len() - 1].iter().take(10) {
            inc.insert(w);
            let cur = inc.prospective_probability(z);
            assert!(
                cur <= prev + 1e-12,
                "case {case}: prospective probability rose from {prev} to {cur} after {w}"
            );
            prev = cur;
        }
    }
}

/// Revenue is always non-negative and zero for the empty strategy.
#[test]
fn revenue_is_nonnegative() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..40 {
        let inst = random_instance(&mut rng);
        assert_eq!(revenue(&inst, &Strategy::new()), 0.0);
        let s: Strategy = shuffled_candidate_triples(&inst, &mut rng)
            .into_iter()
            .take(15)
            .collect();
        assert!(revenue(&inst, &s) >= 0.0);
    }
}

/// The R-REVMAX objective (capacity pushed into the probabilities) never
/// exceeds the unconstrained revenue and is itself non-negative.
#[test]
fn effective_revenue_bounded_by_plain() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for case in 0..40 {
        let inst = random_instance(&mut rng);
        let s: Strategy = shuffled_candidate_triples(&inst, &mut rng)
            .into_iter()
            .take(15)
            .collect();
        let oracle = ExactPoissonBinomial;
        let eff = effective_revenue(&inst, &s, &oracle);
        let plain = revenue(&inst, &s);
        assert!(
            eff >= -1e-12,
            "case {case}: negative effective revenue {eff}"
        );
        assert!(
            eff <= plain + 1e-9,
            "case {case}: effective {eff} exceeds plain {plain}"
        );
    }
}

/// Per-triple dynamic probabilities always stay within [0, q(u,i,t)].
#[test]
fn dynamic_probabilities_bounded_by_primitive() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for case in 0..40 {
        let inst = random_instance(&mut rng);
        let s: Strategy = shuffled_candidate_triples(&inst, &mut rng)
            .into_iter()
            .take(15)
            .collect();
        for (z, q) in revmax_core::dynamic_probabilities(&inst, &s) {
            let prim = inst.prob_of(z);
            assert!(
                q >= -1e-12 && q <= prim + 1e-12,
                "case {case}: dynamic probability {q} outside [0, {prim}] for {z}"
            );
        }
    }
}

/// The engines agree with scratch even when non-candidate (zero-probability)
/// triples are mixed into the strategy: their presence still saturates later
/// same-class selections.
#[test]
fn noncandidate_triples_keep_engines_consistent() {
    let mut rng = StdRng::seed_from_u64(0x0DD);
    for case in 0..40 {
        let inst = random_instance(&mut rng);
        let mut picks = shuffled_candidate_triples(&inst, &mut rng);
        // Mix in in-range non-candidate triples.
        for _ in 0..4 {
            let user = rng.gen_range(0..inst.num_users());
            let item = rng.gen_range(0..inst.num_items());
            let t = rng.gen_range(1..=inst.horizon());
            picks.push(Triple::new(user, item, t));
        }
        picks.shuffle(&mut rng);
        picks.truncate(12);
        let mut flat = IncrementalRevenue::new(&inst);
        let mut hash = HashIncrementalRevenue::new(&inst);
        let mut s = Strategy::new();
        for z in picks {
            let scratch = marginal_revenue(&inst, &s, z);
            let flat_m = flat.marginal_revenue(z);
            assert!(
                (scratch - flat_m).abs() < 1e-9,
                "case {case}: marginal {flat_m} vs scratch {scratch} for {z}"
            );
            flat.insert(z);
            hash.insert(z);
            s.insert(z);
            let total = revenue(&inst, &s);
            assert!(
                (flat.revenue() - total).abs() < 1e-9,
                "case {case}: total {} vs scratch {total} after {z}",
                flat.revenue()
            );
            // Inserted triples — candidate or not — must stay queryable, and
            // both engines must report them identically.
            let fp = flat.dynamic_probability(z);
            let hp = hash.dynamic_probability(z);
            assert_eq!(
                fp.is_some(),
                hp.is_some(),
                "case {case}: dynamic_probability presence diverged for {z}"
            );
            if let (Some(fp), Some(hp)) = (fp, hp) {
                assert!((fp - hp).abs() < 1e-9, "case {case}: {fp} vs {hp} for {z}");
            }
            let class = inst.class_of(z.item);
            assert_eq!(
                flat.group_size(z.user, class),
                hash.group_size(z.user, class),
                "case {case}: group size diverged for {z}"
            );
        }
    }
}

/// Group sizes reported by both engines agree on every candidate.
#[test]
fn group_sizes_agree_between_engines() {
    let mut rng = StdRng::seed_from_u64(0x9999);
    for _ in 0..25 {
        let inst = random_instance(&mut rng);
        let mut flat = IncrementalRevenue::new(&inst);
        let mut hash = HashIncrementalRevenue::new(&inst);
        for z in shuffled_candidate_triples(&inst, &mut rng)
            .into_iter()
            .take(10)
        {
            flat.insert(z);
            hash.insert(z);
            for c in 0..inst.num_candidates() {
                let cand = CandidateId(c as u32);
                assert_eq!(
                    RevenueEngine::group_size_cand(&flat, cand),
                    RevenueEngine::group_size_cand(&hash, cand),
                );
            }
        }
    }
}

/// A flat shard view must behave exactly like a full engine restricted to
/// the shard's users: bit-identical marginals and realised inserts, matching
/// display tracking, and the shard revenues must sum to the full revenue.
#[test]
fn shard_views_match_full_engine_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0x51AD);
    for case in 0..40 {
        let inst = random_instance(&mut rng);
        let mid = inst.num_users() / 2;
        let shards = [
            inst.user_shard(0, mid),
            inst.user_shard(mid, inst.num_users()),
        ];
        let mut full = IncrementalRevenue::new(&inst);
        let mut views: Vec<IncrementalRevenue<'_>> = shards
            .iter()
            .map(|&s| RevenueEngine::for_shard(&inst, false, s))
            .collect();
        let picks = shuffled_candidate_triples(&inst, &mut rng);
        for z in picks.into_iter().take(12) {
            let cand = inst.candidate_for(z.user, z.item).expect("candidate");
            let view = views
                .iter_mut()
                .find(|v| v.shard().contains_user(z.user))
                .expect("user covered by a shard");
            let m_full = full.marginal_revenue_cand(cand, z.t);
            let m_view = view.marginal_revenue_cand(cand, z.t);
            assert_eq!(
                m_full.to_bits(),
                m_view.to_bits(),
                "case {case}: shard marginal {m_view} vs full {m_full} for {z}"
            );
            assert_eq!(
                RevenueEngine::would_violate_display_cand(&full, cand, z.t),
                RevenueEngine::would_violate_display_cand(&*view, cand, z.t),
                "case {case}: display tracking diverged for {z}"
            );
            assert_eq!(
                RevenueEngine::group_size_cand(&full, cand),
                RevenueEngine::group_size_cand(&*view, cand),
                "case {case}: group size diverged for {z}"
            );
            let r_full = full.insert_cand(cand, z.t);
            let r_view = view.insert_cand(cand, z.t);
            assert_eq!(
                r_full.to_bits(),
                r_view.to_bits(),
                "case {case}: insert {z}"
            );
        }
        let sum: f64 = views.iter().map(|v| v.revenue()).sum();
        assert!(
            (sum - full.revenue()).abs() < 1e-9,
            "case {case}: shard revenues {sum} vs full {}",
            full.revenue()
        );
        let merged: usize = views.iter().map(|v| v.len()).sum();
        assert_eq!(merged, full.len(), "case {case}");
    }
}

/// The shared atomic ledger and the sequential ledger grant identical claim
/// sequences.
#[test]
fn shared_and_sequential_ledgers_agree() {
    let mut rng = StdRng::seed_from_u64(0x1ED6);
    for _ in 0..20 {
        let inst = random_instance(&mut rng);
        let mut seq = revmax_core::CapacityLedger::new(&inst);
        let shared = revmax_core::SharedCapacityLedger::new(&inst);
        for _ in 0..40 {
            let item = revmax_core::ItemId(rng.gen_range(0..inst.num_items()));
            assert_eq!(seq.is_full(item), shared.is_full(item));
            assert_eq!(seq.claim(item), shared.try_claim(item));
            assert_eq!(seq.used(item), shared.used(item));
        }
    }
}

/// Sanity for the TimeStep helper used throughout the engines.
#[test]
fn timestep_index_round_trip() {
    for idx in 0..10 {
        assert_eq!(TimeStep::from_index(idx).index(), idx);
    }
}

/// Like [`random_instance`], but betas are drawn **per class** so every class
/// is `BetaProfile::Uniform` and the flat engine's saturation-aggregate fast
/// path covers every group. Class betas include the exact 0 and 1 edge cases.
fn random_uniform_beta_instance(rng: &mut StdRng) -> Instance {
    let num_users = rng.gen_range(2u32..=5);
    let num_items = rng.gen_range(2u32..=6);
    let horizon = rng.gen_range(1u32..=5);
    let display_limit = rng.gen_range(1u32..=3);
    let class_betas: Vec<f64> = (0..3)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => 0.0,
            1 => 1.0,
            _ => rng.gen_range(0.0..=1.0),
        })
        .collect();
    let mut b = InstanceBuilder::new(num_users, num_items, horizon);
    b.display_limit(display_limit);
    for item in 0..num_items {
        let class = rng.gen_range(0u32..3);
        b.item_class(item, class);
        b.beta(item, class_betas[class as usize]);
        b.capacity(item, rng.gen_range(1u32..=3));
        let prices: Vec<f64> = (0..horizon).map(|_| rng.gen_range(0.5..50.0)).collect();
        b.prices(item, &prices);
    }
    for user in 0..num_users {
        for item in 0..num_items {
            if rng.gen_bool(0.2) {
                continue;
            }
            let probs: Vec<f64> = (0..horizon)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        0.0
                    } else {
                        rng.gen_range(0.0..=1.0)
                    }
                })
                .collect();
            if probs.iter().any(|&p| p > 0.0) {
                b.candidate(user, item, &probs, 0.0);
            }
        }
    }
    b.build().expect("uniform-beta instance must build")
}

/// The saturation-aggregate fast path (engaged on every group of a uniform-β
/// instance) agrees with the slab walk and the from-scratch evaluator to
/// 1e-9, across random insertion sequences that include non-candidate
/// triples, deeper groups (display limit up to 3), and β ∈ {0, 1} classes.
#[test]
fn aggregate_fast_path_matches_walk_on_uniform_beta_instances() {
    let mut rng = StdRng::seed_from_u64(0xA66);
    for case in 0..120 {
        let inst = random_uniform_beta_instance(&mut rng);
        assert!(inst.all_beta_uniform(), "case {case}: generator broken");
        let mut triples = shuffled_candidate_triples(&inst, &mut rng);
        triples.truncate(16);
        // A couple of non-candidate triples exercise the cold-path aggregate
        // bookkeeping (memory + saturation without gain).
        for _ in 0..2 {
            let z = Triple::new(
                rng.gen_range(0..inst.num_users()),
                rng.gen_range(0..inst.num_items()),
                rng.gen_range(1..=inst.horizon()),
            );
            if inst.prob_of(z) == 0.0 {
                triples.push(z);
            }
        }
        // Explicit opt-in: these instances are small enough that the default
        // depth-gated `Auto` mode would compile some groups to walk kernels.
        let mut agg = IncrementalRevenue::new(&inst);
        agg.set_aggregates(true);
        let mut walk = IncrementalRevenue::new(&inst);
        walk.set_aggregates(false);
        assert!(
            agg.aggregates_active(),
            "case {case}: fast path must engage"
        );
        assert!(!walk.aggregates_active());
        let mut s = Strategy::new();
        for z in triples {
            let scratch = marginal_revenue(&inst, &s, z);
            let m_agg = agg.marginal_revenue(z);
            let m_walk = walk.marginal_revenue(z);
            assert!(
                (m_agg - m_walk).abs() < 1e-9,
                "case {case}: aggregate {m_agg} vs walk {m_walk} for {z}"
            );
            assert!(
                (m_agg - scratch).abs() < 1e-9,
                "case {case}: aggregate {m_agg} vs scratch {scratch} for {z}"
            );
            agg.insert(z);
            walk.insert(z);
            s.insert(z);
            assert!(
                (agg.revenue() - revenue(&inst, &s)).abs() < 1e-9,
                "case {case}: total after {z}"
            );
        }
    }
}

/// Batch and per-slot evaluation stay bit-identical on the aggregate path.
#[test]
fn aggregate_batch_is_bit_identical_to_scalar() {
    let mut rng = StdRng::seed_from_u64(0xA66B);
    for case in 0..40 {
        let inst = random_uniform_beta_instance(&mut rng);
        let mut inc = IncrementalRevenue::new(&inst);
        inc.set_aggregates(true);
        let mut triples = shuffled_candidate_triples(&inst, &mut rng);
        triples.truncate(10);
        for z in triples {
            inc.insert(z);
        }
        let horizon = inst.horizon() as usize;
        let mask = (1u64 << horizon) - 1;
        let mut out = vec![0.0; horizon];
        for cand in inst.candidates() {
            inc.marginal_revenue_batch(cand, mask, &mut out);
            for (t_idx, &batched) in out.iter().enumerate() {
                let scalar =
                    RevenueEngine::marginal_revenue_cand(&inc, cand, TimeStep::from_index(t_idx));
                assert_eq!(
                    batched.to_bits(),
                    scalar.to_bits(),
                    "case {case}: cand {cand:?} t {t_idx}"
                );
            }
        }
    }
}

/// Aggregate-eligibility edges: single-item classes are trivially uniform,
/// mixed-β classes fall back to the walk (per group, within one engine), and
/// an all-mixed instance reports the fast path inactive.
#[test]
fn aggregate_eligibility_edges() {
    // Item 0 and 1 share a class with different betas (mixed), item 2 is a
    // single-item class (uniform by definition).
    let mut b = InstanceBuilder::new(2, 3, 3);
    b.display_limit(2)
        .item_class(0, 0)
        .item_class(1, 0)
        .item_class(2, 1)
        .beta(0, 0.3)
        .beta(1, 0.7)
        .beta(2, 0.5)
        .constant_price(0, 10.0)
        .constant_price(1, 8.0)
        .constant_price(2, 6.0)
        .candidate(0, 0, &[0.5, 0.4, 0.3], 0.0)
        .candidate(0, 1, &[0.2, 0.6, 0.1], 0.0)
        .candidate(0, 2, &[0.3, 0.3, 0.3], 0.0)
        .candidate(1, 2, &[0.9, 0.1, 0.2], 0.0);
    let inst = b.build().unwrap();
    let mut inc = IncrementalRevenue::new(&inst);
    // Forced engagement (`On`): the default `Auto` mode would depth-gate
    // this tiny instance's groups to walk kernels.
    inc.set_aggregates(true);
    // The single-item class keeps the engine's fast path engageable.
    assert!(inc.aggregates_active());
    let mut walk = IncrementalRevenue::new(&inst);
    walk.set_aggregates(false);
    let picks = [
        Triple::new(0, 0, 1),
        Triple::new(0, 2, 1),
        Triple::new(0, 1, 2),
        Triple::new(1, 2, 2),
        Triple::new(0, 2, 3),
        Triple::new(0, 0, 3),
    ];
    let mut s = Strategy::new();
    for z in picks {
        let scratch = marginal_revenue(&inst, &s, z);
        assert!((inc.marginal_revenue(z) - scratch).abs() < 1e-10, "{z}");
        assert!((walk.marginal_revenue(z) - scratch).abs() < 1e-10, "{z}");
        inc.insert(z);
        walk.insert(z);
        s.insert(z);
    }
    assert!((inc.revenue() - revenue(&inst, &s)).abs() < 1e-10);
    assert!((inc.revenue() - walk.revenue()).abs() < 1e-10);

    // All-mixed instance: the probe reports the fast path inactive.
    let mut b = InstanceBuilder::new(1, 2, 2);
    b.item_class(0, 0)
        .item_class(1, 0)
        .beta(0, 0.2)
        .beta(1, 0.9)
        .constant_price(0, 5.0)
        .constant_price(1, 5.0)
        .candidate(0, 0, &[0.5, 0.5], 0.0)
        .candidate(0, 1, &[0.4, 0.4], 0.0);
    let mixed = b.build().unwrap();
    let mut forced = IncrementalRevenue::new(&mixed);
    forced.set_aggregates(true);
    assert!(!forced.aggregates_active());
    // `ignore_saturation` treats every class as uniform (all factors are 1).
    let mut sat_free = IncrementalRevenue::with_options(&mixed, true);
    sat_free.set_aggregates(true);
    assert!(sat_free.aggregates_active());
}

/// Shard views keep aggregate parity: a sharded evaluator with aggregates on
/// matches the full walk evaluator on shard-restricted insertions.
#[test]
fn aggregate_shard_views_match_full_walk() {
    let mut rng = StdRng::seed_from_u64(0xA665);
    for case in 0..30 {
        let inst = random_uniform_beta_instance(&mut rng);
        if inst.num_users() < 2 {
            continue;
        }
        let cut = inst.num_users() / 2;
        let shards = [
            inst.user_shard(0, cut),
            inst.user_shard(cut, inst.num_users()),
        ];
        let mut full = IncrementalRevenue::new(&inst);
        full.set_aggregates(false);
        let mut views: Vec<IncrementalRevenue<'_>> = shards
            .iter()
            .map(|&s| IncrementalRevenue::for_user_shard(&inst, false, s))
            .collect();
        let mut triples = shuffled_candidate_triples(&inst, &mut rng);
        triples.truncate(12);
        for z in triples {
            let cand = inst.candidate_for(z.user, z.item).unwrap();
            let view = views
                .iter_mut()
                .find(|v| v.shard().contains_user(z.user))
                .unwrap();
            let m_full = RevenueEngine::marginal_revenue_cand(&full, cand, z.t);
            let m_view = RevenueEngine::marginal_revenue_cand(&*view, cand, z.t);
            assert!(
                (m_full - m_view).abs() < 1e-9,
                "case {case}: shard {m_view} vs full {m_full} for {z}"
            );
            full.insert_cand(cand, z.t);
            view.insert_cand(cand, z.t);
        }
        let sum: f64 = views.iter().map(|v| v.revenue()).sum();
        assert!(
            (sum - full.revenue()).abs() < 1e-9,
            "case {case}: {sum} vs {}",
            full.revenue()
        );
    }
}

/// Disabling aggregates after insertions must not leave stale blocks behind:
/// queries fall back to the (always-correct) slab walk, and re-enabling
/// mid-run stays on the walk rather than reading blocks that missed inserts.
#[test]
fn aggregate_toggle_mid_run_never_reads_stale_blocks() {
    let mut rng = StdRng::seed_from_u64(0xA668);
    for case in 0..20 {
        let inst = random_uniform_beta_instance(&mut rng);
        let mut triples = shuffled_candidate_triples(&inst, &mut rng);
        triples.truncate(10);
        if triples.len() < 4 {
            continue;
        }
        let mut toggled = IncrementalRevenue::new(&inst);
        let mut s = Strategy::new();
        for (idx, &z) in triples.iter().enumerate() {
            if idx == 2 {
                // Allocated blocks exist by now; they must be ignored below.
                toggled.set_aggregates(false);
            }
            if idx == 4 {
                // Re-enabling mid-run must not resurrect the stale blocks.
                toggled.set_aggregates(true);
            }
            let scratch = marginal_revenue(&inst, &s, z);
            let m = toggled.marginal_revenue(z);
            assert!(
                (m - scratch).abs() < 1e-9,
                "case {case}: toggled {m} vs scratch {scratch} for {z}"
            );
            toggled.insert(z);
            s.insert(z);
            assert!(
                (toggled.revenue() - revenue(&inst, &s)).abs() < 1e-9,
                "case {case}: total after {z}"
            );
        }
    }
}
