//! Property-based tests of the revenue model invariants claimed in the paper:
//! Lemma 1 (dynamic adoption probabilities are non-increasing in the strategy),
//! Theorem 2 (the revenue function is submodular), consistency between the
//! from-scratch and the incremental evaluators, and basic sanity of the
//! effective (R-REVMAX) objective.

use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use revmax_core::{
    dynamic_probability_of, effective_revenue, marginal_revenue, revenue, ExactPoissonBinomial,
    IncrementalRevenue, Instance, InstanceBuilder, Strategy, Triple,
};

/// Parameters describing a randomly generated small instance.
#[derive(Debug, Clone)]
struct RandomInstance {
    num_users: u32,
    num_items: u32,
    horizon: u32,
    display_limit: u32,
    classes: Vec<u32>,
    betas: Vec<f64>,
    capacities: Vec<u32>,
    prices: Vec<Vec<f64>>,
    probs: Vec<Vec<f64>>, // per (user * num_items + item), length horizon
}

impl RandomInstance {
    fn build(&self) -> Instance {
        let mut b = InstanceBuilder::new(self.num_users, self.num_items, self.horizon);
        b.display_limit(self.display_limit);
        for item in 0..self.num_items as usize {
            b.item_class(item as u32, self.classes[item]);
            b.beta(item as u32, self.betas[item]);
            b.capacity(item as u32, self.capacities[item]);
            b.prices(item as u32, &self.prices[item]);
        }
        for user in 0..self.num_users as usize {
            for item in 0..self.num_items as usize {
                let probs = &self.probs[user * self.num_items as usize + item];
                if probs.iter().any(|&p| p > 0.0) {
                    b.candidate(user as u32, item as u32, probs, 0.0);
                }
            }
        }
        b.build().expect("random instance must build")
    }

    /// All in-universe triples that are candidates.
    fn candidate_triples(&self, inst: &Instance) -> Vec<Triple> {
        let mut out = Vec::new();
        for u in 0..self.num_users {
            for i in 0..self.num_items {
                for t in 1..=self.horizon {
                    let z = Triple::new(u, i, t);
                    if inst.prob_of(z) > 0.0 {
                        out.push(z);
                    }
                }
            }
        }
        out
    }
}

fn random_instance_strategy() -> impl Strategy2 {
    (2u32..=4, 2u32..=5, 1u32..=4, 1u32..=2).prop_flat_map(|(nu, ni, t, k)| {
        let n_pairs = (nu * ni) as usize;
        (
            Just(nu),
            Just(ni),
            Just(t),
            Just(k),
            proptest::collection::vec(0u32..3, ni as usize),
            proptest::collection::vec(0.0f64..=1.0, ni as usize),
            proptest::collection::vec(1u32..=3, ni as usize),
            proptest::collection::vec(
                proptest::collection::vec(0.5f64..50.0, t as usize),
                ni as usize,
            ),
            proptest::collection::vec(
                proptest::collection::vec(0.0f64..=1.0, t as usize),
                n_pairs,
            ),
        )
            .prop_map(
                |(num_users, num_items, horizon, display_limit, classes, betas, capacities, prices, probs)| {
                    RandomInstance {
                        num_users,
                        num_items,
                        horizon,
                        display_limit,
                        classes,
                        betas,
                        capacities,
                        prices,
                        probs,
                    }
                },
            )
    })
}

/// Helper trait alias to keep the generator signature readable.
trait Strategy2: proptest::strategy::Strategy<Value = RandomInstance> {}
impl<T: proptest::strategy::Strategy<Value = RandomInstance>> Strategy2 for T {}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental insertion reproduces the from-scratch revenue exactly,
    /// regardless of insertion order.
    #[test]
    fn incremental_matches_scratch(ri in random_instance_strategy(), seed in any::<u64>()) {
        let inst = ri.build();
        let mut triples = ri.candidate_triples(&inst);
        // Deterministic pseudo-shuffle driven by the seed.
        let n = triples.len();
        if n > 1 {
            let mut s = seed;
            for idx in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (idx + 1);
                triples.swap(idx, j);
            }
        }
        triples.truncate(12);
        let mut inc = IncrementalRevenue::new(&inst);
        let mut s = Strategy::new();
        for z in triples {
            let scratch = marginal_revenue(&inst, &s, z);
            let inc_val = inc.marginal_revenue(z);
            prop_assert!((scratch - inc_val).abs() < 1e-9,
                "marginal mismatch {scratch} vs {inc_val} for {z}");
            inc.insert(z);
            s.insert(z);
            let total_scratch = revenue(&inst, &s);
            prop_assert!((inc.revenue() - total_scratch).abs() < 1e-9);
        }
    }

    /// Lemma 1: the dynamic adoption probability of a fixed triple never
    /// increases when the strategy grows.
    #[test]
    fn dynamic_probability_is_non_increasing(ri in random_instance_strategy()) {
        let inst = ri.build();
        let triples = ri.candidate_triples(&inst);
        if triples.is_empty() {
            return Ok(());
        }
        let tracked = triples[0];
        let mut s = Strategy::new();
        s.insert(tracked);
        let mut prev = dynamic_probability_of(&inst, &s, tracked);
        for &z in triples.iter().skip(1).take(10) {
            s.insert(z);
            let cur = dynamic_probability_of(&inst, &s, tracked);
            prop_assert!(cur <= prev + 1e-12,
                "probability increased from {prev} to {cur} after adding {z}");
            prev = cur;
        }
    }

    /// Theorem 2 (submodularity): the marginal revenue of a triple w.r.t. a
    /// subset is at least its marginal revenue w.r.t. a superset.
    #[test]
    fn revenue_is_submodular(ri in random_instance_strategy(), split in 1usize..6) {
        let inst = ri.build();
        let triples = ri.candidate_triples(&inst);
        if triples.len() < 3 {
            return Ok(());
        }
        let z = *triples.last().unwrap();
        let rest = &triples[..triples.len() - 1];
        let cut = split.min(rest.len().saturating_sub(1));
        let small: Strategy = rest[..cut].iter().copied().collect();
        let large: Strategy = rest.iter().copied().collect();
        if small.contains(z) || large.contains(z) {
            return Ok(());
        }
        let m_small = marginal_revenue(&inst, &small, z);
        let m_large = marginal_revenue(&inst, &large, z);
        prop_assert!(m_small >= m_large - 1e-9,
            "submodularity violated: f(S+z)-f(S)={m_small} < f(S'+z)-f(S')={m_large}");
    }

    /// Revenue is always non-negative and zero for the empty strategy.
    #[test]
    fn revenue_is_nonnegative(ri in random_instance_strategy()) {
        let inst = ri.build();
        prop_assert_eq!(revenue(&inst, &Strategy::new()), 0.0);
        let s: Strategy = ri.candidate_triples(&inst).into_iter().take(15).collect();
        prop_assert!(revenue(&inst, &s) >= 0.0);
    }

    /// The R-REVMAX objective (capacity pushed into the probabilities) never
    /// exceeds the unconstrained revenue and is itself non-negative.
    #[test]
    fn effective_revenue_bounded_by_plain(ri in random_instance_strategy()) {
        let inst = ri.build();
        let s: Strategy = ri.candidate_triples(&inst).into_iter().take(15).collect();
        let oracle = ExactPoissonBinomial;
        let eff = effective_revenue(&inst, &s, &oracle);
        let plain = revenue(&inst, &s);
        prop_assert!(eff >= -1e-12);
        prop_assert!(eff <= plain + 1e-9, "effective {eff} exceeds plain {plain}");
    }

    /// Per-triple dynamic probabilities always stay within [0, q(u,i,t)].
    #[test]
    fn dynamic_probabilities_bounded_by_primitive(ri in random_instance_strategy()) {
        let inst = ri.build();
        let s: Strategy = ri.candidate_triples(&inst).into_iter().take(15).collect();
        for (z, q) in revmax_core::dynamic_probabilities(&inst, &s) {
            let prim = inst.prob_of(z);
            prop_assert!(q >= -1e-12 && q <= prim + 1e-12,
                "dynamic probability {q} outside [0, {prim}] for {z}");
        }
    }
}
