//! # revmax-experiments
//!
//! The experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6) plus the random-price extension (§7) against the generated
//! stand-in datasets.
//!
//! Each experiment is a library function returning plain-text [`Table`]s; the
//! binaries (`table1`, `fig1` … `fig7`, `table2`, `random_prices`,
//! `all_experiments`) print them. Sizes are controlled by [`Scale`] — the
//! default is a laptop-scale fraction of the paper's datasets, `REVMAX_FULL=1`
//! switches to the full sizes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod experiments;
pub mod report;
pub mod scale;

pub use datasets::{build_dataset, build_scalability_dataset, DatasetKind};
pub use experiments::{
    figure1, figure2, figure3, figure4, figure5, figure6, figure7, random_prices, table1, table2,
};
pub use report::{format_number, Table};
pub use scale::Scale;

/// Runs one named experiment and returns its rendered report (used by the
/// binaries and the `all_experiments` driver).
pub fn run_experiment(name: &str, scale: &Scale) -> String {
    let tables: Vec<Table> = match name {
        "table1" => vec![table1(scale)],
        "table2" => vec![table2(scale)],
        "fig1" => figure1(scale),
        "fig2" => figure2(scale),
        "fig3" => figure3(scale),
        "fig4" => figure4(scale),
        "fig5" => figure5(scale),
        "fig6" => vec![figure6(scale)],
        "fig7" => figure7(scale),
        "random_prices" => vec![random_prices(scale)],
        other => panic!("unknown experiment `{other}`"),
    };
    let mut out = String::new();
    for t in tables {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Names of all experiments in presentation order.
pub fn all_experiment_names() -> Vec<&'static str> {
    vec![
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "table2",
        "fig6",
        "fig7",
        "random_prices",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_experiment_dispatches_table1() {
        let out = run_experiment("table1", &Scale::test_scale());
        assert!(out.contains("Table 1"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn run_experiment_rejects_unknown_names() {
        let _ = run_experiment("fig99", &Scale::test_scale());
    }

    #[test]
    fn experiment_name_list_is_complete() {
        assert_eq!(all_experiment_names().len(), 10);
    }
}
