//! Dataset construction for the experiments: applies the per-figure knobs
//! (saturation setting, capacity distribution, class-size mode) on top of the
//! Amazon-like / Epinions-like presets, scaled to the requested fraction of
//! the paper sizes.

use crate::scale::Scale;
use revmax_data::{
    generate, generate_scalability, BetaSetting, CapacityDistribution, DatasetConfig,
    GeneratedDataset,
};

/// Which of the two "real" datasets of the paper to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The Amazon Electronics crawl.
    Amazon,
    /// The Epinions crawl.
    Epinions,
}

impl DatasetKind {
    /// Display name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Amazon => "Amazon",
            DatasetKind::Epinions => "Epinions",
        }
    }

    /// Both datasets, in the order the paper presents them.
    pub fn both() -> [DatasetKind; 2] {
        [DatasetKind::Amazon, DatasetKind::Epinions]
    }

    fn preset(&self) -> DatasetConfig {
        match self {
            DatasetKind::Amazon => DatasetConfig::amazon_like(),
            DatasetKind::Epinions => DatasetConfig::epinions_like(),
        }
    }
}

/// Mean item capacity that keeps the paper's *slack* between aggregate
/// capacity and recommendation demand when the dataset is scaled down.
///
/// In the paper, the mean capacity of 5000 is roughly 40× the average number
/// of recommendations an item can receive (`k·T·|U| / |I|` ≈ 115), so the
/// capacity constraint binds only for the most popular items. Scaling users
/// and items down shrinks per-item demand linearly, so the capacity mean must
/// follow the demand — not the user count — to preserve how often the
/// constraint bites.
pub fn capacity_mean(kind: DatasetKind, scale: &Scale) -> f64 {
    let cfg = kind.preset().scaled(scale.dataset_scale);
    let demand_per_item = (cfg.display_limit as f64 * cfg.horizon as f64 * cfg.num_users as f64)
        / cfg.num_items as f64;
    (40.0 * demand_per_item).min(cfg.num_users as f64).max(5.0)
}

/// The capacity distributions compared in Figure 1, with the paper's labels.
pub fn figure1_capacity_distributions(mean: f64) -> Vec<(&'static str, CapacityDistribution)> {
    let mean = mean.max(5.0);
    vec![
        (
            "normal",
            CapacityDistribution::Gaussian {
                mean,
                std: mean * 0.06,
            },
        ),
        (
            "power",
            CapacityDistribution::PowerLaw {
                min: mean * 0.4,
                alpha: 2.2,
            },
        ),
        (
            "uniform",
            CapacityDistribution::Uniform {
                min: mean * 0.5,
                max: mean * 1.5,
            },
        ),
    ]
}

/// The Gaussian / exponential capacity pair used by Figures 2, 3, and 7.
pub fn gaussian_and_exponential(mean: f64) -> Vec<(&'static str, CapacityDistribution)> {
    let mean = mean.max(5.0);
    vec![
        (
            "Gaussian",
            CapacityDistribution::Gaussian {
                mean,
                std: mean * 0.06,
            },
        ),
        ("Exponential", CapacityDistribution::Exponential { mean }),
    ]
}

/// Builds one experiment dataset.
///
/// `class_size_one` switches every item into its own class (the "class size
/// = 1" variant of Figures 1 and 3).
pub fn build_dataset(
    kind: DatasetKind,
    scale: &Scale,
    beta: BetaSetting,
    capacity: CapacityDistribution,
    class_size_one: bool,
) -> GeneratedDataset {
    let mut config = kind.preset().scaled(scale.dataset_scale);
    config.beta = beta;
    config.capacity = capacity;
    if class_size_one {
        config.num_classes = config.num_items;
        config.name = format!("{}-class1", config.name);
    }
    config.seed = scale
        .seed
        .wrapping_mul(31)
        .wrapping_add(kind.name().len() as u64)
        .wrapping_add(if class_size_one { 1 } else { 0 });
    generate(&config)
}

/// Builds one synthetic scalability dataset (Figure 6) with `num_users` users.
pub fn build_scalability_dataset(num_users: u32, scale: &Scale) -> GeneratedDataset {
    let mut config = DatasetConfig::synthetic_scalability(num_users);
    config.num_items = scale.scalability_items;
    config.num_classes = scale.scalability_classes.min(scale.scalability_items);
    config.candidates_per_user = config.candidates_per_user.min(config.num_items);
    config.seed = scale.seed.wrapping_add(num_users as u64);
    generate_scalability(&config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::ItemId;

    #[test]
    fn class_size_one_puts_every_item_in_its_own_class() {
        let scale = Scale::test_scale();
        let ds = build_dataset(
            DatasetKind::Epinions,
            &scale,
            BetaSetting::Fixed(0.5),
            CapacityDistribution::Gaussian {
                mean: 10.0,
                std: 1.0,
            },
            true,
        );
        assert_eq!(ds.instance.num_classes(), ds.instance.num_items());
    }

    #[test]
    fn capacity_lists_cover_paper_labels() {
        let fig1 = figure1_capacity_distributions(1000.0);
        let labels: Vec<_> = fig1.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["normal", "power", "uniform"]);
        let pair = gaussian_and_exponential(1000.0);
        assert_eq!(pair.len(), 2);
    }

    #[test]
    fn capacity_mean_matches_paper_at_full_scale() {
        let full = Scale::paper_scale();
        let mean = capacity_mean(DatasetKind::Amazon, &full);
        // 40 × (3·7·23000 / 4200) = 4600, the same order as the paper's 5000.
        assert!(
            (4000.0..=6000.0).contains(&mean),
            "unexpected capacity mean {mean}"
        );
        // At tiny scales the mean is clamped by the user count.
        let tiny = Scale::test_scale();
        let mean_tiny = capacity_mean(DatasetKind::Amazon, &tiny);
        assert!(mean_tiny >= 5.0);
    }

    #[test]
    fn build_dataset_honours_beta_setting() {
        let scale = Scale::test_scale();
        let ds = build_dataset(
            DatasetKind::Amazon,
            &scale,
            BetaSetting::Fixed(0.9),
            CapacityDistribution::Uniform {
                min: 5.0,
                max: 10.0,
            },
            false,
        );
        for i in 0..ds.instance.num_items() {
            assert_eq!(ds.instance.beta(ItemId(i)), 0.9);
        }
    }

    #[test]
    fn scalability_dataset_has_requested_users() {
        let scale = Scale::test_scale();
        let ds = build_scalability_dataset(150, &scale);
        assert_eq!(ds.instance.num_users(), 150);
        assert_eq!(ds.instance.num_items(), scale.scalability_items);
        assert!(ds.positive_triples() > 0);
    }
}
