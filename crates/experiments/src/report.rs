//! Plain-text report tables produced by the experiment harness.
//!
//! The paper reports results as figures; since a library cannot ship plots,
//! each experiment regenerates the underlying data series as aligned text
//! tables (one row per configuration, one column per algorithm or per sweep
//! point), which EXPERIMENTS.md then compares against the paper's shapes.

use std::fmt;

/// A rectangular, titled report table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. "Figure 1(a): Amazon, beta ~ U\[0,1\]").
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Convenience: a row of a label plus formatted numbers.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut row = vec![label.into()];
        row.extend(values.iter().map(|v| format_number(*v)));
        self.rows.push(row);
    }

    /// Looks up a cell by row label and column header (for tests).
    pub fn cell(&self, row_label: &str, column: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(row_label))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// Parses a cell as a number (for tests and cross-checks).
    pub fn numeric_cell(&self, row_label: &str, column: &str) -> Option<f64> {
        self.cell(row_label, column)?.replace(',', "").parse().ok()
    }
}

/// Human-friendly formatting: thousands get separators, small values keep
/// enough significant digits.
pub fn format_number(v: f64) -> String {
    if !v.is_finite() {
        return "n/a".to_string();
    }
    if v.abs() >= 1000.0 {
        let rounded = v.round() as i64;
        let mut s = String::new();
        let digits = rounded.abs().to_string();
        let bytes = digits.as_bytes();
        for (i, b) in bytes.iter().enumerate() {
            if i > 0 && (bytes.len() - i).is_multiple_of(3) {
                s.push(',');
            }
            s.push(*b as char);
        }
        if rounded < 0 {
            format!("-{s}")
        } else {
            s
        }
    } else if v.abs() >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            header_line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
        }
        writeln!(f, "{}", header_line.trim_end())?;
        writeln!(f, "{}", "-".repeat(header_line.trim_end().len().max(4)))?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_and_lookup() {
        let mut t = Table::new("Demo", vec!["config".into(), "GG".into(), "SLG".into()]);
        t.push_numeric_row("normal", &[12345.678, 0.5]);
        t.push_row(vec!["power".into(), "7".into()]);
        assert_eq!(t.cell("normal", "GG"), Some("12,346"));
        assert_eq!(t.numeric_cell("normal", "SLG"), Some(0.5));
        assert_eq!(t.cell("missing", "GG"), None);
        assert_eq!(t.cell("power", "SLG"), None);
        let rendered = t.to_string();
        assert!(rendered.contains("## Demo"));
        assert!(rendered.contains("normal"));
        assert!(rendered.contains("12,346"));
    }

    #[test]
    fn number_formatting_covers_ranges() {
        assert_eq!(format_number(1_234_567.0), "1,234,567");
        assert_eq!(format_number(-12_345.4), "-12,345");
        assert_eq!(format_number(12.3456), "12.35");
        assert_eq!(format_number(0.12345), "0.1235");
        assert_eq!(format_number(f64::NAN), "n/a");
    }
}
