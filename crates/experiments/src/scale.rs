//! Experiment scaling.
//!
//! The paper's experiments ran on a 256 GB server against crawled datasets
//! with ~16M candidate triples and synthetic datasets with up to 250M.
//! The harness here defaults to a laptop-scale fraction of those sizes that
//! preserves the qualitative shapes, and can be switched to the full paper
//! sizes with `REVMAX_FULL=1` (or an explicit `REVMAX_SCALE=<fraction>`).

/// Global knobs shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Fraction of the paper's dataset sizes used for the Amazon-like and
    /// Epinions-like datasets (1.0 = paper scale).
    pub dataset_scale: f64,
    /// Number of permutations sampled by RL-Greedy (the paper uses 20).
    pub rl_permutations: usize,
    /// User counts for the scalability sweep of Figure 6.
    pub scalability_users: Vec<u32>,
    /// Items / classes / candidates-per-user used in the scalability sweep.
    pub scalability_items: u32,
    /// Number of classes for the scalability sweep.
    pub scalability_classes: u32,
    /// Master seed for dataset generation and randomized algorithms.
    pub seed: u64,
}

impl Scale {
    /// Laptop-scale defaults: ~2 % of the paper's dataset sizes.
    pub fn default_scale() -> Self {
        Scale {
            dataset_scale: 0.02,
            rl_permutations: 5,
            scalability_users: vec![1_000, 2_000, 4_000, 6_000, 8_000],
            scalability_items: 2_000,
            scalability_classes: 100,
            seed: 2014,
        }
    }

    /// The paper's full sizes (needs a large machine and a lot of patience).
    pub fn paper_scale() -> Self {
        Scale {
            dataset_scale: 1.0,
            rl_permutations: 20,
            scalability_users: vec![100_000, 200_000, 300_000, 400_000, 500_000],
            scalability_items: 20_000,
            scalability_classes: 500,
            seed: 2014,
        }
    }

    /// A minimal configuration for unit tests of the harness itself.
    pub fn test_scale() -> Self {
        Scale {
            dataset_scale: 0.004,
            rl_permutations: 2,
            scalability_users: vec![100, 200],
            scalability_items: 60,
            scalability_classes: 10,
            seed: 7,
        }
    }

    /// Reads the scale from the environment: `REVMAX_FULL=1` selects the paper
    /// scale, `REVMAX_SCALE=<fraction>` overrides the dataset fraction, and
    /// `REVMAX_RL_PERMS=<n>` overrides the RL-Greedy permutation count.
    pub fn from_env() -> Self {
        use revmax_core::env;
        let mut scale = if env::flag("REVMAX_FULL") {
            Scale::paper_scale()
        } else {
            Scale::default_scale()
        };
        if let Some(f) = env::var::<f64>("REVMAX_SCALE") {
            if f > 0.0 && f <= 1.0 {
                scale.dataset_scale = f;
            }
        }
        if let Some(n) = env::var::<usize>("REVMAX_RL_PERMS") {
            scale.rl_permutations = n.max(1);
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let test = Scale::test_scale();
        let small = Scale::default_scale();
        let full = Scale::paper_scale();
        assert!(test.dataset_scale < small.dataset_scale);
        assert!(small.dataset_scale < full.dataset_scale);
        assert!(small.rl_permutations <= full.rl_permutations);
        assert_eq!(full.scalability_users.last(), Some(&500_000));
        assert_eq!(full.scalability_items, 20_000);
    }

    #[test]
    fn from_env_defaults_to_laptop_scale() {
        // The test environment does not define REVMAX_FULL / REVMAX_SCALE.
        use revmax_core::env;
        if !env::is_set("REVMAX_FULL") && !env::is_set("REVMAX_SCALE") {
            let s = Scale::from_env();
            assert_eq!(s.dataset_scale, Scale::default_scale().dataset_scale);
        }
    }
}
