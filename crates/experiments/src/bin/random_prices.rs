//! Regenerates the "random_prices" experiment of the REVMAX reproduction.
//! Sizes are controlled via REVMAX_FULL / REVMAX_SCALE / REVMAX_RL_PERMS.

fn main() {
    let scale = revmax_experiments::Scale::from_env();
    print!(
        "{}",
        revmax_experiments::run_experiment("random_prices", &scale)
    );
}
