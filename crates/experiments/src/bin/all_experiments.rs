//! Runs every experiment of the REVMAX reproduction in sequence and prints
//! the combined report (the input for EXPERIMENTS.md).

use std::time::Instant;

fn main() {
    let scale = revmax_experiments::Scale::from_env();
    println!("# REVMAX experiment suite");
    println!(
        "dataset scale = {}, RL permutations = {}, seed = {}\n",
        scale.dataset_scale, scale.rl_permutations, scale.seed
    );
    for name in revmax_experiments::all_experiment_names() {
        let start = Instant::now();
        let report = revmax_experiments::run_experiment(name, &scale);
        print!("{report}");
        println!(
            "[{name} completed in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
    }
}
