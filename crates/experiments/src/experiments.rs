//! One function per table / figure of the paper's evaluation (§6) plus the
//! random-price extension of §7. Every function returns plain-text [`Table`]s
//! so binaries, tests, and EXPERIMENTS.md can consume the same output.

use crate::datasets::{
    build_dataset, build_scalability_dataset, capacity_mean, figure1_capacity_distributions,
    gaussian_and_exponential, DatasetKind,
};
use crate::report::{format_number, Table};
use crate::scale::Scale;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_algorithms::{plan, run, Algorithm, PlannerConfig};
use revmax_core::Instance;
use revmax_data::{BetaSetting, Table1Stats};
use revmax_pricing::{
    rand_rev_mean_price, rand_rev_monte_carlo, rand_rev_taylor, CovarianceMatrix,
    GaussianValuation, RandomPriceTriple,
};

/// The six-algorithm lineup of Figures 1–3, with RL-Greedy's permutation count
/// taken from the scale settings.
fn lineup(scale: &Scale) -> Vec<Algorithm> {
    vec![
        Algorithm::GlobalGreedy,
        Algorithm::GlobalNoSaturation,
        Algorithm::RandomizedLocalGreedy {
            permutations: scale.rl_permutations,
        },
        Algorithm::SequentialLocalGreedy,
        Algorithm::TopRevenue,
        Algorithm::TopRating,
    ]
}

fn lineup_headers(scale: &Scale) -> Vec<String> {
    let mut headers = vec!["config".to_string()];
    headers.extend(lineup(scale).iter().map(|a| a.name()));
    headers
}

fn run_lineup(inst: &Instance, scale: &Scale) -> Vec<f64> {
    lineup(scale)
        .iter()
        .map(|alg| run(inst, alg, scale.seed).revenue)
        .collect()
}

/// **Table 1** — dataset statistics of the Amazon-like, Epinions-like, and
/// (smallest) synthetic scalability datasets.
pub fn table1(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Table 1: data statistics (generated stand-ins)",
        Table1Stats::header()
            .split_whitespace()
            .map(str::to_string)
            .collect(),
    );
    for kind in DatasetKind::both() {
        let ds = build_dataset(
            kind,
            scale,
            BetaSetting::UniformRandom,
            figure1_capacity_distributions(capacity_mean(kind, scale))[0].1,
            false,
        );
        let stats = Table1Stats::from_dataset(&ds);
        table.push_row(
            stats
                .to_string()
                .split_whitespace()
                .map(str::to_string)
                .collect(),
        );
    }
    let smallest = *scale.scalability_users.first().unwrap_or(&1000);
    let ds = build_scalability_dataset(smallest, scale);
    let stats = Table1Stats::from_dataset(&ds);
    table.push_row(
        stats
            .to_string()
            .split_whitespace()
            .map(str::to_string)
            .collect(),
    );
    table
}

/// **Figure 1** — expected total revenue with β ~ U[0, 1] under three item
/// capacity distributions, for item classes as generated (a, b) and for
/// every item in its own class (c, d).
pub fn figure1(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for class_size_one in [false, true] {
        for kind in DatasetKind::both() {
            let suffix = if class_size_one { ", class size 1" } else { "" };
            let mut table = Table::new(
                format!(
                    "Figure 1: {}{} — revenue vs capacity distribution",
                    kind.name(),
                    suffix
                ),
                lineup_headers(scale),
            );
            for (label, capacity) in figure1_capacity_distributions(capacity_mean(kind, scale)) {
                let ds = build_dataset(
                    kind,
                    scale,
                    BetaSetting::UniformRandom,
                    capacity,
                    class_size_one,
                );
                let revenues = run_lineup(&ds.instance, scale);
                table.push_numeric_row(label, &revenues);
            }
            tables.push(table);
        }
    }
    tables
}

/// Shared implementation of Figures 2 and 3 (revenue vs uniform saturation
/// strength, Gaussian and exponential capacities).
fn beta_sweep(scale: &Scale, class_size_one: bool, figure: &str) -> Vec<Table> {
    let mut tables = Vec::new();
    for kind in DatasetKind::both() {
        for (cap_label, capacity) in gaussian_and_exponential(capacity_mean(kind, scale)) {
            let mut table = Table::new(
                format!(
                    "{figure}: {} ({cap_label} capacities){} — revenue vs beta",
                    kind.name(),
                    if class_size_one { ", class size 1" } else { "" }
                ),
                lineup_headers(scale),
            );
            for beta in [0.1, 0.5, 0.9] {
                let ds = build_dataset(
                    kind,
                    scale,
                    BetaSetting::Fixed(beta),
                    capacity,
                    class_size_one,
                );
                let revenues = run_lineup(&ds.instance, scale);
                table.push_numeric_row(format!("beta={beta}"), &revenues);
            }
            tables.push(table);
        }
    }
    tables
}

/// **Figure 2** — revenue vs saturation strength β ∈ {0.1, 0.5, 0.9}, item
/// classes as generated.
pub fn figure2(scale: &Scale) -> Vec<Table> {
    beta_sweep(scale, false, "Figure 2")
}

/// **Figure 3** — as Figure 2 but with every item in its own class.
pub fn figure3(scale: &Scale) -> Vec<Table> {
    beta_sweep(scale, true, "Figure 3")
}

/// **Figure 4** — revenue growth as the greedy algorithms enlarge the
/// strategy set (the empirical illustration of submodularity).
pub fn figure4(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for kind in DatasetKind::both() {
        let capacity = figure1_capacity_distributions(capacity_mean(kind, scale))[0].1;
        let ds = build_dataset(kind, scale, BetaSetting::UniformRandom, capacity, false);
        let inst = &ds.instance;

        let gg = plan(inst, &PlannerConfig::default().with_track_trace(true));
        let rlg =
            revmax_algorithms::randomized_local_greedy(inst, scale.rl_permutations, scale.seed);
        let slg = revmax_algorithms::sequential_local_greedy(inst);

        let mut table = Table::new(
            format!("Figure 4: {} — revenue vs strategy size", kind.name()),
            vec!["|S|".into(), "GG".into(), "RLG".into(), "SLG".into()],
        );
        let longest = gg.trace.len().max(rlg.trace.len()).max(slg.trace.len());
        let points = 10usize.min(longest.max(1));
        for p in 1..=points {
            let idx = (p * longest / points).max(1) - 1;
            let sample = |trace: &[f64]| -> f64 {
                if trace.is_empty() {
                    0.0
                } else {
                    trace[idx.min(trace.len() - 1)]
                }
            };
            table.push_row(vec![
                format!("{}", idx + 1),
                format_number(sample(&gg.trace)),
                format_number(sample(&rlg.trace)),
                format_number(sample(&slg.trace)),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// **Figure 5** — histogram of the number of repeated recommendations per
/// (user, item) pair made by G-Greedy, for β ∈ {0.1, 0.5, 0.9}.
pub fn figure5(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for kind in DatasetKind::both() {
        let mut table = Table::new(
            format!(
                "Figure 5: {} — repeat-recommendation histogram of G-Greedy",
                kind.name()
            ),
            vec![
                "beta".into(),
                "1".into(),
                "2".into(),
                "3".into(),
                "4".into(),
                "5".into(),
                "6".into(),
                "7".into(),
            ],
        );
        for beta in [0.1, 0.5, 0.9] {
            let capacity = figure1_capacity_distributions(capacity_mean(kind, scale))[0].1;
            let ds = build_dataset(kind, scale, BetaSetting::Fixed(beta), capacity, false);
            let gg = revmax_algorithms::global_greedy(&ds.instance);
            let hist = gg.strategy.repeat_histogram();
            let mut buckets = [0u64; 7];
            for &count in hist.values() {
                let idx = (count as usize).clamp(1, 7) - 1;
                buckets[idx] += 1;
            }
            let total: u64 = buckets.iter().sum::<u64>().max(1);
            let mut row = vec![format!("beta={beta}")];
            row.extend(
                buckets
                    .iter()
                    .map(|&b| format!("{:.3}", b as f64 / total as f64)),
            );
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

/// **Table 2** — running time of the five algorithms on both datasets
/// (uniform-random β, Gaussian capacities).
pub fn table2(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Table 2: running time (seconds)",
        vec![
            "dataset".into(),
            "GG".into(),
            "RLG".into(),
            "SLG".into(),
            "TopRev".into(),
            "TopRat".into(),
        ],
    );
    let algorithms = vec![
        Algorithm::GlobalGreedy,
        Algorithm::RandomizedLocalGreedy {
            permutations: scale.rl_permutations,
        },
        Algorithm::SequentialLocalGreedy,
        Algorithm::TopRevenue,
        Algorithm::TopRating,
    ];
    for kind in DatasetKind::both() {
        let capacity = figure1_capacity_distributions(capacity_mean(kind, scale))[0].1;
        let ds = build_dataset(kind, scale, BetaSetting::UniformRandom, capacity, false);
        let mut row = vec![kind.name().to_string()];
        for alg in &algorithms {
            let report = run(&ds.instance, alg, scale.seed);
            row.push(format!("{:.3}", report.elapsed.as_secs_f64()));
        }
        table.push_row(row);
    }
    table
}

/// **Figure 6** — running time of G-Greedy on synthetic datasets of growing
/// size (the scalability study).
pub fn figure6(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 6: G-Greedy scalability on synthetic data",
        vec![
            "#users".into(),
            "#candidate triples".into(),
            "GG seconds".into(),
            "revenue".into(),
        ],
    );
    for &users in &scale.scalability_users {
        let ds = build_scalability_dataset(users, scale);
        let report = run(&ds.instance, &Algorithm::GlobalGreedy, scale.seed);
        table.push_row(vec![
            users.to_string(),
            ds.positive_triples().to_string(),
            format!("{:.3}", report.elapsed.as_secs_f64()),
            format_number(report.revenue),
        ]);
    }
    table
}

/// **Figure 7** — revenue under incomplete price information: G-Greedy and
/// RL-Greedy restricted to sub-horizons with cut-off at 2, 4, and 5 (β = 0.5,
/// Gaussian and power-law capacities), compared with their holistic versions
/// and SL-Greedy.
pub fn figure7(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for kind in DatasetKind::both() {
        let mean = capacity_mean(kind, scale);
        let capacities = vec![
            (
                "Gaussian",
                revmax_data::CapacityDistribution::Gaussian {
                    mean,
                    std: mean * 0.06,
                },
            ),
            (
                "power-law",
                revmax_data::CapacityDistribution::PowerLaw {
                    min: mean * 0.4,
                    alpha: 2.2,
                },
            ),
        ];
        for (cap_label, capacity) in capacities {
            let ds = build_dataset(kind, scale, BetaSetting::Fixed(0.5), capacity, false);
            let inst = &ds.instance;
            let mut algorithms: Vec<Algorithm> = vec![Algorithm::GlobalGreedy];
            for cut in [2u32, 4, 5] {
                algorithms.push(Algorithm::StagedGlobalGreedy {
                    stage_ends: vec![cut],
                });
            }
            algorithms.push(Algorithm::SequentialLocalGreedy);
            algorithms.push(Algorithm::RandomizedLocalGreedy {
                permutations: scale.rl_permutations,
            });
            for cut in [2u32, 4, 5] {
                algorithms.push(Algorithm::StagedRandomizedLocalGreedy {
                    stage_ends: vec![cut],
                    permutations: scale.rl_permutations,
                });
            }
            let mut table = Table::new(
                format!(
                    "Figure 7: {} ({cap_label} capacities), beta = 0.5",
                    kind.name()
                ),
                vec!["algorithm".into(), "revenue".into()],
            );
            for alg in &algorithms {
                let report = run(inst, alg, scale.seed);
                table.push_row(vec![
                    report.algorithm.clone(),
                    format_number(report.revenue),
                ]);
            }
            tables.push(table);
        }
    }
    tables
}

/// **§7 extension** — random prices: compares the mean-price heuristic, the
/// second-order Taylor approximation, and a Monte-Carlo ground truth on
/// synthetic strategies whose prices are only known in distribution.
pub fn random_prices(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Random prices (§7): expected revenue estimators vs Monte-Carlo ground truth",
        vec![
            "price std / mean".into(),
            "MeanPrice".into(),
            "Taylor".into(),
            "MonteCarlo".into(),
            "MeanPrice err %".into(),
            "Taylor err %".into(),
        ],
    );
    let mut rng = StdRng::seed_from_u64(scale.seed);
    for rel_std in [0.05, 0.15, 0.3] {
        // Build a batch of user/class chains: each chain has 1–3 same-class
        // recommendations whose prices are random variables.
        let mut triples = Vec::new();
        let mut means = Vec::new();
        let mut variances = Vec::new();
        for _ in 0..40 {
            let chain_len = rng.gen_range(1..=3usize);
            let mut competitor_vars = Vec::new();
            let mut competitor_valuations = Vec::new();
            let mut competitor_rating_factors = Vec::new();
            for pos in 0..chain_len {
                let mean_price = rng.gen_range(20.0..200.0);
                let var = (rel_std * mean_price) * (rel_std * mean_price);
                means.push(mean_price);
                variances.push(var);
                let var_index = means.len() - 1;
                let valuation = GaussianValuation {
                    mean: mean_price * rng.gen_range(0.9..1.2),
                    std: mean_price * rng.gen_range(0.15..0.35),
                };
                let rating_factor = rng.gen_range(0.4..1.0);
                if pos + 1 == chain_len {
                    triples.push(RandomPriceTriple {
                        own_var: var_index,
                        competitor_vars: competitor_vars.clone(),
                        rating_factor,
                        competitor_rating_factors: competitor_rating_factors.clone(),
                        valuation,
                        competitor_valuations: competitor_valuations.clone(),
                        saturation_discount: rng.gen_range(0.5..1.0),
                    });
                } else {
                    competitor_vars.push(var_index);
                    competitor_valuations.push(valuation);
                    competitor_rating_factors.push(rating_factor);
                }
            }
        }
        let cov = CovarianceMatrix::diagonal(&variances);
        let naive = rand_rev_mean_price(&triples, &means);
        let taylor = rand_rev_taylor(&triples, &means, &cov);
        let truth = rand_rev_monte_carlo(&triples, &means, &cov, 20_000, scale.seed)
            .expect("diagonal covariance is always PSD");
        let err = |x: f64| 100.0 * (x - truth).abs() / truth.abs().max(1e-9);
        table.push_row(vec![
            format!("{rel_std:.2}"),
            format_number(naive),
            format_number(taylor),
            format_number(truth),
            format!("{:.2}", err(naive)),
            format!("{:.2}", err(taylor)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale::test_scale()
    }

    #[test]
    fn table1_has_three_rows() {
        let t = table1(&scale());
        assert_eq!(t.rows.len(), 3);
        assert!(t.to_string().contains("amazon-like"));
        assert!(t.to_string().contains("epinions-like"));
        assert!(t.to_string().contains("synthetic"));
    }

    #[test]
    fn figure1_produces_four_tables_with_three_capacity_rows() {
        let tables = figure1(&scale());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows.len(), 3);
            // GG beats the static TopRat baseline in every configuration.
            for label in ["normal", "power", "uniform"] {
                let gg = t.numeric_cell(label, "GG").unwrap();
                let rat = t.numeric_cell(label, "TopRat").unwrap();
                assert!(gg >= rat, "GG {gg} below TopRat {rat} in {}", t.title);
            }
        }
    }

    #[test]
    fn figure2_and_3_sweep_beta() {
        let tables = figure2(&scale());
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows.len(), 3);
            assert!(t.numeric_cell("beta=0.1", "GG").is_some());
        }
        let tables3 = figure3(&scale());
        assert_eq!(tables3.len(), 4);
        assert!(tables3[0].title.contains("class size 1"));
    }

    #[test]
    fn figure4_traces_are_monotone_per_algorithm() {
        let tables = figure4(&scale());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            let mut prev = 0.0;
            for row in &t.rows {
                let gg: f64 = row[1].replace(',', "").parse().unwrap();
                assert!(gg + 1e-9 >= prev);
                prev = gg;
            }
        }
    }

    #[test]
    fn figure5_rows_are_probability_distributions() {
        let tables = figure5(&scale());
        for t in &tables {
            for row in &t.rows {
                let total: f64 = row[1..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
                assert!((total - 1.0).abs() < 0.02, "histogram row sums to {total}");
            }
        }
    }

    #[test]
    fn table2_and_figure6_report_positive_times() {
        let t2 = table2(&scale());
        assert_eq!(t2.rows.len(), 2);
        for row in &t2.rows {
            for cell in &row[1..] {
                assert!(cell.parse::<f64>().unwrap() >= 0.0);
            }
        }
        let f6 = figure6(&scale());
        assert_eq!(f6.rows.len(), scale().scalability_users.len());
    }

    #[test]
    fn figure7_contains_staged_variants() {
        let tables = figure7(&scale());
        assert_eq!(tables.len(), 4);
        let rendered = tables[0].to_string();
        for label in ["GG", "GG_2", "GG_4", "GG_5", "SLG", "RLG", "RLG_2"] {
            assert!(rendered.contains(label), "missing {label} in {rendered}");
        }
    }

    #[test]
    fn random_prices_taylor_beats_naive_for_large_variance() {
        let t = random_prices(&scale());
        assert_eq!(t.rows.len(), 3);
        // For the largest price variance the Taylor correction should be at
        // least as accurate as plugging in the mean price.
        let last = t.rows.last().unwrap();
        let naive_err: f64 = last[4].parse().unwrap();
        let taylor_err: f64 = last[5].parse().unwrap();
        assert!(
            taylor_err <= naive_err + 0.5,
            "taylor {taylor_err}% vs naive {naive_err}%"
        );
    }
}
