//! Table-2 analogue: running time of the five algorithms on a small
//! Amazon-like dataset (uniform-random saturation, Gaussian capacities).

use criterion::{criterion_group, criterion_main, Criterion};
use revmax_algorithms::{run, Algorithm};
use revmax_data::{generate, DatasetConfig};

fn bench_algorithms(c: &mut Criterion) {
    let mut config = DatasetConfig::amazon_like().scaled(0.005);
    config.candidates_per_user = 30;
    let ds = generate(&config);
    let inst = &ds.instance;
    let mut group = c.benchmark_group("table2_running_time");
    group.sample_size(10);
    for alg in [
        Algorithm::GlobalGreedy,
        Algorithm::RandomizedLocalGreedy { permutations: 5 },
        Algorithm::SequentialLocalGreedy,
        Algorithm::TopRevenue,
        Algorithm::TopRating,
    ] {
        group.bench_function(alg.name(), |b| b.iter(|| run(inst, &alg, 1).revenue));
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
