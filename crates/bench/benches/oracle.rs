//! Capacity-oracle ablation: exact Poisson-binomial DP vs Monte-Carlo
//! estimation of B_S(i, t) for growing competitor counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmax_algorithms::MonteCarloOracle;
use revmax_core::{CapacityOracle, ExactPoissonBinomial};

fn bench_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity_oracle");
    group.sample_size(20);
    for n in [16usize, 64, 256] {
        let probs: Vec<f64> = (0..n).map(|i| 0.1 + 0.8 * (i as f64 / n as f64)).collect();
        let limit = (n / 4) as u32;
        group.bench_with_input(BenchmarkId::new("exact_dp", n), &probs, |b, probs| {
            let oracle = ExactPoissonBinomial;
            b.iter(|| oracle.prob_at_most(probs, limit))
        });
        group.bench_with_input(BenchmarkId::new("monte_carlo_1k", n), &probs, |b, probs| {
            let oracle = MonteCarloOracle::new(1000, 7);
            b.iter(|| oracle.prob_at_most(probs, limit))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
