//! Ablation: lazy-forward marginal re-evaluation vs eager re-evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use revmax_algorithms::{plan, PlannerConfig};
use revmax_data::{generate, DatasetConfig};

fn bench_lazy_forward(c: &mut Criterion) {
    let mut config = DatasetConfig::amazon_like().scaled(0.004);
    config.candidates_per_user = 25;
    let ds = generate(&config);
    let inst = &ds.instance;
    let mut group = c.benchmark_group("lazy_forward");
    group.sample_size(10);
    group.bench_function("lazy", |b| {
        b.iter(|| plan(inst, &PlannerConfig::default()).marginal_evaluations)
    });
    group.bench_function("eager", |b| {
        b.iter(|| {
            plan(inst, &PlannerConfig::default().with_lazy_forward(false)).marginal_evaluations
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lazy_forward);
criterion_main!(benches);
