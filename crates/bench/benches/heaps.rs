//! Ablation: the two-level heap layout of §5.1 vs a single "giant" heap over
//! all candidate triples.

use criterion::{criterion_group, criterion_main, Criterion};
use revmax_algorithms::{plan, PlannerConfig};
use revmax_data::{generate, DatasetConfig};

fn bench_heap_layouts(c: &mut Criterion) {
    let mut config = DatasetConfig::amazon_like().scaled(0.005);
    config.candidates_per_user = 30;
    let ds = generate(&config);
    let inst = &ds.instance;
    let mut group = c.benchmark_group("heap_layout");
    group.sample_size(10);
    group.bench_function("two_level", |b| {
        b.iter(|| plan(inst, &PlannerConfig::default()).revenue)
    });
    group.bench_function("giant_heap", |b| {
        b.iter(|| plan(inst, &PlannerConfig::default().with_two_level_heaps(false)).revenue)
    });
    group.finish();
}

criterion_group!(benches, bench_heap_layouts);
criterion_main!(benches);
