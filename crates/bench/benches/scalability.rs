//! Figure-6 analogue: G-Greedy running time as the synthetic dataset grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmax_algorithms::global_greedy;
use revmax_data::{generate_scalability, DatasetConfig};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_scalability");
    group.sample_size(10);
    for users in [300u32, 600, 1200] {
        let mut config = DatasetConfig::synthetic_scalability(users);
        config.num_items = 500;
        config.num_classes = 50;
        config.candidates_per_user = 40;
        let ds = generate_scalability(&config);
        group.bench_with_input(BenchmarkId::from_parameter(users), &ds, |b, ds| {
            b.iter(|| global_greedy(&ds.instance).revenue)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
