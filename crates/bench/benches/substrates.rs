//! Substrate micro-benchmarks: matrix-factorization training, KDE fitting and
//! sampling, and full-strategy revenue evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_algorithms::global_greedy;
use revmax_core::revenue;
use revmax_data::{generate, DatasetConfig};
use revmax_pricing::GaussianKde;
use revmax_recsys::{MatrixFactorization, MfConfig, RatingSet};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);

    // Matrix factorization on a synthetic rating set.
    let mut rng = StdRng::seed_from_u64(3);
    let mut ratings = RatingSet::new(300, 150);
    for _ in 0..6000 {
        ratings.push(
            rng.gen_range(0..300),
            rng.gen_range(0..150),
            rng.gen_range(1.0..=5.0),
        );
    }
    let mf_config = MfConfig {
        factors: 8,
        epochs: 10,
        ..Default::default()
    };
    group.bench_function("mf_train_6k_ratings", |b| {
        b.iter(|| MatrixFactorization::train(&ratings, &mf_config).num_users())
    });

    // KDE fit + weekly series sampling.
    let samples: Vec<f64> = (0..200).map(|_| rng.gen_range(20.0..180.0)).collect();
    group.bench_function("kde_fit_and_sample_week", |b| {
        b.iter(|| {
            let kde = GaussianKde::fit(&samples);
            kde.sample_series(7, 0.01, &mut rng).iter().sum::<f64>()
        })
    });

    // Revenue evaluation of a full greedy strategy.
    let ds = generate(&DatasetConfig::tiny());
    let strategy = global_greedy(&ds.instance).strategy;
    group.bench_function("revenue_evaluation", |b| {
        b.iter(|| revenue(&ds.instance, &strategy))
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
