//! # revmax-bench
//!
//! Criterion benchmarks for the REVMAX reproduction. The benches live in
//! `benches/`:
//!
//! * `greedy` — Table 2 analogue (algorithm running times);
//! * `scalability` — Figure 6 analogue (G-Greedy vs dataset size);
//! * `heaps`, `lazy_forward` — ablations of the §5.1 implementation choices;
//! * `oracle` — exact vs Monte-Carlo capacity oracle;
//! * `substrates` — MF training, KDE, revenue evaluation.
//!
//! The library part of this crate holds [`legacy`]: a frozen copy of the
//! seed's pre-refactor G-Greedy used as the measured baseline of the perf
//! trajectory (`BENCH_greedy.json`, emitted by the `bench_greedy` binary).

#![warn(missing_docs)]

pub mod legacy;

pub use legacy::seed_global_greedy;
