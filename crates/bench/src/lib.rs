//! # revmax-bench
//!
//! Criterion benchmarks for the REVMAX reproduction. The benches live in
//! `benches/`:
//!
//! * `greedy` — Table 2 analogue (algorithm running times);
//! * `scalability` — Figure 6 analogue (G-Greedy vs dataset size);
//! * `heaps`, `lazy_forward` — ablations of the §5.1 implementation choices;
//! * `oracle` — exact vs Monte-Carlo capacity oracle;
//! * `substrates` — MF training, KDE, revenue evaluation.
//!
//! This crate intentionally has no library code of its own.
