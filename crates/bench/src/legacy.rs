//! A frozen copy of the seed's (pre-refactor) G-Greedy implementation, kept
//! verbatim so the perf trajectory in `BENCH_greedy.json` measures the new
//! engine + driver against the code this PR replaced:
//!
//! * the hash-based [`HashIncrementalRevenue`] evaluator, addressed through
//!   the triple-based API (one binary search per marginal evaluation);
//! * per-candidate `CandidateState` with three `Vec`s allocated per candidate;
//! * one heap round-trip per display-blocked slot (no endgame drain);
//! * per-slot re-evaluation bursts (no batched group walk).
//!
//! Do not "fix" or optimise this module — its whole value is staying slow in
//! exactly the ways the seed was.

use revmax_algorithms::{GreedyOutcome, LazyMaxHeap};
use revmax_core::{CandidateId, HashIncrementalRevenue, Instance, TimeStep, Triple};

/// Per-candidate cached state of the seed implementation: one slot per time
/// step, three `Vec`s per candidate.
struct CandidateState {
    values: Vec<f64>,
    flags: Vec<u32>,
    blocked: Vec<bool>,
}

impl CandidateState {
    fn best(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (t, (&v, &b)) in self.values.iter().zip(&self.blocked).enumerate() {
            if b {
                continue;
            }
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((t, v));
            }
        }
        best
    }
}

fn initial_values(inst: &Instance, cand: CandidateId) -> Vec<f64> {
    let item = inst.candidate_item(cand);
    inst.candidate_probs(cand)
        .iter()
        .enumerate()
        .map(|(t_idx, &q)| q * inst.price(item, TimeStep::from_index(t_idx)))
        .collect()
}

/// The seed's two-level-heap G-Greedy, verbatim (lazy forward on, saturation
/// respected). Returns the same outcome shape as the current implementation.
pub fn seed_global_greedy(inst: &Instance) -> GreedyOutcome {
    let horizon = inst.horizon() as usize;
    let num_cand = inst.num_candidates();
    let mut inc = HashIncrementalRevenue::new(inst);
    let mut evals: u64 = 0;

    let mut states: Vec<CandidateState> = Vec::with_capacity(num_cand);
    let mut roots = vec![f64::NEG_INFINITY; num_cand];
    for cand in inst.candidates() {
        let values = initial_values(inst, cand);
        let state = CandidateState {
            values,
            flags: vec![0; horizon],
            blocked: vec![false; horizon],
        };
        roots[cand.index()] = state.best().map_or(f64::NEG_INFINITY, |(_, v)| v);
        states.push(state);
    }
    let mut heap = LazyMaxHeap::new(&roots);
    let total_slots = inst.total_slots();

    while (inc.len() as u64) < total_slots {
        let Some((cand_idx, root_value)) = heap.pop() else {
            break;
        };
        if root_value <= 0.0 {
            break;
        }
        let cand = CandidateId(cand_idx);
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        let class = inst.class_of(item);
        let state = &mut states[cand_idx as usize];
        let Some((best_t, _)) = state.best() else {
            heap.remove(cand_idx);
            continue;
        };
        let z = Triple {
            user,
            item,
            t: TimeStep::from_index(best_t),
        };

        if inc.would_violate(z) {
            if inc.would_violate_display(z) {
                state.blocked[best_t] = true;
                match state.best() {
                    Some((_, v)) => heap.update(cand_idx, v),
                    None => heap.remove(cand_idx),
                }
            } else {
                heap.remove(cand_idx);
            }
            continue;
        }

        let stamp = inc.group_size(user, class) as u32;
        let up_to_date = state.flags[best_t] == stamp;
        if up_to_date {
            inc.insert(z);
            state.blocked[best_t] = true;
            match state.best() {
                Some((_, v)) => heap.update(cand_idx, v),
                None => heap.remove(cand_idx),
            }
        } else {
            for t_idx in 0..horizon {
                if state.blocked[t_idx] {
                    continue;
                }
                let triple = Triple {
                    user,
                    item,
                    t: TimeStep::from_index(t_idx),
                };
                state.values[t_idx] = inc.marginal_revenue(triple);
                state.flags[t_idx] = stamp;
                evals += 1;
            }
            match state.best() {
                Some((_, v)) => heap.update(cand_idx, v),
                None => heap.remove(cand_idx),
            }
        }
    }

    // As in the seed's `finish`: with saturation respected, the selection
    // objective IS the reported revenue (no scratch re-evaluation).
    let selection_objective = inc.revenue();
    let strategy = inc.into_strategy();
    GreedyOutcome {
        strategy,
        revenue: selection_objective,
        selection_objective,
        trace: Vec::new(),
        marginal_evaluations: evals,
        concurrency: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_algorithms::global_greedy;
    use revmax_core::InstanceBuilder;

    #[test]
    fn seed_implementation_matches_current_greedy() {
        let mut b = InstanceBuilder::new(3, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.7)
            .beta(2, 0.9)
            .capacity(0, 2)
            .capacity(1, 2)
            .capacity(2, 3)
            .prices(0, &[30.0, 24.0, 27.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[15.0, 15.0, 14.0]);
        for u in 0..3 {
            b.candidate(u, 0, &[0.4, 0.6, 0.5], 4.5);
            b.candidate(u, 1, &[0.7, 0.5, 0.8], 3.5);
            b.candidate(u, 2, &[0.3, 0.3, 0.4], 4.0);
        }
        let inst = b.build().unwrap();
        let seed = seed_global_greedy(&inst);
        let current = global_greedy(&inst);
        assert!((seed.revenue - current.revenue).abs() < 1e-9);
        assert_eq!(seed.strategy.len(), current.strategy.len());
        for z in current.strategy.iter() {
            assert!(seed.strategy.contains(z));
        }
    }
}
