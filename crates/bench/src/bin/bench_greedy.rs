//! Perf-trajectory baseline emitter: times the greedy algorithms on the
//! scaled Amazon-like dataset against BOTH incremental revenue engines (the
//! pre-refactor hash engine and the flat-arena engine) and writes a
//! machine-readable `BENCH_greedy.json` so future perf PRs have a baseline.
//!
//! Usage:
//! ```text
//! cargo run --release -p revmax-bench --bin bench_greedy [-- out.json]
//! ```
//! Environment (parsed through the shared `revmax_core::env` module):
//! * `REVMAX_BENCH_SCALE`   — dataset scale factor (default 0.02);
//! * `REVMAX_BENCH_SAMPLES` — timed samples per configuration (default 7).
//!
//! The emitter also asserts that both engines report revenues equal to 1e-9
//! on every algorithm, so a perf regression hunt can never silently change
//! results.

use revmax_algorithms::{plan, plan_order, EngineKind, PlannerConfig};
use revmax_bench::seed_global_greedy;
use revmax_core::{env, Instance};
use revmax_data::{generate, DatasetConfig};
use std::time::Instant;

struct Row {
    algorithm: &'static str,
    engine: &'static str,
    median_ns: u128,
    min_ns: u128,
    revenue: f64,
    strategy_len: usize,
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn time_runs<F: FnMut() -> (f64, usize)>(samples: usize, mut f: F) -> (u128, u128, f64, usize) {
    let mut times = Vec::with_capacity(samples);
    let (mut revenue, mut len) = (0.0, 0);
    for _ in 0..samples {
        let t0 = Instant::now();
        let (r, l) = f();
        times.push(t0.elapsed().as_nanos());
        revenue = r;
        len = l;
    }
    (
        median(times.clone()),
        *times.iter().min().expect("samples > 0"),
        revenue,
        len,
    )
}

fn bench_engine(
    inst: &Instance,
    engine: EngineKind,
    engine_name: &'static str,
    samples: usize,
    rows: &mut Vec<Row>,
) {
    let gg_cfg = PlannerConfig::default().with_engine(engine);
    let (median_ns, min_ns, revenue, strategy_len) = time_runs(samples, || {
        let out = plan(inst, &gg_cfg);
        (out.revenue, out.strategy.len())
    });
    rows.push(Row {
        algorithm: "GG",
        engine: engine_name,
        median_ns,
        min_ns,
        revenue,
        strategy_len,
    });

    let order: Vec<u32> = (1..=inst.horizon()).collect();
    let lg_cfg = PlannerConfig::default().with_engine(engine);
    let (median_ns, min_ns, revenue, strategy_len) = time_runs(samples, || {
        let out = plan_order(inst, &order, &lg_cfg);
        (out.revenue, out.strategy.len())
    });
    rows.push(Row {
        algorithm: "SLG",
        engine: engine_name,
        median_ns,
        min_ns,
        revenue,
        strategy_len,
    });
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_greedy.json".to_string());
    let scale: f64 = env::var_or("REVMAX_BENCH_SCALE", 0.02);
    let samples: usize = env::var_or("REVMAX_BENCH_SAMPLES", 7).max(1);

    eprintln!("generating amazon_like().scaled({scale}) ...");
    let config = DatasetConfig::amazon_like().scaled(scale);
    let ds = generate(&config);
    let inst = &ds.instance;
    eprintln!(
        "dataset: {} users, {} items, T = {}, {} candidate pairs, {} candidate triples",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates(),
        inst.num_candidate_triples()
    );

    let mut rows = Vec::new();
    // The true pre-refactor baseline: the seed's driver + hash engine, frozen
    // verbatim in `revmax_bench::legacy`.
    let (median_ns, min_ns, revenue, strategy_len) = time_runs(samples, || {
        let out = seed_global_greedy(inst);
        (out.revenue, out.strategy.len())
    });
    rows.push(Row {
        algorithm: "GG",
        engine: "seed_baseline",
        median_ns,
        min_ns,
        revenue,
        strategy_len,
    });
    bench_engine(
        inst,
        EngineKind::Hash,
        "hash_new_driver",
        samples,
        &mut rows,
    );
    bench_engine(inst, EngineKind::Flat, "flat_arena", samples, &mut rows);

    // Results must be identical across engines — speed is the only difference.
    for alg in ["GG", "SLG"] {
        let of = |engine: &str| {
            rows.iter()
                .find(|r| r.algorithm == alg && r.engine == engine)
                .expect("both engines benched")
        };
        let (hash, flat) = (of("hash_new_driver"), of("flat_arena"));
        assert!(
            (hash.revenue - flat.revenue).abs() <= 1e-9 * flat.revenue.abs().max(1.0),
            "{alg}: engines disagree: hash {} vs flat {}",
            hash.revenue,
            flat.revenue
        );
        assert_eq!(
            hash.strategy_len, flat.strategy_len,
            "{alg}: strategy sizes diverged"
        );
        let speedup = hash.median_ns as f64 / flat.median_ns as f64;
        eprintln!(
            "{alg}: hash {:>12} ns  flat {:>12} ns  speedup {speedup:.2}x  (revenue {:.4}, |S| = {})",
            hash.median_ns, flat.median_ns, flat.revenue, flat.strategy_len
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": \"amazon_like.scaled({scale})\",\n"
    ));
    json.push_str(&format!(
        "  \"num_users\": {}, \"num_items\": {}, \"horizon\": {}, \"num_candidates\": {},\n",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    ));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"measurements\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"engine\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"revenue\": {:.6}, \"strategy_len\": {}}}{}\n",
            r.algorithm,
            r.engine,
            r.median_ns,
            r.min_ns,
            r.revenue,
            r.strategy_len,
            if idx + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let gg_seed = rows
        .iter()
        .find(|r| r.algorithm == "GG" && r.engine == "seed_baseline")
        .unwrap();
    let gg_hash = rows
        .iter()
        .find(|r| r.algorithm == "GG" && r.engine == "hash_new_driver")
        .unwrap();
    let gg_flat = rows
        .iter()
        .find(|r| r.algorithm == "GG" && r.engine == "flat_arena")
        .unwrap();
    // Relative tolerance: both engines accumulate ~|S| incremental updates,
    // so agreement is to relative 1e-9, not absolute.
    assert!(
        (gg_seed.revenue - gg_flat.revenue).abs() <= 1e-9 * gg_flat.revenue.abs().max(1.0),
        "seed baseline disagrees with flat engine: {} vs {}",
        gg_seed.revenue,
        gg_flat.revenue
    );
    let speedup_vs_seed = gg_seed.median_ns as f64 / gg_flat.median_ns as f64;
    eprintln!("GG speedup vs pre-refactor seed baseline: {speedup_vs_seed:.2}x");
    json.push_str(&format!(
        "  \"gg_speedup_flat_over_seed\": {:.3},\n  \"gg_speedup_flat_over_hash_new_driver\": {:.3}\n}}\n",
        speedup_vs_seed,
        gg_hash.median_ns as f64 / gg_flat.median_ns as f64
    ));
    std::fs::write(&out_path, json).expect("write BENCH_greedy.json");
    eprintln!("wrote {out_path}");
}
