//! Perf-trajectory baseline emitter: times the greedy algorithms on the
//! scaled Amazon-like dataset against BOTH incremental revenue engines (the
//! pre-refactor hash engine and the flat-arena engine) and writes a
//! machine-readable `BENCH_greedy.json` so future perf PRs have a baseline.
//!
//! Usage:
//! ```text
//! cargo run --release -p revmax-bench --bin bench_greedy [-- out.json]
//! ```
//! Environment (parsed through the shared `revmax_core::env` module):
//! * `REVMAX_BENCH_SCALE`   — dataset scale factor (default 0.02);
//! * `REVMAX_BENCH_SAMPLES` — timed samples per configuration (default 7).
//!
//! The emitter also asserts that both engines report revenues equal to 1e-9
//! on every algorithm, so a perf regression hunt can never silently change
//! results.
//!
//! A second section benches the compiled marginal kernels: the same
//! amazon-shaped dataset regenerated with **one β per item class**
//! (`BetaSetting::PerClassRandom`, every class `BetaProfile::Uniform`), timed
//! in three interleaved modes —
//!
//! * `flat_generic` — `Aggregates::Off` + `kernel_batch = 0`: the full
//!   pre-kernel generic path (scalar slab walk, lazy-heap selection);
//! * `flat_walk`    — `Aggregates::Off` + the default driver: walk kernels
//!   on the tournament selection core, isolating the driver win;
//! * `flat_kernels` — the default config (`Aggregates::Auto`, tournament
//!   driver): the compiled-kernel hot path.
//!
//! All three are parity-asserted to relative 1e-9. Headlines under the
//! `uniform_beta` key: `gg_speedup_kernels_over_generic` (the tracked
//! number) plus `gg_speedup_aggregates_over_walk` (kernels vs walk, kept
//! from the pre-kernel schema).
//!
//! A third `stale_burst` section shapes the dataset for long stale runs
//! (3 item classes, so every insertion stales a large (user, class) group)
//! and times G-Greedy on the tournament driver (`kernel_batch = 8`) against
//! the scalar refresh loop (`kernel_batch = 0`), headline
//! `gg_speedup_batch8_over_scalar`.
//!
//! With `REVMAX_BENCH_ENFORCE=1` the emitter *fails* (panics) if any
//! kernel-vs-generic ratio — computed from per-mode **min** times, the
//! noise-robust statistic — drops below 0.95×; CI runs the smoke bench with
//! this tripwire armed.

use revmax_algorithms::{plan, plan_order, Aggregates, EngineKind, PlannerConfig};
use revmax_bench::seed_global_greedy;
use revmax_core::{env, Instance};
use revmax_data::{generate, BetaSetting, DatasetConfig};
use std::time::Instant;

struct Row {
    algorithm: &'static str,
    engine: &'static str,
    median_ns: u128,
    min_ns: u128,
    revenue: f64,
    strategy_len: usize,
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn time_runs<F: FnMut() -> (f64, usize)>(samples: usize, mut f: F) -> (u128, u128, f64, usize) {
    let mut times = Vec::with_capacity(samples);
    let (mut revenue, mut len) = (0.0, 0);
    for _ in 0..samples {
        let t0 = Instant::now();
        let (r, l) = f();
        times.push(t0.elapsed().as_nanos());
        revenue = r;
        len = l;
    }
    (
        median(times.clone()),
        *times.iter().min().expect("samples > 0"),
        revenue,
        len,
    )
}

fn bench_config(
    inst: &Instance,
    cfg: PlannerConfig,
    engine_name: &'static str,
    samples: usize,
    rows: &mut Vec<Row>,
) {
    let gg_cfg = cfg;
    let (median_ns, min_ns, revenue, strategy_len) = time_runs(samples, || {
        let out = plan(inst, &gg_cfg);
        (out.revenue, out.strategy.len())
    });
    rows.push(Row {
        algorithm: "GG",
        engine: engine_name,
        median_ns,
        min_ns,
        revenue,
        strategy_len,
    });

    let order: Vec<u32> = (1..=inst.horizon()).collect();
    let lg_cfg = cfg;
    let (median_ns, min_ns, revenue, strategy_len) = time_runs(samples, || {
        let out = plan_order(inst, &order, &lg_cfg);
        (out.revenue, out.strategy.len())
    });
    rows.push(Row {
        algorithm: "SLG",
        engine: engine_name,
        median_ns,
        min_ns,
        revenue,
        strategy_len,
    });
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_greedy.json".to_string());
    let scale: f64 = env::var_or("REVMAX_BENCH_SCALE", 0.02);
    let samples: usize = env::var_or("REVMAX_BENCH_SAMPLES", 7).max(1);

    eprintln!("generating amazon_like().scaled({scale}) ...");
    let config = DatasetConfig::amazon_like().scaled(scale);
    let ds = generate(&config);
    let inst = &ds.instance;
    eprintln!(
        "dataset: {} users, {} items, T = {}, {} candidate pairs, {} candidate triples",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates(),
        inst.num_candidate_triples()
    );

    let mut rows = Vec::new();
    // The true pre-refactor baseline: the seed's driver + hash engine, frozen
    // verbatim in `revmax_bench::legacy`.
    let (median_ns, min_ns, revenue, strategy_len) = time_runs(samples, || {
        let out = seed_global_greedy(inst);
        (out.revenue, out.strategy.len())
    });
    rows.push(Row {
        algorithm: "GG",
        engine: "seed_baseline",
        median_ns,
        min_ns,
        revenue,
        strategy_len,
    });
    bench_config(
        inst,
        PlannerConfig::default().with_engine(EngineKind::Hash),
        "hash_new_driver",
        samples,
        &mut rows,
    );
    bench_config(
        inst,
        PlannerConfig::default(),
        "flat_arena",
        samples,
        &mut rows,
    );

    // Results must be identical across engines — speed is the only difference.
    for alg in ["GG", "SLG"] {
        let of = |engine: &str| {
            rows.iter()
                .find(|r| r.algorithm == alg && r.engine == engine)
                .expect("both engines benched")
        };
        let (hash, flat) = (of("hash_new_driver"), of("flat_arena"));
        assert!(
            (hash.revenue - flat.revenue).abs() <= 1e-9 * flat.revenue.abs().max(1.0),
            "{alg}: engines disagree: hash {} vs flat {}",
            hash.revenue,
            flat.revenue
        );
        assert_eq!(
            hash.strategy_len, flat.strategy_len,
            "{alg}: strategy sizes diverged"
        );
        let speedup = hash.median_ns as f64 / flat.median_ns as f64;
        eprintln!(
            "{alg}: hash {:>12} ns  flat {:>12} ns  speedup {speedup:.2}x  (revenue {:.4}, |S| = {})",
            hash.median_ns, flat.median_ns, flat.revenue, flat.strategy_len
        );
    }

    // --- compiled marginal kernels: uniform-β amazon-shaped variant ---
    eprintln!("generating uniform-beta (per-class) variant ...");
    let mut agg_config = DatasetConfig::amazon_like().scaled(scale);
    agg_config.beta = BetaSetting::PerClassRandom;
    agg_config.name.push_str("-classbeta");
    let agg_ds = generate(&agg_config);
    let agg_inst = &agg_ds.instance;
    assert!(
        agg_inst.all_beta_uniform(),
        "per-class betas must make every class uniform"
    );
    // Samples are interleaved round-robin (generic, walk, kernels, …) so host
    // noise and cache warm-up hit every mode equally.
    let generic_cfg = PlannerConfig::default()
        .with_aggregates(Aggregates::Off)
        .with_kernel_batch(0);
    let walk_cfg = PlannerConfig::default().with_aggregates(Aggregates::Off);
    let kernel_cfg = PlannerConfig::default();
    let kernel_modes: [(&'static str, PlannerConfig); 3] = [
        ("flat_generic", generic_cfg),
        ("flat_walk", walk_cfg),
        ("flat_kernels", kernel_cfg),
    ];
    let order: Vec<u32> = (1..=agg_inst.horizon()).collect();
    let mut agg_rows = Vec::new();
    for (algorithm, runner) in [
        (
            "GG",
            Box::new(|cfg: &PlannerConfig| plan(agg_inst, cfg))
                as Box<dyn Fn(&PlannerConfig) -> revmax_algorithms::GreedyOutcome>,
        ),
        (
            "SLG",
            Box::new(|cfg: &PlannerConfig| plan_order(agg_inst, &order, cfg)),
        ),
    ] {
        let mut times = [Vec::new(), Vec::new(), Vec::new()];
        let mut results = [(0.0, 0usize); 3];
        for _ in 0..samples {
            for (mode, (_, cfg)) in kernel_modes.iter().enumerate() {
                let t0 = Instant::now();
                let out = runner(cfg);
                times[mode].push(t0.elapsed().as_nanos());
                results[mode] = (out.revenue, out.strategy.len());
            }
        }
        for (mode, (engine, _)) in kernel_modes.iter().enumerate() {
            agg_rows.push(Row {
                algorithm,
                engine,
                median_ns: median(times[mode].clone()),
                min_ns: *times[mode].iter().min().expect("samples > 0"),
                revenue: results[mode].0,
                strategy_len: results[mode].1,
            });
        }
    }
    let agg_row = |alg: &str, engine: &str| {
        agg_rows
            .iter()
            .find(|r| r.algorithm == alg && r.engine == engine)
            .expect("all kernel modes benched")
    };
    for alg in ["GG", "SLG"] {
        let generic = agg_row(alg, "flat_generic");
        for engine in ["flat_walk", "flat_kernels"] {
            let other = agg_row(alg, engine);
            assert!(
                (generic.revenue - other.revenue).abs() <= 1e-9 * generic.revenue.abs().max(1.0),
                "{alg}: kernel modes disagree: generic {} vs {engine} {}",
                generic.revenue,
                other.revenue
            );
            assert_eq!(
                generic.strategy_len, other.strategy_len,
                "{alg}: strategy sizes diverged across kernel modes"
            );
        }
        let kernels = agg_row(alg, "flat_kernels");
        let speedup = generic.median_ns as f64 / kernels.median_ns as f64;
        eprintln!(
            "{alg} uniform-beta: generic {:>12} ns  kernels {:>12} ns  speedup {speedup:.2}x",
            generic.median_ns, kernels.median_ns
        );
    }
    let kernel_speedup = |alg: &str| {
        agg_row(alg, "flat_generic").median_ns as f64
            / agg_row(alg, "flat_kernels").median_ns as f64
    };
    let agg_speedup = |alg: &str| {
        agg_row(alg, "flat_walk").median_ns as f64 / agg_row(alg, "flat_kernels").median_ns as f64
    };

    // --- stale-burst microbench: batched refresh vs the scalar loop ---
    // Three item classes over the amazon-shaped universe: every insertion
    // stales a large (user, class) group, so global greedy's heap tops form
    // long stale runs — exactly the shape the batched refresh targets.
    eprintln!("generating stale-burst (3-class) variant ...");
    let mut burst_config = DatasetConfig::amazon_like().scaled(scale);
    burst_config.num_classes = 3;
    burst_config.beta = BetaSetting::PerClassRandom;
    burst_config.name.push_str("-burst");
    let burst_ds = generate(&burst_config);
    let burst_inst = &burst_ds.instance;
    let burst_modes: [(&'static str, PlannerConfig); 2] = [
        ("batch_0", PlannerConfig::default().with_kernel_batch(0)),
        ("batch_8", PlannerConfig::default().with_kernel_batch(8)),
    ];
    let mut burst_times = [Vec::new(), Vec::new()];
    let mut burst_results = [(0.0, 0usize); 2];
    for _ in 0..samples {
        for (mode, (_, cfg)) in burst_modes.iter().enumerate() {
            let t0 = Instant::now();
            let out = plan(burst_inst, cfg);
            burst_times[mode].push(t0.elapsed().as_nanos());
            burst_results[mode] = (out.revenue, out.strategy.len());
        }
    }
    assert!(
        (burst_results[0].0 - burst_results[1].0).abs() <= 1e-9 * burst_results[0].0.abs().max(1.0),
        "stale burst: batched refresh changed revenue: {} vs {}",
        burst_results[0].0,
        burst_results[1].0
    );
    assert_eq!(
        burst_results[0].1, burst_results[1].1,
        "stale burst: batched refresh changed the strategy size"
    );
    let burst_rows: Vec<Row> = burst_modes
        .iter()
        .enumerate()
        .map(|(mode, (engine, _))| Row {
            algorithm: "GG",
            engine,
            median_ns: median(burst_times[mode].clone()),
            min_ns: *burst_times[mode].iter().min().expect("samples > 0"),
            revenue: burst_results[mode].0,
            strategy_len: burst_results[mode].1,
        })
        .collect();
    let burst_speedup = burst_rows[0].median_ns as f64 / burst_rows[1].median_ns as f64;
    eprintln!(
        "GG stale-burst: batch_0 {:>12} ns  batch_8 {:>12} ns  speedup {burst_speedup:.2}x",
        burst_rows[0].median_ns, burst_rows[1].median_ns
    );

    // Perf-regression tripwire (CI smoke): min-time ratios are the
    // noise-robust statistic on a 2-sample run.
    if env::var_or("REVMAX_BENCH_ENFORCE", 0u32) != 0 {
        let floor = 0.95;
        let min_ratio = |alg: &str| {
            agg_row(alg, "flat_generic").min_ns as f64 / agg_row(alg, "flat_kernels").min_ns as f64
        };
        for alg in ["GG", "SLG"] {
            let r = min_ratio(alg);
            assert!(
                r >= floor,
                "{alg}: kernel-vs-generic min-time ratio {r:.3} fell below {floor}"
            );
            eprintln!("enforce: {alg} kernel-vs-generic min-time ratio {r:.3} >= {floor}");
        }
        let r = burst_rows[0].min_ns as f64 / burst_rows[1].min_ns as f64;
        assert!(
            r >= floor,
            "stale burst: batch8-vs-scalar min-time ratio {r:.3} fell below {floor}"
        );
        eprintln!("enforce: stale-burst batch8-vs-scalar min-time ratio {r:.3} >= {floor}");
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dataset\": \"amazon_like.scaled({scale})\",\n"
    ));
    json.push_str(&format!(
        "  \"num_users\": {}, \"num_items\": {}, \"horizon\": {}, \"num_candidates\": {},\n",
        inst.num_users(),
        inst.num_items(),
        inst.horizon(),
        inst.num_candidates()
    ));
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str("  \"measurements\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"engine\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"revenue\": {:.6}, \"strategy_len\": {}}}{}\n",
            r.algorithm,
            r.engine,
            r.median_ns,
            r.min_ns,
            r.revenue,
            r.strategy_len,
            if idx + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let gg_seed = rows
        .iter()
        .find(|r| r.algorithm == "GG" && r.engine == "seed_baseline")
        .unwrap();
    let gg_hash = rows
        .iter()
        .find(|r| r.algorithm == "GG" && r.engine == "hash_new_driver")
        .unwrap();
    let gg_flat = rows
        .iter()
        .find(|r| r.algorithm == "GG" && r.engine == "flat_arena")
        .unwrap();
    // Relative tolerance: both engines accumulate ~|S| incremental updates,
    // so agreement is to relative 1e-9, not absolute.
    assert!(
        (gg_seed.revenue - gg_flat.revenue).abs() <= 1e-9 * gg_flat.revenue.abs().max(1.0),
        "seed baseline disagrees with flat engine: {} vs {}",
        gg_seed.revenue,
        gg_flat.revenue
    );
    let speedup_vs_seed = gg_seed.median_ns as f64 / gg_flat.median_ns as f64;
    eprintln!("GG speedup vs pre-refactor seed baseline: {speedup_vs_seed:.2}x");
    json.push_str(&format!(
        "  \"gg_speedup_flat_over_seed\": {:.3},\n  \"gg_speedup_flat_over_hash_new_driver\": {:.3},\n",
        speedup_vs_seed,
        gg_hash.median_ns as f64 / gg_flat.median_ns as f64
    ));
    json.push_str("  \"uniform_beta\": {\n");
    json.push_str(&format!(
        "    \"dataset\": \"amazon_like.scaled({scale}) + BetaSetting::PerClassRandom\",\n"
    ));
    json.push_str(&format!(
        "    \"num_users\": {}, \"num_items\": {}, \"horizon\": {}, \"num_candidates\": {},\n",
        agg_inst.num_users(),
        agg_inst.num_items(),
        agg_inst.horizon(),
        agg_inst.num_candidates()
    ));
    json.push_str("    \"measurements\": [\n");
    for (idx, r) in agg_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"algorithm\": \"{}\", \"engine\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"revenue\": {:.6}, \"strategy_len\": {}}}{}\n",
            r.algorithm,
            r.engine,
            r.median_ns,
            r.min_ns,
            r.revenue,
            r.strategy_len,
            if idx + 1 < agg_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"gg_speedup_kernels_over_generic\": {:.3},\n    \"slg_speedup_kernels_over_generic\": {:.3},\n",
        kernel_speedup("GG"),
        kernel_speedup("SLG")
    ));
    json.push_str(&format!(
        "    \"gg_speedup_aggregates_over_walk\": {:.3},\n    \"slg_speedup_aggregates_over_walk\": {:.3}\n  }},\n",
        agg_speedup("GG"),
        agg_speedup("SLG")
    ));
    json.push_str("  \"stale_burst\": {\n");
    json.push_str(&format!(
        "    \"dataset\": \"amazon_like.scaled({scale}) + num_classes=3 + BetaSetting::PerClassRandom\",\n"
    ));
    json.push_str(&format!(
        "    \"num_users\": {}, \"num_items\": {}, \"horizon\": {}, \"num_candidates\": {},\n",
        burst_inst.num_users(),
        burst_inst.num_items(),
        burst_inst.horizon(),
        burst_inst.num_candidates()
    ));
    json.push_str("    \"measurements\": [\n");
    for (idx, r) in burst_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"algorithm\": \"{}\", \"engine\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"revenue\": {:.6}, \"strategy_len\": {}}}{}\n",
            r.algorithm,
            r.engine,
            r.median_ns,
            r.min_ns,
            r.revenue,
            r.strategy_len,
            if idx + 1 < burst_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"gg_speedup_batch8_over_scalar\": {burst_speedup:.3}\n  }}\n}}\n"
    ));
    std::fs::write(&out_path, json).expect("write BENCH_greedy.json");
    eprintln!("wrote {out_path}");
}
