//! Accuracy metrics for rating prediction (RMSE, MAE) and ranking
//! (precision@k against a relevance threshold).

/// Root-mean-square error over (truth, prediction) pairs; 0 for empty input.
pub fn rmse(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let sse: f64 = pairs.iter().map(|(y, p)| (y - p) * (y - p)).sum();
    (sse / pairs.len() as f64).sqrt()
}

/// Mean absolute error over (truth, prediction) pairs; 0 for empty input.
pub fn mae(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(y, p)| (y - p).abs()).sum::<f64>() / pairs.len() as f64
}

/// Precision@k: fraction of the top-`k` ranked items (by predicted score) whose
/// true rating is at least `relevance_threshold`.
///
/// `scored` contains `(true_rating, predicted_score)` pairs for one user.
pub fn precision_at_k(scored: &[(f64, f64)], k: usize, relevance_threshold: f64) -> f64 {
    if scored.is_empty() || k == 0 {
        return 0.0;
    }
    let mut ranked: Vec<&(f64, f64)> = scored.iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top = &ranked[..k.min(ranked.len())];
    let relevant = top
        .iter()
        .filter(|(truth, _)| *truth >= relevance_threshold)
        .count();
    relevant as f64 / top.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_predictions_is_zero() {
        let pairs = vec![(3.0, 3.0), (5.0, 5.0)];
        assert_eq!(rmse(&pairs), 0.0);
        assert_eq!(mae(&pairs), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // errors of 1 and -1 -> rmse 1, mae 1
        let pairs = vec![(3.0, 4.0), (5.0, 4.0)];
        assert!((rmse(&pairs) - 1.0).abs() < 1e-12);
        assert!((mae(&pairs) - 1.0).abs() < 1e-12);
        // errors 3, 0 -> rmse sqrt(4.5)
        let pairs = vec![(1.0, 4.0), (4.0, 4.0)];
        assert!((rmse(&pairs) - 4.5f64.sqrt()).abs() < 1e-12);
        assert!((mae(&pairs) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        assert_eq!(rmse(&[]), 0.0);
        assert_eq!(mae(&[]), 0.0);
        assert_eq!(precision_at_k(&[], 5, 4.0), 0.0);
    }

    #[test]
    fn precision_at_k_counts_relevant_items() {
        // Predictions rank items as: (5.0 truth), (2.0 truth), (4.0 truth)
        let scored = vec![(5.0, 0.9), (2.0, 0.8), (4.0, 0.7)];
        assert!((precision_at_k(&scored, 2, 4.0) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&scored, 3, 4.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&scored, 0, 4.0), 0.0);
        // k larger than the list uses the whole list.
        assert!((precision_at_k(&scored, 10, 4.0) - 2.0 / 3.0).abs() < 1e-12);
    }
}
