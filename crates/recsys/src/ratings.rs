//! Rating data: observed (user, item, rating) triples, splits, and folds.
//!
//! The paper trains a "vanilla" matrix-factorization model on the observed
//! ratings of the crawled Amazon/Epinions datasets and reports RMSE under
//! five-fold cross validation. This module provides the rating container and
//! the split/fold machinery that [`crate::MatrixFactorization`] consumes.

use rand::seq::SliceRandom;
use rand::Rng;

/// One observed rating `r_ui`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// User index.
    pub user: u32,
    /// Item index.
    pub item: u32,
    /// Observed rating value (e.g. 1–5 stars).
    pub value: f64,
}

/// A collection of observed ratings over a fixed user/item universe.
#[derive(Debug, Clone, Default)]
pub struct RatingSet {
    num_users: u32,
    num_items: u32,
    ratings: Vec<Rating>,
}

impl RatingSet {
    /// Creates an empty rating set over the given universe.
    pub fn new(num_users: u32, num_items: u32) -> Self {
        RatingSet {
            num_users,
            num_items,
            ratings: Vec::new(),
        }
    }

    /// Creates a rating set from parts, clamping out-of-range indices away.
    pub fn from_ratings(num_users: u32, num_items: u32, ratings: Vec<Rating>) -> Self {
        let ratings = ratings
            .into_iter()
            .filter(|r| r.user < num_users && r.item < num_items)
            .collect();
        RatingSet {
            num_users,
            num_items,
            ratings,
        }
    }

    /// Number of users in the universe.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items in the universe.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of observed ratings.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether no rating has been observed.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// Adds a rating (ignored if out of the universe).
    pub fn push(&mut self, user: u32, item: u32, value: f64) {
        if user < self.num_users && item < self.num_items {
            self.ratings.push(Rating { user, item, value });
        }
    }

    /// Slice of all observed ratings.
    pub fn ratings(&self) -> &[Rating] {
        &self.ratings
    }

    /// Mean of all observed rating values (0 if empty).
    pub fn global_mean(&self) -> f64 {
        if self.ratings.is_empty() {
            0.0
        } else {
            self.ratings.iter().map(|r| r.value).sum::<f64>() / self.ratings.len() as f64
        }
    }

    /// Density of the rating matrix: `|ratings| / (|U| · |I|)`.
    pub fn density(&self) -> f64 {
        if self.num_users == 0 || self.num_items == 0 {
            0.0
        } else {
            self.ratings.len() as f64 / (self.num_users as f64 * self.num_items as f64)
        }
    }

    /// Number of ratings per item.
    pub fn item_rating_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_items as usize];
        for r in &self.ratings {
            counts[r.item as usize] += 1;
        }
        counts
    }

    /// Number of ratings per user.
    pub fn user_rating_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_users as usize];
        for r in &self.ratings {
            counts[r.user as usize] += 1;
        }
        counts
    }

    /// Drops items with fewer than `min_ratings` ratings (the paper filters
    /// items with fewer than 10 ratings) and returns the filtered set.
    pub fn filter_items_with_min_ratings(&self, min_ratings: u32) -> RatingSet {
        let counts = self.item_rating_counts();
        let ratings = self
            .ratings
            .iter()
            .copied()
            .filter(|r| counts[r.item as usize] >= min_ratings)
            .collect();
        RatingSet {
            num_users: self.num_users,
            num_items: self.num_items,
            ratings,
        }
    }

    /// Random train/test split with the given test fraction.
    pub fn split<R: Rng>(&self, test_fraction: f64, rng: &mut R) -> (RatingSet, RatingSet) {
        let mut shuffled = self.ratings.clone();
        shuffled.shuffle(rng);
        let n_test = ((shuffled.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.min(shuffled.len());
        let test = shuffled[..n_test].to_vec();
        let train = shuffled[n_test..].to_vec();
        (
            RatingSet {
                num_users: self.num_users,
                num_items: self.num_items,
                ratings: train,
            },
            RatingSet {
                num_users: self.num_users,
                num_items: self.num_items,
                ratings: test,
            },
        )
    }

    /// Splits the ratings into `k` folds for cross validation.
    pub fn folds<R: Rng>(&self, k: usize, rng: &mut R) -> Vec<RatingSet> {
        assert!(k >= 1, "need at least one fold");
        let mut shuffled = self.ratings.clone();
        shuffled.shuffle(rng);
        let mut folds: Vec<Vec<Rating>> = vec![Vec::new(); k];
        for (idx, r) in shuffled.into_iter().enumerate() {
            folds[idx % k].push(r);
        }
        folds
            .into_iter()
            .map(|ratings| RatingSet {
                num_users: self.num_users,
                num_items: self.num_items,
                ratings,
            })
            .collect()
    }

    /// Returns (train, test) pairs for `k`-fold cross validation.
    pub fn cross_validation_splits<R: Rng>(
        &self,
        k: usize,
        rng: &mut R,
    ) -> Vec<(RatingSet, RatingSet)> {
        let folds = self.folds(k, rng);
        (0..k)
            .map(|test_idx| {
                let test = folds[test_idx].clone();
                let mut train = RatingSet::new(self.num_users, self.num_items);
                for (idx, fold) in folds.iter().enumerate() {
                    if idx != test_idx {
                        train.ratings.extend_from_slice(&fold.ratings);
                    }
                }
                (train, test)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_set() -> RatingSet {
        let mut rs = RatingSet::new(4, 3);
        rs.push(0, 0, 5.0);
        rs.push(0, 1, 3.0);
        rs.push(1, 0, 4.0);
        rs.push(1, 2, 2.0);
        rs.push(2, 1, 1.0);
        rs.push(3, 2, 5.0);
        rs
    }

    #[test]
    fn push_ignores_out_of_range() {
        let mut rs = RatingSet::new(2, 2);
        rs.push(0, 0, 5.0);
        rs.push(5, 0, 5.0);
        rs.push(0, 9, 5.0);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn global_mean_and_density() {
        let rs = sample_set();
        assert!((rs.global_mean() - 20.0 / 6.0).abs() < 1e-12);
        assert!((rs.density() - 6.0 / 12.0).abs() < 1e-12);
        assert_eq!(RatingSet::new(0, 0).density(), 0.0);
        assert_eq!(RatingSet::new(2, 2).global_mean(), 0.0);
    }

    #[test]
    fn counts_per_user_and_item() {
        let rs = sample_set();
        assert_eq!(rs.item_rating_counts(), vec![2, 2, 2]);
        assert_eq!(rs.user_rating_counts(), vec![2, 2, 1, 1]);
    }

    #[test]
    fn filter_items_with_min_ratings_drops_sparse_items() {
        let mut rs = sample_set();
        rs.push(0, 2, 4.0); // item 2 now has 3 ratings
        let filtered = rs.filter_items_with_min_ratings(3);
        assert!(filtered.ratings().iter().all(|r| r.item == 2));
        assert_eq!(filtered.len(), 3);
    }

    #[test]
    fn split_partitions_all_ratings() {
        let rs = sample_set();
        let mut rng = StdRng::seed_from_u64(7);
        let (train, test) = rs.split(0.33, &mut rng);
        assert_eq!(train.len() + test.len(), rs.len());
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn folds_cover_everything_once() {
        let rs = sample_set();
        let mut rng = StdRng::seed_from_u64(7);
        let folds = rs.folds(3, &mut rng);
        assert_eq!(folds.iter().map(|f| f.len()).sum::<usize>(), rs.len());
        let splits = rs.cross_validation_splits(3, &mut rng);
        assert_eq!(splits.len(), 3);
        for (train, test) in splits {
            assert_eq!(train.len() + test.len(), rs.len());
            assert!(!test.is_empty());
        }
    }

    #[test]
    fn from_ratings_filters_universe() {
        let rs = RatingSet::from_ratings(
            2,
            2,
            vec![
                Rating {
                    user: 0,
                    item: 0,
                    value: 1.0,
                },
                Rating {
                    user: 3,
                    item: 0,
                    value: 1.0,
                },
            ],
        );
        assert_eq!(rs.len(), 1);
    }
}
