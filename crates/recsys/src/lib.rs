//! # revmax-recsys
//!
//! The classical recommender-system substrate the REVMAX framework builds on.
//!
//! The paper deliberately keeps the rating-prediction component pluggable
//! ("our framework allows any type of RS to be used") and, for its
//! experiments, trains a vanilla matrix-factorization model with stochastic
//! gradient descent to obtain predicted ratings `r̂_ui`. Those predictions feed
//! the primitive adoption probabilities
//! `q(u, i, t) = Pr[val_ui ≥ p(i, t)] · r̂_ui / r_max` (§6).
//!
//! This crate implements that substrate from scratch:
//!
//! * [`RatingSet`] — observed ratings, splits, and k-fold cross validation;
//! * [`MatrixFactorization`] / [`MfConfig`] — biased MF trained by SGD, with
//!   RMSE evaluation and per-user top-N ranking;
//! * [`metrics`] — RMSE / MAE / precision@k.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod mf;
pub mod ratings;

pub use metrics::{mae, precision_at_k, rmse};
pub use mf::{cross_validate_rmse, MatrixFactorization, MfConfig};
pub use ratings::{Rating, RatingSet};
