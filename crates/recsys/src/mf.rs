//! Matrix factorization with biases, trained by stochastic gradient descent.
//!
//! This is the "vanilla MF model" the paper uses to compute predicted ratings
//! (`r̂_ui ≈ μ + b_u + b_i + p_u·q_i`), trained with the RMSE loss. The paper
//! reports a five-fold cross-validated RMSE of 0.91 on Amazon and 1.04 on
//! Epinions using MyMediaLite; [`cross_validate_rmse`] reproduces the protocol
//! on our generated datasets.

use crate::metrics::rmse;
use crate::ratings::RatingSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the SGD matrix-factorization trainer.
#[derive(Debug, Clone, Copy)]
pub struct MfConfig {
    /// Number of latent factors `f`.
    pub factors: usize,
    /// Number of SGD passes over the training ratings.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization weight for factors and biases.
    pub regularization: f64,
    /// Standard deviation of the random factor initialisation.
    pub init_std: f64,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f64,
    /// Whether to learn user/item bias terms.
    pub use_biases: bool,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for MfConfig {
    fn default() -> Self {
        MfConfig {
            factors: 16,
            epochs: 25,
            learning_rate: 0.01,
            regularization: 0.05,
            init_std: 0.1,
            lr_decay: 0.95,
            use_biases: true,
            seed: 42,
        }
    }
}

/// A trained matrix-factorization model.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    factors: usize,
    global_mean: f64,
    user_bias: Vec<f64>,
    item_bias: Vec<f64>,
    /// Row-major `num_users × factors`.
    user_factors: Vec<f64>,
    /// Row-major `num_items × factors`.
    item_factors: Vec<f64>,
    num_users: u32,
    num_items: u32,
    /// Rating range used for clamping predictions.
    min_rating: f64,
    max_rating: f64,
}

impl MatrixFactorization {
    /// Trains a model on the given ratings.
    pub fn train(ratings: &RatingSet, config: &MfConfig) -> Self {
        let num_users = ratings.num_users();
        let num_items = ratings.num_items();
        let f = config.factors.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = MatrixFactorization {
            factors: f,
            global_mean: ratings.global_mean(),
            user_bias: vec![0.0; num_users as usize],
            item_bias: vec![0.0; num_items as usize],
            user_factors: (0..num_users as usize * f)
                .map(|_| sample_gaussian(&mut rng) * config.init_std)
                .collect(),
            item_factors: (0..num_items as usize * f)
                .map(|_| sample_gaussian(&mut rng) * config.init_std)
                .collect(),
            num_users,
            num_items,
            min_rating: ratings
                .ratings()
                .iter()
                .map(|r| r.value)
                .fold(f64::INFINITY, f64::min),
            max_rating: ratings
                .ratings()
                .iter()
                .map(|r| r.value)
                .fold(f64::NEG_INFINITY, f64::max),
        };
        if ratings.is_empty() {
            model.min_rating = 1.0;
            model.max_rating = 5.0;
            return model;
        }

        let mut order: Vec<usize> = (0..ratings.len()).collect();
        let mut lr = config.learning_rate;
        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let r = ratings.ratings()[idx];
                let u = r.user as usize;
                let i = r.item as usize;
                let pred = model.raw_predict(u, i);
                let err = r.value - pred;
                if config.use_biases {
                    let bu = model.user_bias[u];
                    let bi = model.item_bias[i];
                    model.user_bias[u] += lr * (err - config.regularization * bu);
                    model.item_bias[i] += lr * (err - config.regularization * bi);
                }
                for k in 0..f {
                    let pu = model.user_factors[u * f + k];
                    let qi = model.item_factors[i * f + k];
                    model.user_factors[u * f + k] += lr * (err * qi - config.regularization * pu);
                    model.item_factors[i * f + k] += lr * (err * pu - config.regularization * qi);
                }
            }
            lr *= config.lr_decay;
        }
        model
    }

    /// Number of latent factors.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Number of users the model was trained over.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of items the model was trained over.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The maximum rating seen during training (`r_max` of the adoption model).
    pub fn max_rating(&self) -> f64 {
        self.max_rating
    }

    /// The minimum rating seen during training.
    pub fn min_rating(&self) -> f64 {
        self.min_rating
    }

    fn raw_predict(&self, user: usize, item: usize) -> f64 {
        let f = self.factors;
        let mut dot = 0.0;
        for k in 0..f {
            dot += self.user_factors[user * f + k] * self.item_factors[item * f + k];
        }
        self.global_mean + self.user_bias[user] + self.item_bias[item] + dot
    }

    /// Predicted rating `r̂_ui`, clamped to the observed rating range.
    pub fn predict(&self, user: u32, item: u32) -> f64 {
        if user >= self.num_users || item >= self.num_items {
            return self.global_mean;
        }
        let raw = self.raw_predict(user as usize, item as usize);
        if self.min_rating <= self.max_rating {
            raw.clamp(self.min_rating, self.max_rating)
        } else {
            raw
        }
    }

    /// Predicted ratings of every item for one user.
    pub fn predict_all_for_user(&self, user: u32) -> Vec<f64> {
        (0..self.num_items)
            .map(|item| self.predict(user, item))
            .collect()
    }

    /// RMSE of the model on a held-out rating set.
    pub fn evaluate_rmse(&self, test: &RatingSet) -> f64 {
        let pairs: Vec<(f64, f64)> = test
            .ratings()
            .iter()
            .map(|r| (r.value, self.predict(r.user, r.item)))
            .collect();
        rmse(&pairs)
    }

    /// The `n` items with the highest predicted rating for a user, sorted by
    /// descending prediction (ties broken by item id for determinism).
    pub fn top_n_for_user(&self, user: u32, n: usize) -> Vec<(u32, f64)> {
        let mut scored: Vec<(u32, f64)> = (0..self.num_items)
            .map(|item| (item, self.predict(user, item)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(n);
        scored
    }
}

/// Standard-normal sample via Box–Muller (keeps the dependency surface to `rand` core).
fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Five-fold (or `k`-fold) cross-validated RMSE, the evaluation protocol of §6.1.
pub fn cross_validate_rmse(ratings: &RatingSet, config: &MfConfig, k: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = ratings.cross_validation_splits(k, &mut rng);
    let mut total = 0.0;
    for (fold_idx, (train, test)) in splits.iter().enumerate() {
        let mut fold_config = *config;
        fold_config.seed = config.seed.wrapping_add(fold_idx as u64);
        let model = MatrixFactorization::train(train, &fold_config);
        total += model.evaluate_rmse(test);
    }
    total / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates ratings from a low-rank ground-truth model so MF can recover it.
    fn synthetic_ratings(num_users: u32, num_items: u32, per_user: usize, seed: u64) -> RatingSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = 4;
        let user_lat: Vec<f64> = (0..num_users as usize * f)
            .map(|_| rng.gen_range(-0.7..0.7))
            .collect();
        let item_lat: Vec<f64> = (0..num_items as usize * f)
            .map(|_| rng.gen_range(-0.7..0.7))
            .collect();
        let mut rs = RatingSet::new(num_users, num_items);
        for u in 0..num_users as usize {
            for _ in 0..per_user {
                let i = rng.gen_range(0..num_items) as usize;
                let mut dot = 0.0;
                for k in 0..f {
                    dot += user_lat[u * f + k] * item_lat[i * f + k];
                }
                let value = (3.0 + 1.5 * dot + rng.gen_range(-0.2..0.2)).clamp(1.0, 5.0);
                rs.push(u as u32, i as u32, value);
            }
        }
        rs
    }

    #[test]
    fn training_reduces_rmse_below_baseline() {
        let ratings = synthetic_ratings(60, 40, 25, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = ratings.split(0.2, &mut rng);
        let config = MfConfig {
            factors: 8,
            epochs: 80,
            learning_rate: 0.02,
            regularization: 0.02,
            lr_decay: 0.99,
            ..Default::default()
        };
        let model = MatrixFactorization::train(&train, &config);
        let model_rmse = model.evaluate_rmse(&test);
        // Baseline: predict the global mean for everything.
        let mean = train.global_mean();
        let baseline: Vec<(f64, f64)> = test.ratings().iter().map(|r| (r.value, mean)).collect();
        let baseline_rmse = rmse(&baseline);
        assert!(
            model_rmse < baseline_rmse * 0.9,
            "MF RMSE {model_rmse} should beat mean baseline {baseline_rmse}"
        );
    }

    #[test]
    fn predictions_are_clamped_to_rating_range() {
        let ratings = synthetic_ratings(20, 15, 10, 3);
        let model = MatrixFactorization::train(&ratings, &MfConfig::default());
        for u in 0..20 {
            for i in 0..15 {
                let p = model.predict(u, i);
                assert!(p >= model.min_rating() - 1e-9 && p <= model.max_rating() + 1e-9);
            }
        }
    }

    #[test]
    fn out_of_range_prediction_falls_back_to_mean() {
        let ratings = synthetic_ratings(5, 5, 4, 4);
        let model = MatrixFactorization::train(&ratings, &MfConfig::default());
        assert!((model.predict(100, 0) - ratings.global_mean()).abs() < 1e-9);
    }

    #[test]
    fn top_n_is_sorted_and_bounded() {
        let ratings = synthetic_ratings(10, 12, 8, 5);
        let model = MatrixFactorization::train(&ratings, &MfConfig::default());
        let top = model.top_n_for_user(0, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Requesting more than the catalogue returns everything.
        assert_eq!(model.top_n_for_user(0, 100).len(), 12);
    }

    #[test]
    fn empty_training_set_is_harmless() {
        let ratings = RatingSet::new(3, 3);
        let model = MatrixFactorization::train(&ratings, &MfConfig::default());
        // With no observations the prediction is the (zero) global mean, clamped
        // into the fallback 1..5 rating range — finite and deterministic.
        assert!(model.predict(0, 0).is_finite());
        assert_eq!(model.predict(0, 0), model.predict(2, 2));
        assert_eq!(model.num_users(), 3);
    }

    #[test]
    fn cross_validation_runs_and_is_finite() {
        let ratings = synthetic_ratings(30, 20, 10, 6);
        let config = MfConfig {
            factors: 4,
            epochs: 10,
            ..Default::default()
        };
        let cv = cross_validate_rmse(&ratings, &config, 5, 9);
        assert!(cv.is_finite());
        assert!(cv > 0.0 && cv < 2.5, "cv rmse {cv} out of plausible range");
    }

    #[test]
    fn deterministic_given_seed() {
        let ratings = synthetic_ratings(15, 10, 6, 7);
        let config = MfConfig {
            factors: 4,
            epochs: 5,
            ..Default::default()
        };
        let a = MatrixFactorization::train(&ratings, &config);
        let b = MatrixFactorization::train(&ratings, &config);
        for u in 0..15 {
            for i in 0..10 {
                assert_eq!(a.predict(u, i), b.predict(u, i));
            }
        }
    }
}
