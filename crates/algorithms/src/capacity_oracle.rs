//! Monte-Carlo capacity oracle for R-REVMAX.
//!
//! Computing `B_S(i, t) = Pr[at most q_i − 1 users adopt]` exactly is a
//! Poisson-binomial tail; [`revmax_core::ExactPoissonBinomial`] does it in
//! `O(n · q_i)`. When `q_i` is large (the paper samples capacities around
//! 5000) the Monte-Carlo estimator here is the practical alternative the paper
//! suggests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use revmax_core::CapacityOracle;
use std::cell::RefCell;

/// Monte-Carlo estimator of the Poisson-binomial tail probability.
#[derive(Debug)]
pub struct MonteCarloOracle {
    samples: usize,
    rng: RefCell<StdRng>,
}

impl MonteCarloOracle {
    /// Creates an estimator using `samples` simulations per query.
    pub fn new(samples: usize, seed: u64) -> Self {
        MonteCarloOracle {
            samples: samples.max(1),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Number of simulations per query.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

impl CapacityOracle for MonteCarloOracle {
    fn prob_at_most(&self, probs: &[f64], limit: u32) -> f64 {
        if probs.len() as u32 <= limit {
            return 1.0;
        }
        let mut rng = self.rng.borrow_mut();
        let mut hits = 0usize;
        for _ in 0..self.samples {
            let mut count = 0u32;
            for &p in probs {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    count += 1;
                    if count > limit {
                        break;
                    }
                }
            }
            if count <= limit {
                hits += 1;
            }
        }
        hits as f64 / self.samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::ExactPoissonBinomial;

    #[test]
    fn short_lists_are_certain() {
        let mc = MonteCarloOracle::new(100, 1);
        assert_eq!(mc.prob_at_most(&[], 0), 1.0);
        assert_eq!(mc.prob_at_most(&[0.9, 0.9], 2), 1.0);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let exact = ExactPoissonBinomial;
        let mc = MonteCarloOracle::new(40_000, 7);
        let probs = [0.3, 0.7, 0.5, 0.2, 0.9, 0.4];
        for limit in 0..5 {
            let e = exact.prob_at_most(&probs, limit);
            let m = mc.prob_at_most(&probs, limit);
            assert!((e - m).abs() < 0.02, "limit {limit}: exact {e} vs mc {m}");
        }
    }

    #[test]
    fn extreme_probabilities_are_handled() {
        let mc = MonteCarloOracle::new(2_000, 3);
        // All certain adopters: at most 1 of 3 succeeding is impossible.
        assert_eq!(mc.prob_at_most(&[1.0, 1.0, 1.0], 1), 0.0);
        // No adopters at all: always within any limit.
        assert_eq!(mc.prob_at_most(&[0.0, 0.0, 0.0], 0), 1.0);
    }
}
