//! Priority-queue building blocks shared by the greedy algorithms.
//!
//! The greedy algorithms need a max-heap keyed by (stale) marginal revenues
//! whose keys are *decreased* as the strategy grows. Instead of a heap with an
//! explicit `Decrease-Key`, we use the standard lazy-deletion scheme: every
//! update pushes a fresh entry and records the current value per element;
//! popped entries whose value no longer matches the recorded one are stale and
//! skipped. Combined with the lazy-forward rule this reproduces the behaviour
//! of the paper's two-level heap structure with negligible overhead.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: a value attached to an element index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    value: f64,
    element: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite values only; ties broken by element id for determinism.
        self.value
            .partial_cmp(&other.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.element.cmp(&self.element))
    }
}

/// A max-heap over element indices with lazily invalidated entries.
///
/// Each element has a single *current* value; [`LazyMaxHeap::update`] changes
/// it and pushes a new heap entry, and [`LazyMaxHeap::pop`] skips entries that
/// no longer match the current value (stale) or belong to removed elements.
#[derive(Debug, Clone)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<Entry>,
    current: Vec<f64>,
    alive: Vec<bool>,
}

impl LazyMaxHeap {
    /// Builds a heap over `values.len()` elements with the given initial values.
    pub fn new(values: &[f64]) -> Self {
        let mut heap = BinaryHeap::with_capacity(values.len());
        for (idx, &value) in values.iter().enumerate() {
            heap.push(Entry {
                value,
                element: idx as u32,
            });
        }
        LazyMaxHeap {
            heap,
            current: values.to_vec(),
            alive: vec![true; values.len()],
        }
    }

    /// Number of elements still alive (not removed).
    pub fn live_elements(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The current value of an element.
    pub fn value(&self, element: u32) -> f64 {
        self.current[element as usize]
    }

    /// Changes the value of an element (pushes a fresh entry).
    pub fn update(&mut self, element: u32, value: f64) {
        self.current[element as usize] = value;
        if self.alive[element as usize] {
            self.heap.push(Entry { value, element });
        }
    }

    /// Removes an element from consideration entirely.
    pub fn remove(&mut self, element: u32) {
        self.alive[element as usize] = false;
    }

    /// Re-inserts a previously removed element with a new value.
    pub fn revive(&mut self, element: u32, value: f64) {
        self.alive[element as usize] = true;
        self.update(element, value);
    }

    /// Pops the element with the maximum current value, or `None` if empty.
    ///
    /// The popped element stays alive; callers that select it should either
    /// [`LazyMaxHeap::remove`] it or [`LazyMaxHeap::update`] it afterwards.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        while let Some(entry) = self.heap.pop() {
            let idx = entry.element as usize;
            if !self.alive[idx] {
                continue;
            }
            if (entry.value - self.current[idx]).abs() > f64::EPSILON {
                continue; // stale
            }
            return Some((entry.element, entry.value));
        }
        None
    }

    /// Peeks at the maximum current value without popping.
    pub fn peek(&mut self) -> Option<(u32, f64)> {
        loop {
            let entry = *self.heap.peek()?;
            let idx = entry.element as usize;
            if !self.alive[idx] || (entry.value - self.current[idx]).abs() > f64::EPSILON {
                self.heap.pop();
                continue;
            }
            return Some((entry.element, entry.value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_value_order() {
        let mut heap = LazyMaxHeap::new(&[1.0, 5.0, 3.0]);
        assert_eq!(heap.pop(), Some((1, 5.0)));
        heap.remove(1);
        assert_eq!(heap.pop(), Some((2, 3.0)));
        heap.remove(2);
        assert_eq!(heap.pop(), Some((0, 1.0)));
        heap.remove(0);
        assert_eq!(heap.pop(), None);
    }

    #[test]
    fn stale_entries_are_skipped_after_update() {
        let mut heap = LazyMaxHeap::new(&[10.0, 5.0]);
        heap.update(0, 1.0); // element 0 decreased below element 1
        assert_eq!(heap.pop(), Some((1, 5.0)));
        heap.remove(1);
        assert_eq!(heap.pop(), Some((0, 1.0)));
    }

    #[test]
    fn removed_elements_never_surface() {
        let mut heap = LazyMaxHeap::new(&[10.0, 5.0, 7.0]);
        heap.remove(0);
        assert_eq!(heap.pop(), Some((2, 7.0)));
        heap.remove(2);
        assert_eq!(heap.pop(), Some((1, 5.0)));
        assert_eq!(heap.live_elements(), 1);
    }

    #[test]
    fn revive_brings_an_element_back() {
        let mut heap = LazyMaxHeap::new(&[2.0, 1.0]);
        heap.remove(0);
        heap.revive(0, 9.0);
        assert_eq!(heap.pop(), Some((0, 9.0)));
    }

    #[test]
    fn peek_does_not_consume_valid_entries() {
        let mut heap = LazyMaxHeap::new(&[4.0, 8.0]);
        assert_eq!(heap.peek(), Some((1, 8.0)));
        assert_eq!(heap.pop(), Some((1, 8.0)));
        assert_eq!(heap.value(0), 4.0);
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let mut heap = LazyMaxHeap::new(&[3.0, 3.0, 3.0]);
        assert_eq!(heap.pop(), Some((0, 3.0)));
    }

    #[test]
    fn repeated_updates_converge_to_latest_value() {
        let mut heap = LazyMaxHeap::new(&[1.0]);
        for v in [5.0, 4.0, 0.5, 2.5] {
            heap.update(0, v);
        }
        assert_eq!(heap.pop(), Some((0, 2.5)));
    }
}
