//! Priority-queue building blocks shared by the greedy algorithms.
//!
//! Two interchangeable max-heaps keyed by (stale) marginal revenues:
//!
//! * [`LazyMaxHeap`] — the lazy-deletion scheme: every update pushes a fresh
//!   entry and records the current value per element; popped entries whose
//!   value no longer matches the recorded one are stale and skipped;
//! * [`IndexedDaryHeap`] — a true decrease-key heap: a 4-ary implicit heap
//!   plus a position index per element, so updates sift the element in place
//!   and the heap never accumulates stale entries. Shallower than a binary
//!   heap (`log₄ n` levels) and at most one array slot per live element, it
//!   replaces the lazy heap's stale-entry pollution with `O(d · log_d n)`
//!   sifts — the profile-guided ROADMAP item (~30% of the remaining G-Greedy
//!   wall time sat in lazy-heap traffic).
//!
//! Both heaps break ties identically (maximum value, then the smaller
//! element id), so the greedy algorithms produce the same selection sequence
//! whichever heap backs them; [`HeapKind`] is the runtime-selected
//! dispatcher behind `GreedyOptions::heap`, and the equivalence is asserted
//! by the tests below and the driver-level tests in
//! `tests/algorithm_properties.rs`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: a value attached to an element index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    value: f64,
    element: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite values only; ties broken by element id for determinism.
        self.value
            .partial_cmp(&other.value)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.element.cmp(&self.element))
    }
}

/// A max-heap over element indices with lazily invalidated entries.
///
/// Each element has a single *current* value; [`LazyMaxHeap::update`] changes
/// it and pushes a new heap entry, and [`LazyMaxHeap::pop`] skips entries that
/// no longer match the current value (stale) or belong to removed elements.
#[derive(Debug, Clone)]
pub struct LazyMaxHeap {
    heap: BinaryHeap<Entry>,
    current: Vec<f64>,
    alive: Vec<bool>,
}

impl LazyMaxHeap {
    /// Builds a heap over `values.len()` elements with the given initial
    /// values, in `O(n)` (bottom-up heapify via `BinaryHeap::from`).
    pub fn new(values: &[f64]) -> Self {
        let entries: Vec<Entry> = values
            .iter()
            .enumerate()
            .map(|(idx, &value)| Entry {
                value,
                element: idx as u32,
            })
            .collect();
        LazyMaxHeap {
            heap: BinaryHeap::from(entries),
            current: values.to_vec(),
            alive: vec![true; values.len()],
        }
    }

    /// Number of elements still alive (not removed).
    pub fn live_elements(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The current value of an element.
    pub fn value(&self, element: u32) -> f64 {
        self.current[element as usize]
    }

    /// Changes the value of an element (pushes a fresh entry).
    pub fn update(&mut self, element: u32, value: f64) {
        self.current[element as usize] = value;
        if self.alive[element as usize] {
            self.heap.push(Entry { value, element });
        }
    }

    /// Removes an element from consideration entirely.
    pub fn remove(&mut self, element: u32) {
        self.alive[element as usize] = false;
    }

    /// Re-inserts a previously removed element with a new value.
    pub fn revive(&mut self, element: u32, value: f64) {
        self.alive[element as usize] = true;
        self.update(element, value);
    }

    /// Pops the element with the maximum current value, or `None` if empty.
    ///
    /// The popped element stays alive; callers that select it should either
    /// [`LazyMaxHeap::remove`] it or [`LazyMaxHeap::update`] it afterwards.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        while let Some(entry) = self.heap.pop() {
            let idx = entry.element as usize;
            if !self.alive[idx] {
                continue;
            }
            if (entry.value - self.current[idx]).abs() > f64::EPSILON {
                continue; // stale
            }
            return Some((entry.element, entry.value));
        }
        None
    }

    /// Peeks at the maximum current value without popping.
    pub fn peek(&mut self) -> Option<(u32, f64)> {
        loop {
            let entry = *self.heap.peek()?;
            let idx = entry.element as usize;
            if !self.alive[idx] || (entry.value - self.current[idx]).abs() > f64::EPSILON {
                self.heap.pop();
                continue;
            }
            return Some((entry.element, entry.value));
        }
    }
}

/// Branching factor of the indexed heap. Four children per node keeps the
/// tree shallow while sift-down still touches at most one or two cache lines
/// of the heap array per level.
const D: usize = 4;

/// Sentinel position for "element not currently in the heap array".
const NOT_IN_HEAP: u32 = u32::MAX;

/// A true decrease-key max-heap over element indices: a 4-ary implicit heap
/// with a per-element position index.
///
/// API contract matches [`LazyMaxHeap`]: [`IndexedDaryHeap::pop`] removes the
/// root element from the heap but leaves it alive (callers re-queue it with
/// [`IndexedDaryHeap::update`] or retire it with [`IndexedDaryHeap::remove`]),
/// updates of removed elements only record the value, and ties are broken
/// towards the smaller element id.
#[derive(Debug, Clone)]
pub struct IndexedDaryHeap {
    /// Heap array of element ids, max at index 0.
    heap: Vec<u32>,
    /// Current value per element (also kept for elements not in the heap).
    current: Vec<f64>,
    /// Position of each element in `heap`, or `NOT_IN_HEAP`.
    pos: Vec<u32>,
    alive: Vec<bool>,
}

impl IndexedDaryHeap {
    /// Builds a heap over `values.len()` elements with the given initial
    /// values, in `O(n)` (bottom-up heapify).
    pub fn new(values: &[f64]) -> Self {
        let n = values.len();
        let mut h = IndexedDaryHeap {
            heap: (0..n as u32).collect(),
            current: values.to_vec(),
            pos: (0..n as u32).collect(),
            alive: vec![true; n],
        };
        if n > 1 {
            for i in (0..=(n - 2) / D).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    /// Whether element `a` has strictly higher priority than element `b`
    /// (larger value, ties to the smaller id — the same total order as
    /// [`LazyMaxHeap`]).
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (va, vb) = (self.current[a as usize], self.current[b as usize]);
        va > vb || (va == vb && a < b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if self.before(self.heap[i], self.heap[parent]) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = i * D + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            for child in first + 1..(first + D).min(len) {
                if self.before(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if self.before(self.heap[best], self.heap[i]) {
                self.swap_slots(i, best);
                i = best;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }

    /// Detaches an element from the heap array (keeps `current` / `alive`).
    fn detach(&mut self, element: u32) {
        let p = self.pos[element as usize];
        if p == NOT_IN_HEAP {
            return;
        }
        let p = p as usize;
        let last = self.heap.len() - 1;
        self.swap_slots(p, last);
        self.heap.pop();
        self.pos[element as usize] = NOT_IN_HEAP;
        if p < self.heap.len() {
            // The element swapped into `p` may need to move either way.
            let moved = self.heap[p];
            self.sift_down(p);
            self.sift_up(self.pos[moved as usize] as usize);
        }
    }

    /// Number of elements still alive (not removed).
    pub fn live_elements(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// The current value of an element.
    pub fn value(&self, element: u32) -> f64 {
        self.current[element as usize]
    }

    /// Changes the value of an element, re-inserting it if it was popped.
    pub fn update(&mut self, element: u32, value: f64) {
        self.current[element as usize] = value;
        if !self.alive[element as usize] {
            return;
        }
        let p = self.pos[element as usize];
        if p == NOT_IN_HEAP {
            self.pos[element as usize] = self.heap.len() as u32;
            self.heap.push(element);
            self.sift_up(self.heap.len() - 1);
        } else {
            let p = p as usize;
            self.sift_up(p);
            self.sift_down(self.pos[element as usize] as usize);
        }
    }

    /// Removes an element from consideration entirely.
    pub fn remove(&mut self, element: u32) {
        self.alive[element as usize] = false;
        self.detach(element);
    }

    /// Re-inserts a previously removed element with a new value.
    pub fn revive(&mut self, element: u32, value: f64) {
        self.alive[element as usize] = true;
        self.update(element, value);
    }

    /// Pops the element with the maximum current value, or `None` if empty.
    ///
    /// The popped element stays alive; callers that select it should either
    /// [`IndexedDaryHeap::remove`] it or [`IndexedDaryHeap::update`] it
    /// afterwards.
    pub fn pop(&mut self) -> Option<(u32, f64)> {
        let root = *self.heap.first()?;
        self.detach(root);
        Some((root, self.current[root as usize]))
    }

    /// Peeks at the maximum current value without popping.
    pub fn peek(&self) -> Option<(u32, f64)> {
        self.heap.first().map(|&e| (e, self.current[e as usize]))
    }
}

/// Which heap implementation backs a greedy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapKind {
    /// The lazy-deletion binary heap (default). Measured fastest for the
    /// two-level greedy on the Amazon-shaped datasets: decreased keys are
    /// appended and bubble up barely at all, while true decrease-key sifting
    /// pays `O(d · log_d n)` scattered writes per update.
    #[default]
    Lazy,
    /// The indexed 4-ary decrease-key heap: no stale entries, bounded
    /// memory (one slot per live element), `O(1)` peek. Selectable for
    /// workloads where the lazy heap's stale-entry growth hurts (giant-heap
    /// layouts, memory-constrained serving).
    IndexedDary,
}

/// The heap contract the greedy drivers are generic over: a max-heap over
/// element indices with deterministic (value desc, element id asc)
/// tie-breaking. Drivers are monomorphised per heap type, so the choice costs
/// nothing on the hot path.
pub trait GreedyHeap: Send {
    /// Builds the heap over `values.len()` elements.
    fn build(values: &[f64]) -> Self;
    /// Pops the maximum element (stays alive; re-queue with
    /// [`GreedyHeap::update`] or retire with [`GreedyHeap::remove`]).
    fn pop(&mut self) -> Option<(u32, f64)>;
    /// Peeks at the maximum element without popping.
    fn peek(&mut self) -> Option<(u32, f64)>;
    /// Changes the value of an element (re-inserting it if popped).
    fn update(&mut self, element: u32, value: f64);
    /// Removes an element from consideration entirely.
    fn remove(&mut self, element: u32);
}

/// Whether move `(value, candidate id)` `a` precedes `b` in the sequential
/// selection order (larger value first, ties towards the smaller id) — the
/// same total order both heap implementations pop in.
#[inline]
pub(crate) fn precedes(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Refreshes a driver's *held* move after a step resolved the held element
/// `element` to `requeue` (its new root value, or `None` when retired).
///
/// Every rotation-based greedy driver (the sharded coordinator and the
/// batched sequential loops) keeps its best pending move pre-popped out of
/// the heap in a held slot. Fast path: when the re-queued value still beats
/// the heap top, the element simply stays held — no heap traffic at all.
/// (The plain pop-per-iteration loop pays a push + pop round trip for the
/// same situation; this saving is what the held-move rotation buys.) Because
/// both paths respect the heap's own (value desc, id asc) order, the
/// sequence of held moves is identical to the pop sequence of a loop that
/// re-queues eagerly.
#[inline]
pub(crate) fn refresh_held<H: GreedyHeap>(
    heap: &mut H,
    element: u32,
    requeue: Option<f64>,
) -> Option<(u32, f64)> {
    if let Some(v) = requeue {
        match heap.peek() {
            Some((top, top_v)) if !precedes((v, element), (top_v, top)) => {
                heap.update(element, v);
                heap.pop()
            }
            _ => Some((element, v)),
        }
    } else {
        heap.remove(element);
        heap.pop()
    }
}

impl GreedyHeap for LazyMaxHeap {
    #[inline]
    fn build(values: &[f64]) -> Self {
        LazyMaxHeap::new(values)
    }
    #[inline]
    fn pop(&mut self) -> Option<(u32, f64)> {
        LazyMaxHeap::pop(self)
    }
    #[inline]
    fn peek(&mut self) -> Option<(u32, f64)> {
        LazyMaxHeap::peek(self)
    }
    #[inline]
    fn update(&mut self, element: u32, value: f64) {
        LazyMaxHeap::update(self, element, value)
    }
    #[inline]
    fn remove(&mut self, element: u32) {
        LazyMaxHeap::remove(self, element)
    }
}

impl GreedyHeap for IndexedDaryHeap {
    #[inline]
    fn build(values: &[f64]) -> Self {
        IndexedDaryHeap::new(values)
    }
    #[inline]
    fn pop(&mut self) -> Option<(u32, f64)> {
        IndexedDaryHeap::pop(self)
    }
    #[inline]
    fn peek(&mut self) -> Option<(u32, f64)> {
        IndexedDaryHeap::peek(self)
    }
    #[inline]
    fn update(&mut self, element: u32, value: f64) {
        IndexedDaryHeap::update(self, element, value)
    }
    #[inline]
    fn remove(&mut self, element: u32) {
        IndexedDaryHeap::remove(self, element)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_value_order() {
        let mut heap = LazyMaxHeap::new(&[1.0, 5.0, 3.0]);
        assert_eq!(heap.pop(), Some((1, 5.0)));
        heap.remove(1);
        assert_eq!(heap.pop(), Some((2, 3.0)));
        heap.remove(2);
        assert_eq!(heap.pop(), Some((0, 1.0)));
        heap.remove(0);
        assert_eq!(heap.pop(), None);
    }

    #[test]
    fn stale_entries_are_skipped_after_update() {
        let mut heap = LazyMaxHeap::new(&[10.0, 5.0]);
        heap.update(0, 1.0); // element 0 decreased below element 1
        assert_eq!(heap.pop(), Some((1, 5.0)));
        heap.remove(1);
        assert_eq!(heap.pop(), Some((0, 1.0)));
    }

    #[test]
    fn removed_elements_never_surface() {
        let mut heap = LazyMaxHeap::new(&[10.0, 5.0, 7.0]);
        heap.remove(0);
        assert_eq!(heap.pop(), Some((2, 7.0)));
        heap.remove(2);
        assert_eq!(heap.pop(), Some((1, 5.0)));
        assert_eq!(heap.live_elements(), 1);
    }

    #[test]
    fn revive_brings_an_element_back() {
        let mut heap = LazyMaxHeap::new(&[2.0, 1.0]);
        heap.remove(0);
        heap.revive(0, 9.0);
        assert_eq!(heap.pop(), Some((0, 9.0)));
    }

    #[test]
    fn peek_does_not_consume_valid_entries() {
        let mut heap = LazyMaxHeap::new(&[4.0, 8.0]);
        assert_eq!(heap.peek(), Some((1, 8.0)));
        assert_eq!(heap.pop(), Some((1, 8.0)));
        assert_eq!(heap.value(0), 4.0);
    }

    #[test]
    fn ties_are_broken_deterministically() {
        let mut heap = LazyMaxHeap::new(&[3.0, 3.0, 3.0]);
        assert_eq!(heap.pop(), Some((0, 3.0)));
    }

    #[test]
    fn repeated_updates_converge_to_latest_value() {
        let mut heap = LazyMaxHeap::new(&[1.0]);
        for v in [5.0, 4.0, 0.5, 2.5] {
            heap.update(0, v);
        }
        assert_eq!(heap.pop(), Some((0, 2.5)));
    }

    #[test]
    fn dary_pops_in_descending_value_order() {
        let mut heap = IndexedDaryHeap::new(&[1.0, 5.0, 3.0, 4.0, 2.0]);
        let mut got = Vec::new();
        while let Some((e, v)) = heap.pop() {
            got.push((e, v));
            heap.remove(e);
        }
        assert_eq!(got, vec![(1, 5.0), (3, 4.0), (2, 3.0), (4, 2.0), (0, 1.0)]);
        assert_eq!(heap.live_elements(), 0);
    }

    #[test]
    fn dary_decrease_key_moves_element_in_place() {
        let mut heap = IndexedDaryHeap::new(&[10.0, 5.0, 7.0]);
        heap.update(0, 1.0);
        assert_eq!(heap.peek(), Some((2, 7.0)));
        assert_eq!(heap.pop(), Some((2, 7.0)));
        heap.remove(2);
        assert_eq!(heap.pop(), Some((1, 5.0)));
        heap.remove(1);
        assert_eq!(heap.pop(), Some((0, 1.0)));
        assert_eq!(heap.value(0), 1.0);
    }

    #[test]
    fn dary_pop_then_update_requeues() {
        let mut heap = IndexedDaryHeap::new(&[4.0, 8.0]);
        assert_eq!(heap.pop(), Some((1, 8.0)));
        heap.update(1, 3.0); // re-queued below element 0
        assert_eq!(heap.pop(), Some((0, 4.0)));
        heap.remove(0);
        assert_eq!(heap.pop(), Some((1, 3.0)));
    }

    #[test]
    fn dary_remove_and_revive() {
        let mut heap = IndexedDaryHeap::new(&[2.0, 1.0]);
        heap.remove(0);
        assert_eq!(heap.pop(), Some((1, 1.0)));
        heap.update(1, 1.0);
        heap.revive(0, 9.0);
        assert_eq!(heap.pop(), Some((0, 9.0)));
    }

    #[test]
    fn dary_ties_break_to_smaller_element() {
        let mut heap = IndexedDaryHeap::new(&[3.0, 3.0, 3.0]);
        assert_eq!(heap.pop(), Some((0, 3.0)));
    }

    /// Deterministic pseudo-random op stream: both heaps must produce the
    /// identical pop sequence under interleaved update / remove / pop /
    /// revive operations.
    #[test]
    fn lazy_and_dary_heaps_are_observationally_equivalent() {
        let n = 64u32;
        let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift stream
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let values: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64 / 10.0).collect();
        let mut lazy = LazyMaxHeap::new(&values);
        let mut dary = IndexedDaryHeap::new(&values);
        let mut removed = vec![false; n as usize];
        for _step in 0..2000 {
            match next() % 5 {
                0 | 1 => {
                    let a = lazy.pop();
                    let b = dary.pop();
                    assert_eq!(a, b, "pop diverged");
                    if let Some((e, v)) = a {
                        // Heap contract: popped elements must be re-queued or
                        // removed, like the greedy drivers do.
                        if next() % 2 == 0 {
                            lazy.remove(e);
                            dary.remove(e);
                            removed[e as usize] = true;
                        } else {
                            let nv = v - (next() % 50) as f64 / 10.0;
                            lazy.update(e, nv);
                            dary.update(e, nv);
                        }
                    }
                }
                2 => {
                    let e = (next() % n as u64) as u32;
                    if !removed[e as usize] {
                        let nv = (next() % 1000) as f64 / 10.0;
                        lazy.update(e, nv);
                        dary.update(e, nv);
                    }
                }
                3 => {
                    let e = (next() % n as u64) as u32;
                    lazy.remove(e);
                    dary.remove(e);
                    removed[e as usize] = true;
                }
                _ => {
                    let e = (next() % n as u64) as u32;
                    if removed[e as usize] {
                        let nv = (next() % 1000) as f64 / 10.0;
                        lazy.revive(e, nv);
                        dary.revive(e, nv);
                        removed[e as usize] = false;
                    }
                }
            }
            assert_eq!(lazy.live_elements(), dary.live_elements());
        }
    }
}
