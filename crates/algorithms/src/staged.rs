//! Incomplete price information (§6.3 / Figure 7): prices become available in
//! sub-horizon batches, so the global algorithms can only optimise one
//! sub-horizon at a time, carrying the already-committed recommendations
//! forward.
//!
//! With cut-off `c`, the first sub-horizon is `1..=c` and the second is
//! `c+1..=T`. SL-Greedy is unaffected (it is already chronological), G-Greedy
//! and RL-Greedy lose the ability to plan holistically across the cut.

use crate::global_greedy::GreedyOutcome;
use crate::heap::LazyMaxHeap;
use crate::local_greedy::{run_time_step, sample_permutations};
use revmax_core::{CandidateId, IncrementalRevenue, Instance, RevenueEngine as _, TimeStep};

/// Expands stage end points (e.g. `[2, 7]`) into inclusive time ranges
/// (`[(1,2), (3,7)]`). The last stage is extended to the horizon if needed.
pub fn stages_from_ends(horizon: u32, stage_ends: &[u32]) -> Vec<(u32, u32)> {
    let mut stages = Vec::new();
    let mut lo = 1u32;
    for &end in stage_ends {
        let hi = end.min(horizon);
        if hi >= lo {
            stages.push((lo, hi));
            lo = hi + 1;
        }
    }
    if lo <= horizon {
        stages.push((lo, horizon));
    }
    stages
}

/// G-Greedy restricted to price information arriving per sub-horizon: the
/// greedy is run stage by stage, each stage only selecting triples whose time
/// step lies inside the stage, on top of the selections of earlier stages.
pub fn global_greedy_staged(inst: &Instance, stage_ends: &[u32]) -> GreedyOutcome {
    let stages = stages_from_ends(inst.horizon(), stage_ends);
    let horizon = inst.horizon() as usize;
    let mut inc = IncrementalRevenue::new(inst);
    let mut evals = 0u64;
    let mut trace = Vec::new();

    for (lo, hi) in stages {
        // Ground set of this stage: candidate triples with t in [lo, hi].
        let num_elements = inst.num_candidates() * horizon;
        let mut values = vec![f64::NEG_INFINITY; num_elements];
        let mut flags = vec![0u32; num_elements];
        for cand in inst.candidates() {
            for t in lo..=hi {
                let element = cand.index() * horizon + (t as usize - 1);
                values[element] = inc.marginal_revenue_cand(cand, TimeStep(t));
                flags[element] = inc.group_size_cand(cand) as u32;
                evals += 1;
            }
        }
        let mut heap = LazyMaxHeap::new(&values);
        while let Some((element, value)) = heap.pop() {
            if value <= 0.0 {
                break;
            }
            let cand = CandidateId(element / horizon as u32);
            let t = TimeStep::from_index((element as usize) % horizon);
            if inc.would_violate_cand(cand, t) {
                heap.remove(element);
                continue;
            }
            let group_size = inc.group_size_cand(cand) as u32;
            if flags[element as usize] == group_size {
                inc.insert_cand(cand, t);
                heap.remove(element);
                trace.push(inc.revenue());
            } else {
                let fresh = inc.marginal_revenue_cand(cand, t);
                evals += 1;
                flags[element as usize] = group_size;
                heap.update(element, fresh);
            }
        }
    }

    let revenue = inc.revenue();
    GreedyOutcome {
        revenue,
        selection_objective: revenue,
        strategy: inc.into_strategy(),
        trace,
        marginal_evaluations: evals,
        concurrency: Default::default(),
    }
}

/// RL-Greedy under staged price availability: within each stage, `permutations`
/// random orderings of that stage's time steps are tried on top of the
/// committed prefix, and the best continuation is kept.
pub fn randomized_local_greedy_staged(
    inst: &Instance,
    stage_ends: &[u32],
    permutations: usize,
    seed: u64,
) -> GreedyOutcome {
    let stages = stages_from_ends(inst.horizon(), stage_ends);
    let mut inc = IncrementalRevenue::new(inst);
    let mut evals = 0u64;
    let mut trace = Vec::new();

    for (stage_idx, (lo, hi)) in stages.iter().enumerate() {
        let width = hi - lo + 1;
        let orders = sample_permutations(width, permutations, seed.wrapping_add(stage_idx as u64));
        let mut best: Option<(IncrementalRevenue<'_>, u64, Vec<f64>)> = None;
        for order in &orders {
            let mut candidate_inc = inc.clone();
            let mut candidate_evals = 0u64;
            let mut candidate_trace = Vec::new();
            for &offset in order {
                let t = TimeStep(lo + offset - 1);
                run_time_step::<_, LazyMaxHeap>(
                    inst,
                    &mut candidate_inc,
                    t,
                    false,
                    crate::config::PlannerConfig::default().kernel_batch,
                    &mut candidate_evals,
                    &mut candidate_trace,
                );
            }
            if best
                .as_ref()
                .is_none_or(|(b, _, _)| candidate_inc.revenue() > b.revenue())
            {
                best = Some((candidate_inc, candidate_evals, candidate_trace));
            }
            evals += candidate_evals;
        }
        let (best_inc, _, best_trace) = best.expect("at least one ordering per stage");
        inc = best_inc;
        trace.extend(best_trace);
    }

    let revenue = inc.revenue();
    GreedyOutcome {
        revenue,
        selection_objective: revenue,
        strategy: inc.into_strategy(),
        trace,
        marginal_evaluations: evals,
        concurrency: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_greedy::global_greedy;
    use crate::local_greedy::randomized_local_greedy;
    use revmax_core::{revenue, InstanceBuilder};

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 3, 4);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.6)
            .beta(2, 0.8)
            .capacity(0, 2)
            .capacity(1, 2)
            .capacity(2, 3)
            .prices(0, &[25.0, 20.0, 35.0, 15.0])
            .prices(1, &[9.0, 12.0, 8.0, 10.0])
            .prices(2, &[14.0, 13.0, 16.0, 12.0]);
        for u in 0..3 {
            b.candidate(u, 0, &[0.5, 0.6, 0.3, 0.7], 4.0);
            b.candidate(u, 1, &[0.6, 0.4, 0.7, 0.5], 3.0);
            b.candidate(u, 2, &[0.3, 0.35, 0.25, 0.4], 3.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn stage_expansion_covers_the_horizon() {
        assert_eq!(stages_from_ends(7, &[2]), vec![(1, 2), (3, 7)]);
        assert_eq!(stages_from_ends(7, &[4]), vec![(1, 4), (5, 7)]);
        assert_eq!(stages_from_ends(7, &[7]), vec![(1, 7)]);
        assert_eq!(stages_from_ends(5, &[2, 4]), vec![(1, 2), (3, 4), (5, 5)]);
        assert_eq!(stages_from_ends(3, &[9]), vec![(1, 3)]);
    }

    #[test]
    fn staged_greedy_is_valid_and_no_better_than_holistic() {
        let inst = instance();
        let full = global_greedy(&inst);
        for cut in [1, 2, 3] {
            let staged = global_greedy_staged(&inst, &[cut]);
            assert!(staged.strategy.validate(&inst).is_ok());
            assert!((staged.revenue - revenue(&inst, &staged.strategy)).abs() < 1e-9);
            assert!(
                staged.revenue <= full.revenue + 1e-9,
                "cut {cut}: staged {} exceeded holistic {}",
                staged.revenue,
                full.revenue
            );
        }
    }

    #[test]
    fn staged_with_full_horizon_matches_unstaged() {
        let inst = instance();
        let full = global_greedy(&inst);
        let staged = global_greedy_staged(&inst, &[inst.horizon()]);
        assert!((staged.revenue - full.revenue).abs() < 1e-9);
    }

    #[test]
    fn staged_rl_greedy_is_valid_and_bounded_by_unstaged() {
        let inst = instance();
        let full = randomized_local_greedy(&inst, 8, 3);
        let staged = randomized_local_greedy_staged(&inst, &[2], 8, 3);
        assert!(staged.strategy.validate(&inst).is_ok());
        assert!((staged.revenue - revenue(&inst, &staged.strategy)).abs() < 1e-9);
        assert!(staged.revenue <= full.revenue + 1e-9);
        assert!(staged.revenue > 0.0);
    }
}
