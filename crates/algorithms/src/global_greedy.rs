//! The Global Greedy algorithm (Algorithm 1 of the paper) and its
//! saturation-oblivious ablation `GlobalNo`.
//!
//! G-Greedy operates on the entire ground set `U × I × [T]` at once: it
//! repeatedly adds the candidate triple with the largest positive marginal
//! revenue that does not violate the display or capacity constraint. Two
//! implementation-level optimisations from §5.1 are reproduced:
//!
//! * the **two-level heap** structure: one small "lower heap" per (user, item)
//!   candidate pair holding its `T` triples (here a linear scan over a
//!   struct-of-arrays block, since `T ≤ 7` in all experiments), and one upper
//!   heap over candidate pairs keyed by the root of their lower heap;
//! * **lazy forward**: a triple's cached marginal revenue carries a flag equal
//!   to `|set(u, C(i))|` at computation time; when the triple reaches the root
//!   of the upper heap, it is re-evaluated only if the flag is stale. The
//!   paper justifies this via submodularity (Theorem 2); the exact objective
//!   implemented here is not submodular in all corners (see the notes in
//!   `crates/core/tests/properties.rs`), so lazy forward is treated as a
//!   heuristic and the lazy == eager equivalence is asserted empirically.
//!
//! The drivers are generic over [`RevenueEngine`]: the default is the
//! flat-arena [`IncrementalRevenue`]; [`EngineKind::Hash`] selects the
//! pre-refactor [`HashIncrementalRevenue`] so benches can measure the
//! refactor's speedup on identical selection sequences.
//!
//! Per-candidate cached state is stored struct-of-arrays: flat `values` and
//! `flags` vectors indexed by `cand * T + t` (blocked slots are encoded as
//! `NEG_INFINITY` values), replacing the per-candidate triple-`Vec`
//! allocations of the original implementation. The
//! initial value pass (`q(u,i,t) · p(i,t)`, embarrassingly parallel over
//! candidates) is filled by scoped threads cut at user boundaries.

use crate::config::PlannerConfig;
use crate::heap::{GreedyHeap, HeapKind, IndexedDaryHeap, LazyMaxHeap};
use crate::par;
use revmax_core::{
    revenue, CandidateId, HashIncrementalRevenue, IncrementalRevenue, Instance, ResidualDelta,
    RevenueEngine, Strategy, TimeStep,
};

/// Which incremental revenue engine backs a greedy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The flat-arena engine (default): dense group index, no hashing.
    #[default]
    Flat,
    /// The pre-refactor hash-based engine, kept as a measured baseline.
    Hash,
}

/// Options controlling the G-Greedy run.
///
/// Superseded by [`PlannerConfig`], which unifies this struct with
/// `LocalGreedyOptions` and the serving layer's options behind one surface;
/// a `GreedyOptions` converts losslessly via `PlannerConfig::from`.
#[deprecated(
    since = "0.2.0",
    note = "use PlannerConfig (this struct converts via `PlannerConfig::from`); removal scheduled for 0.4.0"
)]
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Select triples as if `β_i = 1` for every item (the `GlobalNo` baseline).
    /// The reported [`GreedyOutcome::revenue`] is always the true revenue.
    pub ignore_saturation: bool,
    /// Use the lazy-forward optimisation (on by default). Turning it off
    /// recomputes a candidate's marginal revenues every time it surfaces,
    /// which is the ablation measured in the benches.
    pub lazy_forward: bool,
    /// Use the two-level heap layout. When false, a single "giant" heap over
    /// all candidate triples is used instead (ablation).
    pub two_level_heaps: bool,
    /// Record the revenue after every selection (Figure 4 traces).
    pub track_trace: bool,
    /// Incremental engine backing the run.
    pub engine: EngineKind,
    /// Fill the initial value table with scoped threads (deterministic; the
    /// sequential and parallel fills are bit-identical).
    pub parallel_init: bool,
    /// Heap implementation backing the selection loops. The lazy-deletion
    /// heap (default, measured fastest on the Amazon-shaped datasets) and
    /// the indexed d-ary decrease-key heap produce identical selection
    /// sequences (same deterministic tie-breaking); see
    /// [`HeapKind`] for the trade-off.
    pub heap: HeapKind,
    /// Number of user shards for the shard-partitioned planning core.
    /// `0` or `1` selects the single-engine sequential driver; `n ≥ 2`
    /// partitions the users into `n` CSR-aligned shards, each owning a
    /// shard-local engine view, candidate table, and heap, coordinated by a
    /// deterministic max-marginal arbitration loop that reproduces the
    /// sequential plan exactly (see `crate::sharded`). The sharded core
    /// always uses the two-level heap layout.
    pub shards: u32,
}

#[allow(deprecated)]
impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            ignore_saturation: false,
            lazy_forward: true,
            two_level_heaps: true,
            track_trace: false,
            engine: EngineKind::Flat,
            parallel_init: true,
            heap: HeapKind::default(),
            shards: 1,
        }
    }
}

#[allow(deprecated)]
impl GreedyOptions {
    /// Default options with the `REVMAX_*` environment knobs layered on top.
    #[deprecated(
        since = "0.2.0",
        note = "use PlannerConfig::from_env; removal scheduled for 0.4.0"
    )]
    pub fn from_env() -> Self {
        let cfg = PlannerConfig::from_env();
        GreedyOptions {
            ignore_saturation: cfg.ignores_saturation(),
            lazy_forward: cfg.lazy_forward,
            two_level_heaps: cfg.two_level_heaps,
            track_trace: cfg.track_trace,
            engine: cfg.engine,
            parallel_init: cfg.parallel_init(),
            heap: cfg.heap,
            shards: cfg.shards,
        }
    }
}

/// The result of a greedy run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The selected strategy (always valid for REVMAX).
    pub strategy: Strategy,
    /// True expected revenue of the strategy under the instance's saturation
    /// factors (Definition 2).
    pub revenue: f64,
    /// The objective value the selection process itself tracked (differs from
    /// `revenue` only for `GlobalNo`, which selects pretending `β = 1`).
    pub selection_objective: f64,
    /// Selection-objective value after each insertion, if tracing was enabled.
    pub trace: Vec<f64>,
    /// Number of marginal-revenue evaluations performed (lazy-forward ablation metric).
    pub marginal_evaluations: u64,
    /// Concurrent shard-executor statistics; all zero for sequential runs.
    pub concurrency: ConcurrencyStats,
}

/// Statistics of the concurrent shard executor (two or more
/// `PlannerConfig::shard_threads`): how many capacity-committing moves took
/// the lock-free abundant fast path versus the coordinator's scarce-window
/// arbitration. Sequential drivers leave the struct zeroed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConcurrencyStats {
    /// Moves committed lock-free because the item was outside the scarcity
    /// window (includes exempt and repeat-display commits).
    pub fast_path_moves: u64,
    /// Scarce-window proposals sequenced by the coordinator (admitted plus
    /// rejected).
    pub arbitrated_moves: u64,
    /// Arbitrated proposals the coordinator rejected (the speculative claim
    /// was rolled back or denied).
    pub rejected_moves: u64,
    /// Worker threads the executor ran with (`0` for sequential runs).
    pub worker_threads: u32,
}

impl ConcurrencyStats {
    /// Fraction of committing moves that needed arbitration (`0.0` when no
    /// move committed, or for sequential runs).
    pub fn scarce_occupancy(&self) -> f64 {
        let total = self.fast_path_moves + self.arbitrated_moves;
        if total == 0 {
            0.0
        } else {
            self.arbitrated_moves as f64 / total as f64
        }
    }
}

/// Runs G-Greedy with the default configuration.
pub fn global_greedy(inst: &Instance) -> GreedyOutcome {
    dispatch(inst, &PlannerConfig::default(), None)
}

/// Runs the `GlobalNo` ablation: saturation is ignored during selection, the
/// returned revenue is evaluated with the true saturation factors.
pub fn global_no_saturation(inst: &Instance) -> GreedyOutcome {
    dispatch(
        inst,
        &PlannerConfig::default().with_algorithm(crate::config::PlanAlgorithm::GlobalNoSaturation),
        None,
    )
}

/// Runs G-Greedy with explicit options.
#[deprecated(
    since = "0.2.0",
    note = "use plan with a PlannerConfig; removal scheduled for 0.4.0"
)]
#[allow(deprecated)]
pub fn global_greedy_with(inst: &Instance, opts: &GreedyOptions) -> GreedyOutcome {
    dispatch(inst, &PlannerConfig::from(*opts), None)
}

/// Constructs the engine for a driver: warm-started from the delta's
/// snapshot when the configuration asks for it, cold otherwise, with the
/// saturation-aggregate knob applied before the first insertion.
pub(crate) fn make_engine<'a, E: RevenueEngine<'a>>(
    inst: &'a Instance,
    ignore_saturation: bool,
    shard: revmax_core::UserShard,
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> E {
    let mut engine = match delta {
        Some(delta) if cfg.warm_start => E::warm_start(inst, ignore_saturation, shard, delta),
        _ => E::for_shard(inst, ignore_saturation, shard),
    };
    engine.set_aggregate_mode(cfg.aggregates.mode());
    engine
}

/// The G-Greedy driver dispatch: shard count, engine, heap layout. `delta`
/// is the warm-start handle of a residual replan (`None` for one-shot plans).
pub(crate) fn dispatch(
    inst: &Instance,
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    if cfg.shards > 1 {
        return crate::sharded::sharded_plan_residual(inst, cfg, cfg.shards as usize, delta);
    }
    use EngineKind::{Flat, Hash};
    use HeapKind::{IndexedDary, Lazy};
    type FlatEng<'i> = IncrementalRevenue<'i>;
    type HashEng<'i> = HashIncrementalRevenue<'i>;
    match (cfg.engine, cfg.two_level_heaps, cfg.heap) {
        (Flat, true, Lazy) => two_level_greedy::<FlatEng<'_>, LazyMaxHeap>(inst, cfg, delta),
        (Flat, true, IndexedDary) => {
            two_level_greedy::<FlatEng<'_>, IndexedDaryHeap>(inst, cfg, delta)
        }
        (Flat, false, Lazy) => giant_heap_greedy::<FlatEng<'_>, LazyMaxHeap>(inst, cfg, delta),
        (Flat, false, IndexedDary) => {
            giant_heap_greedy::<FlatEng<'_>, IndexedDaryHeap>(inst, cfg, delta)
        }
        (Hash, true, Lazy) => two_level_greedy::<HashEng<'_>, LazyMaxHeap>(inst, cfg, delta),
        (Hash, true, IndexedDary) => {
            two_level_greedy::<HashEng<'_>, IndexedDaryHeap>(inst, cfg, delta)
        }
        (Hash, false, Lazy) => giant_heap_greedy::<HashEng<'_>, LazyMaxHeap>(inst, cfg, delta),
        (Hash, false, IndexedDary) => {
            giant_heap_greedy::<HashEng<'_>, IndexedDaryHeap>(inst, cfg, delta)
        }
    }
}

/// Struct-of-arrays per-candidate cached state: slot `local_cand * T + t`
/// holds the cached (possibly stale) marginal revenue and the lazy-forward
/// flag it was computed under. A blocked (dead) slot is encoded as
/// `NEG_INFINITY` in `values`, so the per-candidate "lower heap" is a single
/// contiguous max scan over `T` floats.
///
/// The table covers a contiguous candidate range (the whole instance for the
/// sequential drivers, one user shard for the shard-partitioned core) and is
/// addressed by *local* candidate indices relative to the range start.
pub(crate) struct CandidateTable {
    horizon: usize,
    pub(crate) values: Vec<f64>,
    pub(crate) flags: Vec<u32>,
}

impl CandidateTable {
    fn new(inst: &Instance, parallel: bool) -> Self {
        Self::for_range(inst, 0, inst.num_candidates() as u32, parallel)
    }

    /// Builds the initial value table (`q(u,i,t) · p(i,t)`) for the candidate
    /// range `[cand_start, cand_end)`.
    pub(crate) fn for_range(
        inst: &Instance,
        cand_start: u32,
        cand_end: u32,
        parallel: bool,
    ) -> Self {
        let horizon = inst.horizon() as usize;
        let n = (cand_end - cand_start) as usize * horizon;
        let mut values = vec![f64::NEG_INFINITY; n];
        let fill = |slot: usize| {
            let cand = CandidateId(cand_start + (slot / horizon) as u32);
            let t = TimeStep::from_index(slot % horizon);
            inst.candidate_prob(cand, t) * inst.price(inst.candidate_item(cand), t)
        };
        if parallel && n >= 1 << 14 {
            par::parallel_fill(&mut values, fill);
        } else {
            for (slot, v) in values.iter_mut().enumerate() {
                *v = fill(slot);
            }
        }
        CandidateTable {
            horizon,
            values,
            flags: vec![0; n],
        }
    }

    /// Re-evaluates every live slot of the local candidate `local` (engine
    /// calls address the global `cand`), stamping the flags; returns the
    /// number of marginal evaluations performed.
    pub(crate) fn reevaluate<'a, E: RevenueEngine<'a>>(
        &mut self,
        inc: &E,
        local: u32,
        cand: CandidateId,
        stamp: u32,
    ) -> u64 {
        let horizon = self.horizon;
        let base = local as usize * horizon;
        if horizon <= 64 {
            let mut mask = 0u64;
            for t_idx in 0..horizon {
                if !self.is_blocked(local, t_idx) {
                    mask |= 1 << t_idx;
                    self.flags[base + t_idx] = stamp;
                }
            }
            inc.marginal_revenue_batch(cand, mask, &mut self.values[base..base + horizon]) as u64
        } else {
            let mut evals = 0;
            for t_idx in 0..horizon {
                if self.is_blocked(local, t_idx) {
                    continue;
                }
                self.values[base + t_idx] =
                    inc.marginal_revenue_cand(cand, TimeStep::from_index(t_idx));
                self.flags[base + t_idx] = stamp;
                evals += 1;
            }
            evals
        }
    }

    /// Best live slot of a candidate: `(t index, value)`; `None` when every
    /// slot is blocked.
    #[inline]
    pub(crate) fn best(&self, cand: u32) -> Option<(usize, f64)> {
        let base = cand as usize * self.horizon;
        let mut best_t = 0usize;
        let mut best_v = f64::NEG_INFINITY;
        for (t, &v) in self.values[base..base + self.horizon].iter().enumerate() {
            if v > best_v {
                best_v = v;
                best_t = t;
            }
        }
        if best_v == f64::NEG_INFINITY {
            None
        } else {
            Some((best_t, best_v))
        }
    }

    /// Marks a slot dead (already selected, or its display slot is full).
    #[inline]
    pub(crate) fn block(&mut self, cand: u32, t: usize) {
        self.values[cand as usize * self.horizon + t] = f64::NEG_INFINITY;
    }

    #[inline]
    pub(crate) fn is_blocked(&self, cand: u32, t: usize) -> bool {
        self.values[cand as usize * self.horizon + t] == f64::NEG_INFINITY
    }

    #[inline]
    pub(crate) fn slot(&self, cand: u32, t: usize) -> usize {
        cand as usize * self.horizon + t
    }
}

/// One member of a batched heap-refresh burst: the compiled kernel id of the
/// candidate's group, the candidate's local heap index, and the lazy-forward
/// stamp its refresh must be computed against.
pub(crate) type StaleMember = (u8, u32, u32);

/// Collects the run of **stale** tops of `heap` into `run`, stopping at the
/// first top that is fresh, non-positive, or constraint-blocked at its best
/// slot (the main loop drains those), or when `cap` members are gathered.
/// Tops whose every slot is already blocked are retired from the heap in
/// place — they can never revive, so early retirement commutes with
/// everything. Collected members are popped out of the heap; pass them to
/// [`refresh_stale_run`] before touching the heap again.
///
/// Refreshing a stale candidate early — rather than when it individually
/// surfaces — is plan-preserving: no insertion happens inside a burst, a
/// marginal depends only on the candidate's own (user, class) group state,
/// and the lazy-forward stamp is the group size, so the values a burst
/// refresh writes are bit-identical to the values the pop-per-iteration loop
/// writes when the same candidate surfaces stale under the same group state.
/// (Like lazy forward itself this is asserted empirically — the kernel
/// parity suite pins batched == scalar plans across batch widths.)
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect_stale_run<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inc: &E,
    table: &mut CandidateTable,
    heap: &mut H,
    cand_start: u32,
    lazy_forward: bool,
    violates: impl Fn(&E, CandidateId, TimeStep) -> bool,
    run: &mut Vec<StaleMember>,
    cap: usize,
) {
    while run.len() < cap {
        let Some((next, next_v)) = heap.peek() else {
            break;
        };
        if next_v <= 0.0 {
            break;
        }
        let cand = CandidateId(cand_start + next);
        let Some((bt, _)) = table.best(next) else {
            heap.remove(next);
            continue;
        };
        let t = TimeStep::from_index(bt);
        if violates(inc, cand, t) {
            break;
        }
        let stamp = if lazy_forward {
            inc.group_size_cand(cand) as u32
        } else {
            inc.len() as u32
        };
        if table.flags[table.slot(next, bt)] == stamp {
            break;
        }
        heap.pop();
        run.push((inc.kernel_id_cand(cand), next, stamp));
    }
}

/// Refreshes every member of a collected stale run and re-queues it at its
/// new root value. Members are evaluated grouped by compiled kernel id
/// (sorted, ties to the smaller index for determinism) so each group of the
/// burst runs one kernel's inner loop back to back, branch-predictably;
/// since no insertion happens inside a burst, the evaluation order cannot
/// change any computed value. Returns the number of marginal evaluations.
pub(crate) fn refresh_stale_run<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inc: &E,
    table: &mut CandidateTable,
    heap: &mut H,
    cand_start: u32,
    run: &mut [StaleMember],
) -> u64 {
    if run.len() > 1 {
        run.sort_unstable_by_key(|&(k, idx, _)| (k, idx));
    }
    let mut evals = 0;
    for &(_, idx, stamp) in run.iter() {
        evals += table.reevaluate(inc, idx, CandidateId(cand_start + idx), stamp);
        match table.best(idx) {
            Some((_, v)) => heap.update(idx, v),
            None => heap.remove(idx),
        }
    }
    evals
}

fn finish<'a, E: RevenueEngine<'a>>(
    inst: &'a Instance,
    inc: E,
    cfg: &PlannerConfig,
    trace: Vec<f64>,
    marginal_evaluations: u64,
) -> GreedyOutcome {
    let selection_objective = inc.revenue();
    let strategy = inc.into_strategy();
    let true_revenue = if cfg.ignores_saturation() {
        revenue(inst, &strategy)
    } else {
        selection_objective
    };
    GreedyOutcome {
        strategy,
        revenue: true_revenue,
        selection_objective,
        trace,
        marginal_evaluations,
        concurrency: Default::default(),
    }
}

/// Minimum candidate count for the tournament driver. Below this the
/// scalar lazy-heap loop wins: the tree build plus the eager column-block
/// scans cost a fixed overhead that only amortises once the selection
/// stream is long enough (measured crossover ~4–6k candidates on the
/// amazon-shaped benches; at 2.4k candidates the tournament loses ~10%,
/// at 38k it wins 1.2–1.4×).
const TOURNAMENT_MIN_CANDIDATES: usize = 4096;

fn two_level_greedy<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    if cfg.kernel_batch == 0 || inst.num_candidates() < TOURNAMENT_MIN_CANDIDATES {
        two_level_greedy_scalar::<E, H>(inst, cfg, delta)
    } else {
        // The tournament driver has no heap, so the heap kind only affects
        // the scalar ablation (and the sharded / SLG drivers).
        two_level_greedy_batched::<E>(inst, cfg, delta)
    }
}

/// A loser-free tournament tree over the candidate root values, with the
/// same total order as the greedy heaps: larger value first, ties towards
/// the smaller candidate id. The kernel-compiled driver keys selection off
/// this tree instead of a binary heap: re-keying a candidate is a fix of
/// the leaf-to-root path — `log₂ candidates` branchless winner recomputes
/// with no swaps, no position index, and an early exit as soon as a node is
/// unchanged — where a lazy heap pays a full pop/push round trip (sift plus
/// stale-entry drain) per surfaced candidate, and an indexed d-ary heap
/// pays swap chains plus position bookkeeping on every decrease-key.
struct CandTournament {
    /// Leaf count, `num_candidates` rounded up to a power of two.
    size: usize,
    /// Implicit tree: node `i`'s children are `2i` / `2i + 1`, leaves at
    /// `size + c`, root at 1. Each node holds the winning `(value, cand)`.
    tree: Vec<(f64, u32)>,
}

impl CandTournament {
    fn new(roots: &[f64]) -> Self {
        let size = roots.len().next_power_of_two().max(1);
        let mut tree = vec![(f64::NEG_INFINITY, u32::MAX); 2 * size];
        for (c, &v) in roots.iter().enumerate() {
            tree[size + c] = (v, c as u32);
        }
        for i in (1..size).rev() {
            tree[i] = Self::winner(tree[2 * i], tree[2 * i + 1]);
        }
        CandTournament { size, tree }
    }

    /// The heap ordering: maximum value, ties to the smaller candidate id —
    /// exactly the (value desc, id asc) total order both greedy heaps use,
    /// so the tournament selects the scalar driver's sequence.
    #[inline]
    fn winner(a: (f64, u32), b: (f64, u32)) -> (f64, u32) {
        if a.0 > b.0 || (a.0 == b.0 && a.1 < b.1) {
            a
        } else {
            b
        }
    }

    /// Re-keys candidate `c` and fixes the path to the root, stopping at the
    /// first unchanged node (its ancestors cannot change either).
    #[inline]
    fn update(&mut self, c: u32, value: f64) {
        let mut i = self.size + c as usize;
        self.tree[i] = (value, c);
        while i > 1 {
            i /= 2;
            let w = Self::winner(self.tree[2 * i], self.tree[2 * i + 1]);
            if w == self.tree[i] {
                break;
            }
            self.tree[i] = w;
        }
    }

    /// The current best `(value, candidate)`.
    #[inline]
    fn root(&self) -> (f64, u32) {
        self.tree[1]
    }
}

/// The kernel-compiled two-level driver (`kernel_batch ≥ 1`, the default).
///
/// Replaces the scalar driver's lazy binary heap with a [`CandTournament`]
/// over the candidate roots plus a cached argmax time per candidate, so
/// selection is O(1) and every constraint block, stale refresh, or
/// insertion costs one leaf path fix. Display fills block the filled
/// `(user, t)` column across the user's contiguous candidate range eagerly
/// (display counts never decrease, so this is the same bookkeeping the
/// scalar drain loop does lazily, minus the surface-and-requeue round
/// trips), and capacity exhaustion retires the whole candidate row. A stale
/// root is re-evaluated over all its live time slots in one fused kernel
/// pass; the stale *run* a lazy heap has to collect explicitly
/// ([`collect_stale_run`], still used by the sharded and SLG drivers) is
/// implicit here — after the path fix, the next stale member of the run is
/// back at the tree root in O(1).
///
/// Produces the identical plan to [`two_level_greedy_scalar`]: cached root
/// values evolve identically (marginals depend only on the candidate's own
/// (user, class) group state, refreshed under the same lazy-forward
/// stamps), and both selection orders are (value desc, candidate id asc)
/// over those cached values. Like lazy forward itself, the equivalence is
/// asserted empirically — the kernel parity suite pins batched == scalar
/// across batch widths, engines, shard counts, and warm/cold construction.
fn two_level_greedy_batched<'a, E: RevenueEngine<'a>>(
    inst: &'a Instance,
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let num_cand = inst.num_candidates();
    let horizon = inst.horizon() as usize;
    let mut inc: E = make_engine(
        inst,
        cfg.ignores_saturation(),
        inst.full_shard(),
        cfg,
        delta,
    );
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    let mut table = CandidateTable::new(inst, cfg.parallel_init());
    // Cached argmax time per candidate; the matching value lives in the
    // tournament leaf. Together they mirror `table.best` exactly.
    let mut cand_best_t = vec![0u32; num_cand];
    let mut roots = vec![f64::NEG_INFINITY; num_cand];
    for c in 0..num_cand {
        if let Some((t, v)) = table.best(c as u32) {
            roots[c] = v;
            cand_best_t[c] = t as u32;
        }
    }
    let mut tour = CandTournament::new(&roots);
    drop(roots);
    let user_offsets = inst.user_cand_offsets();
    let total_slots = inst.total_slots();

    while (inc.len() as u64) < total_slots {
        let (root_v, cand_idx) = tour.root();
        if root_v <= 0.0 {
            break;
        }
        let cand = CandidateId(cand_idx);
        let best_t = cand_best_t[cand_idx as usize] as usize;
        let t = TimeStep::from_index(best_t);

        if inc.would_violate_cand(cand, t) {
            if inc.would_violate_display_cand(cand, t) {
                // The (user, t) slot is full: dead for this candidate, other
                // time steps may still be fine. (Only pre-filled warm-start
                // displays reach this branch — fills during the run block
                // eagerly below.)
                table.block(cand_idx, best_t);
                refresh_leaf(&table, cand_idx, &mut cand_best_t, &mut tour);
            } else {
                // Capacity exhausted by other users: the whole candidate
                // dies (exempt users never violate capacity, so this is
                // permanent). Wipe the table row too — otherwise a later
                // eager column block would treat it as live.
                for tt in 0..horizon {
                    let s = table.slot(cand_idx, tt);
                    table.values[s] = f64::NEG_INFINITY;
                }
                tour.update(cand_idx, f64::NEG_INFINITY);
            }
            continue;
        }

        let stamp = if cfg.lazy_forward {
            inc.group_size_cand(cand) as u32
        } else {
            inc.len() as u32
        };
        if table.flags[table.slot(cand_idx, best_t)] == stamp {
            inc.insert_cand(cand, t);
            table.block(cand_idx, best_t);
            if cfg.track_trace {
                trace.push(inc.revenue());
            }
            if inc.would_violate_display_cand(cand, t) {
                // This insertion filled the (user, t) display slot: block
                // the t column across the user's candidate range now. A
                // candidate whose cached argmax sat elsewhere keeps its
                // root (blocking a non-argmax slot cannot change the
                // forward-scan argmax), so only argmax hits pay a path fix.
                let user = inst.candidate_user(cand).index();
                let (lo, hi) = (user_offsets[user] as usize, user_offsets[user + 1] as usize);
                for c in lo..hi {
                    let s = table.slot(c as u32, best_t);
                    if table.values[s] != f64::NEG_INFINITY {
                        table.values[s] = f64::NEG_INFINITY;
                        if cand_best_t[c] as usize == best_t {
                            refresh_leaf(&table, c as u32, &mut cand_best_t, &mut tour);
                        }
                    }
                }
            }
            refresh_leaf(&table, cand_idx, &mut cand_best_t, &mut tour);
        } else {
            // Stale root: re-evaluate this candidate's live slots in one
            // fused kernel pass, then fix its path.
            evals += table.reevaluate(&inc, cand_idx, cand, stamp);
            refresh_leaf(&table, cand_idx, &mut cand_best_t, &mut tour);
        }
    }

    finish(inst, inc, cfg, trace, evals)
}

/// Re-derives one candidate's root `(value, argmax t)` from its table row
/// after the row changed, and re-keys its tournament leaf.
#[inline]
fn refresh_leaf(
    table: &CandidateTable,
    c: u32,
    cand_best_t: &mut [u32],
    tour: &mut CandTournament,
) {
    match table.best(c) {
        Some((t, v)) => {
            cand_best_t[c as usize] = t as u32;
            tour.update(c, v);
        }
        None => tour.update(c, f64::NEG_INFINITY),
    }
}

/// The legacy pop-per-iteration two-level driver (`kernel_batch == 0`): one
/// heap round trip per examined candidate, scalar refreshes. Kept reachable
/// as the measured "generic" baseline of the kernel-vs-generic bench rows.
fn two_level_greedy_scalar<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let num_cand = inst.num_candidates();
    let mut inc: E = make_engine(
        inst,
        cfg.ignores_saturation(),
        inst.full_shard(),
        cfg,
        delta,
    );
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    let mut table = CandidateTable::new(inst, cfg.parallel_init());
    let mut roots = vec![f64::NEG_INFINITY; num_cand];
    for cand in 0..num_cand as u32 {
        roots[cand as usize] = table.best(cand).map_or(f64::NEG_INFINITY, |(_, v)| v);
    }
    let mut heap = H::build(&roots);
    let total_slots = inst.total_slots();

    'outer: while (inc.len() as u64) < total_slots {
        let Some((cand_idx, root_value)) = heap.pop() else {
            break;
        };
        if root_value <= 0.0 {
            break;
        }
        let cand = CandidateId(cand_idx);

        // Drain display-dead slots of this candidate in one pop instead of one
        // heap round-trip each — blocking is value-neutral bookkeeping on this
        // candidate's own slots and display violations are monotone, so the
        // eager batching commutes with other candidates' operations. If
        // anything was blocked, the candidate is re-queued at its new best
        // (never processed immediately, even on an exact value tie), which
        // keeps the selection sequence identical to the seed driver's
        // one-block-per-pop behaviour under the heap's id tie-breaking.
        let mut blocked_any = false;
        let (best_t, best_v) = loop {
            let Some((best_t, best_v)) = table.best(cand_idx) else {
                heap.remove(cand_idx);
                continue 'outer;
            };
            let t = TimeStep::from_index(best_t);
            if !inc.would_violate_cand(cand, t) {
                break (best_t, best_v);
            }
            if inc.would_violate_display_cand(cand, t) {
                // The (user, t) slot is full: this time step is dead for this
                // candidate, other time steps may still be fine.
                table.block(cand_idx, best_t);
                blocked_any = true;
            } else {
                // Capacity exhausted by other users: the whole candidate dies.
                heap.remove(cand_idx);
                continue 'outer;
            }
        };
        if blocked_any {
            debug_assert!(best_v <= root_value);
            heap.update(cand_idx, best_v);
            continue;
        }
        let t = TimeStep::from_index(best_t);

        // Lazy forward compares the flag against |set(u, C(i))|; the eager
        // ablation compares against the global selection count, forcing a
        // re-evaluation whenever anything was inserted since the last one.
        let stamp = if cfg.lazy_forward {
            inc.group_size_cand(cand) as u32
        } else {
            inc.len() as u32
        };
        let slot = table.slot(cand_idx, best_t);
        if table.flags[slot] == stamp {
            inc.insert_cand(cand, t);
            table.block(cand_idx, best_t);
            if cfg.track_trace {
                trace.push(inc.revenue());
            }
            match table.best(cand_idx) {
                Some((_, v)) => heap.update(cand_idx, v),
                None => heap.remove(cand_idx),
            }
        } else {
            // Re-evaluate every live triple of this candidate, then re-queue.
            evals += table.reevaluate(&inc, cand_idx, cand, stamp);
            match table.best(cand_idx) {
                Some((_, v)) => heap.update(cand_idx, v),
                None => heap.remove(cand_idx),
            }
        }
    }

    finish(inst, inc, cfg, trace, evals)
}

fn giant_heap_greedy<'a, E: RevenueEngine<'a>, H: GreedyHeap>(
    inst: &'a Instance,
    cfg: &PlannerConfig,
    delta: Option<&ResidualDelta>,
) -> GreedyOutcome {
    let horizon = inst.horizon() as usize;
    let mut inc: E = make_engine(
        inst,
        cfg.ignores_saturation(),
        inst.full_shard(),
        cfg,
        delta,
    );
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    // One heap element per candidate triple; the table's value vector doubles
    // as the initial heap keys.
    let table = CandidateTable::new(inst, cfg.parallel_init());
    let mut flags = table.flags;
    let mut heap = H::build(&table.values);
    let total_slots = inst.total_slots();

    while (inc.len() as u64) < total_slots {
        let Some((element, value)) = heap.pop() else {
            break;
        };
        if value <= 0.0 {
            break;
        }
        let cand = CandidateId(element / horizon as u32);
        let t_idx = (element as usize) % horizon;
        let t = TimeStep::from_index(t_idx);

        if inc.would_violate_cand(cand, t) {
            heap.remove(element);
            continue;
        }
        let stamp = if cfg.lazy_forward {
            inc.group_size_cand(cand) as u32
        } else {
            inc.len() as u32
        };
        if flags[element as usize] == stamp {
            inc.insert_cand(cand, t);
            heap.remove(element);
            if cfg.track_trace {
                trace.push(inc.revenue());
            }
        } else {
            let fresh = inc.marginal_revenue_cand(cand, t);
            evals += 1;
            flags[element as usize] = stamp;
            heap.update(element, fresh);
        }
    }

    finish(inst, inc, cfg, trace, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::{marginal_revenue, InstanceBuilder, Triple};

    /// Small instance with one class of two items, price drops, and saturation.
    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.7)
            .beta(2, 0.9)
            .capacity(0, 1)
            .capacity(1, 2)
            .capacity(2, 2)
            .prices(0, &[30.0, 24.0, 27.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[15.0, 15.0, 14.0])
            .candidate(0, 0, &[0.4, 0.6, 0.5], 4.5)
            .candidate(0, 1, &[0.7, 0.5, 0.8], 3.5)
            .candidate(0, 2, &[0.3, 0.3, 0.4], 4.0)
            .candidate(1, 0, &[0.5, 0.55, 0.45], 4.8)
            .candidate(1, 2, &[0.6, 0.2, 0.3], 2.5);
        b.build().unwrap()
    }

    #[test]
    fn greedy_output_is_valid_and_profitable() {
        let inst = small_instance();
        let out = global_greedy(&inst);
        assert!(out.strategy.validate(&inst).is_ok());
        assert!(out.revenue > 0.0);
        assert!((out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-9);
        assert!(!out.strategy.is_empty());
    }

    #[test]
    fn example4_greedy_avoids_the_trap() {
        // On the non-monotone Example-4 instance the optimal strategy is the
        // single day-2 recommendation; greedy must find it and stop.
        let mut b = InstanceBuilder::new(1, 1, 2);
        b.display_limit(1)
            .capacity(0, 2)
            .beta(0, 0.1)
            .prices(0, &[1.0, 0.95])
            .candidate(0, 0, &[0.5, 0.6], 0.0);
        let inst = b.build().unwrap();
        let out = global_greedy(&inst);
        assert_eq!(out.strategy.len(), 1);
        assert!(out.strategy.contains(Triple::new(0, 0, 2)));
        assert!((out.revenue - 0.57).abs() < 1e-9);
    }

    #[test]
    fn never_selects_negative_marginals() {
        let inst = small_instance();
        let out = dispatch(
            &inst,
            &PlannerConfig::default().with_track_trace(true),
            None,
        );
        // The traced objective must be non-decreasing (every accepted marginal > 0).
        for w in out.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "objective decreased: {:?}", w);
        }
    }

    #[test]
    fn greedy_matches_manual_hill_climbing() {
        // Cross-check against a brute-force greedy that re-evaluates every
        // candidate triple from scratch at every step.
        let inst = small_instance();
        let fast = global_greedy(&inst);

        let mut s = Strategy::new();
        let mut inc = IncrementalRevenue::new(&inst);
        loop {
            let mut best: Option<(Triple, f64)> = None;
            for c in inst.candidates() {
                let user = inst.candidate_user(c);
                let item = inst.candidate_item(c);
                for t in inst.time_steps() {
                    let z = Triple { user, item, t };
                    if s.contains(z) || inc.would_violate(z) {
                        continue;
                    }
                    let m = marginal_revenue(&inst, &s, z);
                    if m > 0.0 && best.is_none_or(|(_, bv)| m > bv) {
                        best = Some((z, m));
                    }
                }
            }
            match best {
                Some((z, _)) => {
                    inc.insert(z);
                    s.insert(z);
                }
                None => break,
            }
        }
        let slow_revenue = revenue(&inst, &s);
        assert!(
            (fast.revenue - slow_revenue).abs() < 1e-9,
            "two-level greedy {} vs reference greedy {}",
            fast.revenue,
            slow_revenue
        );
        assert_eq!(fast.strategy.len(), s.len());
    }

    #[test]
    fn giant_heap_and_two_level_agree() {
        let inst = small_instance();
        let two = dispatch(&inst, &PlannerConfig::default(), None);
        let giant = dispatch(
            &inst,
            &PlannerConfig::default().with_two_level_heaps(false),
            None,
        );
        assert!((two.revenue - giant.revenue).abs() < 1e-9);
        assert_eq!(two.strategy.len(), giant.strategy.len());
    }

    #[test]
    fn flat_and_hash_engines_agree_exactly() {
        let inst = small_instance();
        for two_level in [true, false] {
            let flat = dispatch(
                &inst,
                &PlannerConfig::default().with_two_level_heaps(two_level),
                None,
            );
            let hash = dispatch(
                &inst,
                &PlannerConfig::default()
                    .with_two_level_heaps(two_level)
                    .with_engine(EngineKind::Hash),
                None,
            );
            assert!((flat.revenue - hash.revenue).abs() < 1e-9);
            assert_eq!(flat.strategy.len(), hash.strategy.len());
            for z in flat.strategy.iter() {
                assert!(hash.strategy.contains(z), "strategies diverged at {z}");
            }
        }
    }

    #[test]
    fn lazy_forward_does_not_change_the_result_but_saves_evaluations() {
        let inst = small_instance();
        let lazy = dispatch(&inst, &PlannerConfig::default(), None);
        let eager = dispatch(
            &inst,
            &PlannerConfig::default().with_lazy_forward(false),
            None,
        );
        assert!((lazy.revenue - eager.revenue).abs() < 1e-9);
        assert!(lazy.marginal_evaluations <= eager.marginal_evaluations);
    }

    #[test]
    fn global_no_reports_true_revenue() {
        let inst = small_instance();
        let no_sat = global_no_saturation(&inst);
        assert!(no_sat.strategy.validate(&inst).is_ok());
        // The true revenue of the GlobalNo strategy never exceeds its own
        // optimistic selection objective.
        assert!(no_sat.revenue <= no_sat.selection_objective + 1e-9);
        // And G-Greedy (saturation-aware) is at least as good in expectation here.
        let aware = global_greedy(&inst);
        assert!(aware.revenue + 1e-9 >= no_sat.revenue);
    }

    #[test]
    fn respects_display_and_capacity_limits() {
        let mut b = InstanceBuilder::new(3, 1, 2);
        b.display_limit(1).capacity(0, 2).constant_price(0, 10.0);
        for u in 0..3 {
            b.candidate(u, 0, &[0.9, 0.9], 0.0);
        }
        let inst = b.build().unwrap();
        let out = global_greedy(&inst);
        assert!(out.strategy.validate(&inst).is_ok());
        // Capacity 2 on the only item: at most 2 distinct users can receive it.
        let users: std::collections::HashSet<_> = out.strategy.iter().map(|z| z.user).collect();
        assert!(users.len() <= 2);
    }
}
