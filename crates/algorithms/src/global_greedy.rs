//! The Global Greedy algorithm (Algorithm 1 of the paper) and its
//! saturation-oblivious ablation `GlobalNo`.
//!
//! G-Greedy operates on the entire ground set `U × I × [T]` at once: it
//! repeatedly adds the candidate triple with the largest positive marginal
//! revenue that does not violate the display or capacity constraint. Two
//! implementation-level optimisations from §5.1 are reproduced:
//!
//! * the **two-level heap** structure: one small "lower heap" per (user, item)
//!   candidate pair holding its `T` triples (here a linear scan, since `T ≤ 7`
//!   in all experiments), and one upper heap over candidate pairs keyed by the
//!   root of their lower heap;
//! * **lazy forward**: a triple's cached marginal revenue carries a flag equal
//!   to `|set(u, C(i))|` at computation time; when the triple reaches the root
//!   of the upper heap, it is re-evaluated only if the flag is stale. This is
//!   sound because the revenue function is submodular (Theorem 2), so stale
//!   values only over-estimate.

use crate::heap::LazyMaxHeap;
use revmax_core::{revenue, CandidateId, IncrementalRevenue, Instance, Strategy, TimeStep, Triple};

/// Options controlling the G-Greedy run.
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    /// Select triples as if `β_i = 1` for every item (the `GlobalNo` baseline).
    /// The reported [`GreedyOutcome::revenue`] is always the true revenue.
    pub ignore_saturation: bool,
    /// Use the lazy-forward optimisation (on by default). Turning it off
    /// recomputes a candidate's marginal revenues every time it surfaces,
    /// which is the ablation measured in the benches.
    pub lazy_forward: bool,
    /// Use the two-level heap layout. When false, a single "giant" heap over
    /// all candidate triples is used instead (ablation).
    pub two_level_heaps: bool,
    /// Record the revenue after every selection (Figure 4 traces).
    pub track_trace: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            ignore_saturation: false,
            lazy_forward: true,
            two_level_heaps: true,
            track_trace: false,
        }
    }
}

/// The result of a greedy run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The selected strategy (always valid for REVMAX).
    pub strategy: Strategy,
    /// True expected revenue of the strategy under the instance's saturation
    /// factors (Definition 2).
    pub revenue: f64,
    /// The objective value the selection process itself tracked (differs from
    /// `revenue` only for `GlobalNo`, which selects pretending `β = 1`).
    pub selection_objective: f64,
    /// Selection-objective value after each insertion, if tracing was enabled.
    pub trace: Vec<f64>,
    /// Number of marginal-revenue evaluations performed (lazy-forward ablation metric).
    pub marginal_evaluations: u64,
}

/// Runs G-Greedy with default options.
pub fn global_greedy(inst: &Instance) -> GreedyOutcome {
    global_greedy_with(inst, &GreedyOptions::default())
}

/// Runs the `GlobalNo` ablation: saturation is ignored during selection, the
/// returned revenue is evaluated with the true saturation factors.
pub fn global_no_saturation(inst: &Instance) -> GreedyOutcome {
    global_greedy_with(
        inst,
        &GreedyOptions { ignore_saturation: true, ..GreedyOptions::default() },
    )
}

/// Runs G-Greedy with explicit options.
pub fn global_greedy_with(inst: &Instance, opts: &GreedyOptions) -> GreedyOutcome {
    if opts.two_level_heaps {
        two_level_greedy(inst, opts)
    } else {
        giant_heap_greedy(inst, opts)
    }
}

/// Per-candidate cached state: one slot per time step.
struct CandidateState {
    /// Cached marginal revenue per time step (may be stale / over-estimated).
    values: Vec<f64>,
    /// `|set(u, C(i))|` at the time each cached value was computed.
    flags: Vec<u32>,
    /// Whether the slot is no longer selectable (already selected, or its
    /// (user, t) display slot is full).
    blocked: Vec<bool>,
}

impl CandidateState {
    fn best(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (t, (&v, &b)) in self.values.iter().zip(&self.blocked).enumerate() {
            if b {
                continue;
            }
            if best.map_or(true, |(_, bv)| v > bv) {
                best = Some((t, v));
            }
        }
        best
    }
}

fn initial_values(inst: &Instance, cand: CandidateId) -> Vec<f64> {
    let item = inst.candidate_item(cand);
    inst.candidate_probs(cand)
        .iter()
        .enumerate()
        .map(|(t_idx, &q)| q * inst.price(item, TimeStep::from_index(t_idx)))
        .collect()
}

fn finish(
    inst: &Instance,
    inc: IncrementalRevenue<'_>,
    opts: &GreedyOptions,
    trace: Vec<f64>,
    marginal_evaluations: u64,
) -> GreedyOutcome {
    let selection_objective = inc.revenue();
    let strategy = inc.into_strategy();
    let true_revenue = if opts.ignore_saturation {
        revenue(inst, &strategy)
    } else {
        selection_objective
    };
    GreedyOutcome {
        strategy,
        revenue: true_revenue,
        selection_objective,
        trace,
        marginal_evaluations,
    }
}

fn two_level_greedy(inst: &Instance, opts: &GreedyOptions) -> GreedyOutcome {
    let horizon = inst.horizon() as usize;
    let num_cand = inst.num_candidates();
    let mut inc = IncrementalRevenue::with_options(inst, opts.ignore_saturation);
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    let mut states: Vec<CandidateState> = Vec::with_capacity(num_cand);
    let mut roots = vec![f64::NEG_INFINITY; num_cand];
    for cand in inst.candidates() {
        let values = initial_values(inst, cand);
        let state = CandidateState {
            values,
            flags: vec![0; horizon],
            blocked: vec![false; horizon],
        };
        roots[cand.index()] = state.best().map_or(f64::NEG_INFINITY, |(_, v)| v);
        states.push(state);
    }
    let mut heap = LazyMaxHeap::new(&roots);
    let total_slots = inst.total_slots();

    while (inc.len() as u64) < total_slots {
        let Some((cand_idx, root_value)) = heap.pop() else { break };
        if root_value <= 0.0 {
            break;
        }
        let cand = CandidateId(cand_idx);
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        let class = inst.class_of(item);
        let state = &mut states[cand_idx as usize];
        let Some((best_t, _)) = state.best() else {
            heap.remove(cand_idx);
            continue;
        };
        let z = Triple { user, item, t: TimeStep::from_index(best_t) };

        if inc.would_violate(z) {
            if inc.would_violate_display(z) {
                // The (user, t) slot is full: this time step is dead for this
                // candidate, other time steps may still be fine.
                state.blocked[best_t] = true;
                match state.best() {
                    Some((_, v)) => heap.update(cand_idx, v),
                    None => heap.remove(cand_idx),
                }
            } else {
                // Capacity exhausted by other users: the whole candidate dies.
                heap.remove(cand_idx);
            }
            continue;
        }

        // Lazy forward compares the flag against |set(u, C(i))|; the eager
        // ablation compares against the global selection count, forcing a
        // re-evaluation whenever anything was inserted since the last one.
        let stamp = if opts.lazy_forward {
            inc.group_size(user, class) as u32
        } else {
            inc.len() as u32
        };
        let up_to_date = state.flags[best_t] == stamp;
        if up_to_date {
            inc.insert(z);
            state.blocked[best_t] = true;
            if opts.track_trace {
                trace.push(inc.revenue());
            }
            match state.best() {
                Some((_, v)) => heap.update(cand_idx, v),
                None => heap.remove(cand_idx),
            }
        } else {
            // Re-evaluate every live triple of this candidate, then re-queue.
            for t_idx in 0..horizon {
                if state.blocked[t_idx] {
                    continue;
                }
                let triple = Triple { user, item, t: TimeStep::from_index(t_idx) };
                state.values[t_idx] = inc.marginal_revenue(triple);
                state.flags[t_idx] = stamp;
                evals += 1;
            }
            match state.best() {
                Some((_, v)) => heap.update(cand_idx, v),
                None => heap.remove(cand_idx),
            }
        }
    }

    finish(inst, inc, opts, trace, evals)
}

fn giant_heap_greedy(inst: &Instance, opts: &GreedyOptions) -> GreedyOutcome {
    let horizon = inst.horizon() as usize;
    let num_cand = inst.num_candidates();
    let mut inc = IncrementalRevenue::with_options(inst, opts.ignore_saturation);
    let mut trace = Vec::new();
    let mut evals: u64 = 0;

    // One heap element per candidate triple.
    let mut values = vec![f64::NEG_INFINITY; num_cand * horizon];
    let mut flags = vec![0u32; num_cand * horizon];
    for cand in inst.candidates() {
        let init = initial_values(inst, cand);
        values[cand.index() * horizon..(cand.index() + 1) * horizon].copy_from_slice(&init);
    }
    let mut heap = LazyMaxHeap::new(&values);
    let total_slots = inst.total_slots();

    while (inc.len() as u64) < total_slots {
        let Some((element, value)) = heap.pop() else { break };
        if value <= 0.0 {
            break;
        }
        let cand = CandidateId(element / horizon as u32);
        let t_idx = (element as usize) % horizon;
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        let class = inst.class_of(item);
        let z = Triple { user, item, t: TimeStep::from_index(t_idx) };

        if inc.would_violate(z) {
            heap.remove(element);
            continue;
        }
        let stamp = if opts.lazy_forward {
            inc.group_size(user, class) as u32
        } else {
            inc.len() as u32
        };
        if flags[element as usize] == stamp {
            inc.insert(z);
            heap.remove(element);
            if opts.track_trace {
                trace.push(inc.revenue());
            }
        } else {
            let fresh = inc.marginal_revenue(z);
            evals += 1;
            flags[element as usize] = stamp;
            heap.update(element, fresh);
        }
    }

    finish(inst, inc, opts, trace, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::{marginal_revenue, InstanceBuilder};

    /// Small instance with one class of two items, price drops, and saturation.
    fn small_instance() -> Instance {
        let mut b = InstanceBuilder::new(2, 3, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .beta(0, 0.4)
            .beta(1, 0.7)
            .beta(2, 0.9)
            .capacity(0, 1)
            .capacity(1, 2)
            .capacity(2, 2)
            .prices(0, &[30.0, 24.0, 27.0])
            .prices(1, &[10.0, 12.0, 9.0])
            .prices(2, &[15.0, 15.0, 14.0])
            .candidate(0, 0, &[0.4, 0.6, 0.5], 4.5)
            .candidate(0, 1, &[0.7, 0.5, 0.8], 3.5)
            .candidate(0, 2, &[0.3, 0.3, 0.4], 4.0)
            .candidate(1, 0, &[0.5, 0.55, 0.45], 4.8)
            .candidate(1, 2, &[0.6, 0.2, 0.3], 2.5);
        b.build().unwrap()
    }

    #[test]
    fn greedy_output_is_valid_and_profitable() {
        let inst = small_instance();
        let out = global_greedy(&inst);
        assert!(out.strategy.validate(&inst).is_ok());
        assert!(out.revenue > 0.0);
        assert!((out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-9);
        assert!(!out.strategy.is_empty());
    }

    #[test]
    fn example4_greedy_avoids_the_trap() {
        // On the non-monotone Example-4 instance the optimal strategy is the
        // single day-2 recommendation; greedy must find it and stop.
        let mut b = InstanceBuilder::new(1, 1, 2);
        b.display_limit(1)
            .capacity(0, 2)
            .beta(0, 0.1)
            .prices(0, &[1.0, 0.95])
            .candidate(0, 0, &[0.5, 0.6], 0.0);
        let inst = b.build().unwrap();
        let out = global_greedy(&inst);
        assert_eq!(out.strategy.len(), 1);
        assert!(out.strategy.contains(Triple::new(0, 0, 2)));
        assert!((out.revenue - 0.57).abs() < 1e-9);
    }

    #[test]
    fn never_selects_negative_marginals() {
        let inst = small_instance();
        let out = global_greedy_with(
            &inst,
            &GreedyOptions { track_trace: true, ..Default::default() },
        );
        // The traced objective must be non-decreasing (every accepted marginal > 0).
        for w in out.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "objective decreased: {:?}", w);
        }
    }

    #[test]
    fn greedy_matches_manual_hill_climbing() {
        // Cross-check against a brute-force greedy that re-evaluates every
        // candidate triple from scratch at every step.
        let inst = small_instance();
        let fast = global_greedy(&inst);

        let mut s = Strategy::new();
        let mut inc = IncrementalRevenue::new(&inst);
        loop {
            let mut best: Option<(Triple, f64)> = None;
            for c in inst.candidates() {
                let user = inst.candidate_user(c);
                let item = inst.candidate_item(c);
                for t in inst.time_steps() {
                    let z = Triple { user, item, t };
                    if s.contains(z) || inc.would_violate(z) {
                        continue;
                    }
                    let m = marginal_revenue(&inst, &s, z);
                    if m > 0.0 && best.map_or(true, |(_, bv)| m > bv) {
                        best = Some((z, m));
                    }
                }
            }
            match best {
                Some((z, _)) => {
                    inc.insert(z);
                    s.insert(z);
                }
                None => break,
            }
        }
        let slow_revenue = revenue(&inst, &s);
        assert!(
            (fast.revenue - slow_revenue).abs() < 1e-9,
            "two-level greedy {} vs reference greedy {}",
            fast.revenue,
            slow_revenue
        );
        assert_eq!(fast.strategy.len(), s.len());
    }

    #[test]
    fn giant_heap_and_two_level_agree() {
        let inst = small_instance();
        let two = global_greedy_with(&inst, &GreedyOptions::default());
        let giant = global_greedy_with(
            &inst,
            &GreedyOptions { two_level_heaps: false, ..Default::default() },
        );
        assert!((two.revenue - giant.revenue).abs() < 1e-9);
        assert_eq!(two.strategy.len(), giant.strategy.len());
    }

    #[test]
    fn lazy_forward_does_not_change_the_result_but_saves_evaluations() {
        let inst = small_instance();
        let lazy = global_greedy_with(&inst, &GreedyOptions::default());
        let eager = global_greedy_with(
            &inst,
            &GreedyOptions { lazy_forward: false, ..Default::default() },
        );
        assert!((lazy.revenue - eager.revenue).abs() < 1e-9);
        assert!(lazy.marginal_evaluations <= eager.marginal_evaluations);
    }

    #[test]
    fn global_no_reports_true_revenue() {
        let inst = small_instance();
        let no_sat = global_no_saturation(&inst);
        assert!(no_sat.strategy.validate(&inst).is_ok());
        // The true revenue of the GlobalNo strategy never exceeds its own
        // optimistic selection objective.
        assert!(no_sat.revenue <= no_sat.selection_objective + 1e-9);
        // And G-Greedy (saturation-aware) is at least as good in expectation here.
        let aware = global_greedy(&inst);
        assert!(aware.revenue + 1e-9 >= no_sat.revenue);
    }

    #[test]
    fn respects_display_and_capacity_limits() {
        let mut b = InstanceBuilder::new(3, 1, 2);
        b.display_limit(1).capacity(0, 2).constant_price(0, 10.0);
        for u in 0..3 {
            b.candidate(u, 0, &[0.9, 0.9], 0.0);
        }
        let inst = b.build().unwrap();
        let out = global_greedy(&inst);
        assert!(out.strategy.validate(&inst).is_ok());
        // Capacity 2 on the only item: at most 2 distinct users can receive it.
        let users: std::collections::HashSet<_> = out.strategy.iter().map(|z| z.user).collect();
        assert!(users.len() <= 2);
    }
}
