//! The two "local" greedy algorithms of §5.2: Sequential Local Greedy
//! (SL-Greedy, Algorithm 2) and Randomized Local Greedy (RL-Greedy).
//!
//! Both finalise all recommendations for one time step before moving to the
//! next. SL-Greedy processes time steps chronologically; RL-Greedy samples `N`
//! random permutations of `[T]`, runs the per-step greedy under each, and
//! keeps the most profitable strategy (Example 4 of the paper shows why the
//! chronological order can be suboptimal).

use crate::global_greedy::GreedyOutcome;
use crate::heap::LazyMaxHeap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use revmax_core::{IncrementalRevenue, Instance, TimeStep, Triple};
use std::collections::HashSet;

/// Runs SL-Greedy: per-time-step greedy in chronological order `1, 2, …, T`.
pub fn sequential_local_greedy(inst: &Instance) -> GreedyOutcome {
    let order: Vec<u32> = (1..=inst.horizon()).collect();
    local_greedy_with_order(inst, &order)
}

/// Runs the per-time-step greedy under an explicit ordering of time steps and
/// returns the resulting strategy.
///
/// The ordering must be a permutation of `1..=T`; a subset is also accepted
/// (only those time steps receive recommendations), which the incomplete-price
/// experiments use.
pub fn local_greedy_with_order(inst: &Instance, order: &[u32]) -> GreedyOutcome {
    let mut inc = IncrementalRevenue::new(inst);
    let mut evals = 0u64;
    let mut trace = Vec::new();
    for &t in order {
        run_time_step(inst, &mut inc, TimeStep(t), &mut evals, &mut trace);
    }
    let revenue = inc.revenue();
    GreedyOutcome {
        revenue,
        selection_objective: revenue,
        strategy: inc.into_strategy(),
        trace,
        marginal_evaluations: evals,
    }
}

/// Greedily fills the recommendation slots of a single time step given the
/// strategy accumulated so far (lines 5–15 of Algorithm 2, with lazy forward).
pub(crate) fn run_time_step(
    inst: &Instance,
    inc: &mut IncrementalRevenue<'_>,
    t: TimeStep,
    evals: &mut u64,
    trace: &mut Vec<f64>,
) {
    let num_cand = inst.num_candidates();
    if num_cand == 0 {
        return;
    }
    let mut values = vec![f64::NEG_INFINITY; num_cand];
    let mut flags = vec![0u32; num_cand];
    for cand in inst.candidates() {
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        let z = Triple { user, item, t };
        values[cand.index()] = inc.marginal_revenue(z);
        flags[cand.index()] = inc.group_size(user, inst.class_of(item)) as u32;
        *evals += 1;
    }
    let mut heap = LazyMaxHeap::new(&values);
    while let Some((cand_idx, value)) = heap.pop() {
        if value <= 0.0 {
            break;
        }
        let cand = revmax_core::CandidateId(cand_idx);
        let user = inst.candidate_user(cand);
        let item = inst.candidate_item(cand);
        let z = Triple { user, item, t };
        if inc.would_violate(z) {
            heap.remove(cand_idx);
            continue;
        }
        let group_size = inc.group_size(user, inst.class_of(item)) as u32;
        if flags[cand_idx as usize] == group_size {
            inc.insert(z);
            heap.remove(cand_idx);
            trace.push(inc.revenue());
        } else {
            let fresh = inc.marginal_revenue(z);
            *evals += 1;
            flags[cand_idx as usize] = group_size;
            heap.update(cand_idx, fresh);
        }
    }
}

/// Generates up to `n` distinct permutations of `1..=horizon` (always including
/// the chronological one first, as a safe fallback).
pub fn sample_permutations(horizon: u32, n: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<u32> = (1..=horizon).collect();
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut out = Vec::new();
    seen.insert(base.clone());
    out.push(base.clone());
    // T! can be tiny (e.g. T = 2); stop once all permutations are exhausted.
    let factorial: u64 = (1..=horizon as u64).product::<u64>().max(1);
    let target = n.max(1).min(factorial as usize);
    let mut attempts = 0;
    while out.len() < target && attempts < 50 * target {
        attempts += 1;
        let mut p = base.clone();
        p.shuffle(&mut rng);
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// Runs RL-Greedy: `permutations` random orderings of `[T]`, per-step greedy
/// under each, best strategy returned. Runs are independent and executed on
/// scoped threads.
pub fn randomized_local_greedy(inst: &Instance, permutations: usize, seed: u64) -> GreedyOutcome {
    let orders = sample_permutations(inst.horizon(), permutations, seed);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(orders.len()).max(1);
    let results: Vec<GreedyOutcome> = if threads <= 1 || orders.len() <= 1 {
        orders.iter().map(|o| local_greedy_with_order(inst, o)).collect()
    } else {
        let chunks: Vec<Vec<Vec<u32>>> = orders
            .chunks(orders.len().div_ceil(threads))
            .map(|c| c.to_vec())
            .collect();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|o| local_greedy_with_order(inst, o))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("crossbeam scope failed")
    };
    results
        .into_iter()
        .max_by(|a, b| a.revenue.partial_cmp(&b.revenue).expect("finite revenues"))
        .expect("at least one permutation is always evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmax_core::{revenue, InstanceBuilder};

    fn example4_instance() -> Instance {
        let mut b = InstanceBuilder::new(1, 1, 2);
        b.display_limit(1)
            .capacity(0, 2)
            .beta(0, 0.1)
            .prices(0, &[1.0, 0.95])
            .candidate(0, 0, &[0.5, 0.6], 0.0);
        b.build().unwrap()
    }

    fn medium_instance() -> Instance {
        let mut b = InstanceBuilder::new(3, 4, 3);
        b.display_limit(1)
            .item_class(0, 0)
            .item_class(1, 0)
            .item_class(2, 1)
            .item_class(3, 1)
            .beta(0, 0.3)
            .beta(1, 0.8)
            .beta(2, 0.5)
            .beta(3, 0.9)
            .capacity(0, 2)
            .capacity(1, 2)
            .capacity(2, 3)
            .capacity(3, 1)
            .prices(0, &[20.0, 15.0, 18.0])
            .prices(1, &[8.0, 9.0, 7.0])
            .prices(2, &[12.0, 12.0, 11.0])
            .prices(3, &[30.0, 25.0, 35.0]);
        for u in 0..3 {
            b.candidate(u, 0, &[0.4, 0.6, 0.5], 4.0);
            b.candidate(u, 1, &[0.7, 0.5, 0.6], 3.0);
            b.candidate(u, 2, &[0.3, 0.2, 0.4], 3.5);
            b.candidate(u, 3, &[0.2, 0.25, 0.15], 4.5);
        }
        b.build().unwrap()
    }

    #[test]
    fn example4_sl_greedy_falls_into_the_chronological_trap() {
        // SL-Greedy processes t=1 first and picks the (positive-marginal)
        // day-1 recommendation, ending with the inferior strategy of Example 4.
        let inst = example4_instance();
        let sl = sequential_local_greedy(&inst);
        assert!((sl.revenue - 0.5285).abs() < 1e-9);
        // RL-Greedy tries the reversed order too and escapes.
        let rl = randomized_local_greedy(&inst, 2, 1);
        assert!((rl.revenue - 0.57).abs() < 1e-9);
        assert!(rl.revenue > sl.revenue);
    }

    #[test]
    fn outputs_are_valid_strategies() {
        let inst = medium_instance();
        for out in [
            sequential_local_greedy(&inst),
            randomized_local_greedy(&inst, 4, 7),
        ] {
            assert!(out.strategy.validate(&inst).is_ok());
            assert!(out.revenue > 0.0);
            assert!((out.revenue - revenue(&inst, &out.strategy)).abs() < 1e-9);
        }
    }

    #[test]
    fn rl_greedy_is_at_least_as_good_as_sl_greedy() {
        let inst = medium_instance();
        let sl = sequential_local_greedy(&inst);
        let rl = randomized_local_greedy(&inst, 6, 3);
        // RL always evaluates the chronological order too.
        assert!(rl.revenue + 1e-9 >= sl.revenue);
    }

    #[test]
    fn permutation_sampling_is_distinct_and_bounded() {
        let perms = sample_permutations(3, 10, 1);
        assert!(perms.len() <= 6);
        let unique: HashSet<_> = perms.iter().cloned().collect();
        assert_eq!(unique.len(), perms.len());
        assert_eq!(perms[0], vec![1, 2, 3]);
        for p in &perms {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3]);
        }
        // Degenerate horizon.
        assert_eq!(sample_permutations(1, 5, 0), vec![vec![1]]);
    }

    #[test]
    fn partial_order_restricts_time_steps() {
        let inst = medium_instance();
        let out = local_greedy_with_order(&inst, &[2]);
        assert!(out.strategy.iter().all(|z| z.t.value() == 2));
        assert!(!out.strategy.is_empty());
    }

    #[test]
    fn trace_is_monotone_within_runs() {
        let inst = medium_instance();
        let out = sequential_local_greedy(&inst);
        for w in out.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }
}
